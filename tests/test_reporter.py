"""Per-node reporters: GCS snapshot rows, tombstones, disabled mode."""

import time

import pytest

import repro
from repro.tools.reporter import NodeReporter, sample_node


@repro.remote
def work(x):
    return x + 1


@pytest.fixture
def reporting_runtime():
    """A 2-node cluster with reporters on a fast interval."""
    rt = repro.init(
        num_nodes=2,
        num_cpus_per_node=4,
        reporters_enabled=True,
        reporter_interval_seconds=0.05,
    )
    try:
        yield rt
    finally:
        repro.shutdown()


class TestSampling:
    def test_sample_covers_every_pressure_surface(self, runtime):
        row = sample_node(runtime, runtime.nodes()[0])
        for key in (
            "node_id",
            "alive",
            "queue_length",
            "backlog",
            "running_tasks",
            "workers_total",
            "workers_busy",
            "workers_idle",
            "store_used_bytes",
            "store_num_objects",
            "store_utilization",
            "store_evictions",
            "store_spills",
            "store_restores",
            "transfers_inflight",
            "resources_total",
            "resources_available",
        ):
            assert key in row, key
        assert row["alive"] is True
        assert row["workers_total"] == 4.0

    def test_report_once_publishes_versioned_rows(self, runtime):
        node = runtime.nodes()[0]
        reporter = NodeReporter(runtime, node)
        first = reporter.report_once()
        second = reporter.report_once()
        assert (first["seq"], second["seq"]) == (1, 2)
        stored = runtime.gcs.get_node_report(node.node_id.hex())
        assert stored["seq"] == 2  # put-not-append: latest row wins
        assert len(runtime.gcs.node_reports()) == 1


class TestReportingRuntime:
    def test_rows_appear_and_refresh(self, reporting_runtime):
        rt = reporting_runtime
        reports = rt.gcs.node_reports()
        assert len(reports) == 2  # attach publishes a first row eagerly
        before = {h: r["seq"] for h, r in reports.items()}
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            now = {h: r["seq"] for h, r in rt.gcs.node_reports().items()}
            if all(now[h] > before[h] for h in before):
                break
            time.sleep(0.02)
        else:
            pytest.fail("reporter rows never refreshed")

    def test_kill_node_leaves_a_tombstone(self, reporting_runtime):
        rt = reporting_runtime
        victim = rt.nodes()[1]
        rt.kill_node(victim.node_id)
        row = rt.gcs.get_node_report(victim.node_id.hex())
        assert row["tombstone"] is True
        assert row["alive"] is False
        assert "tombstoned_at" in row
        # The last-seen metrics survive under the tombstone.
        assert "backlog" in row
        # The dead node's reporter is detached and its thread stopped.
        assert rt.node_reporter(victim.node_id) is None

    def test_restart_reattaches_and_revives_the_row(self, reporting_runtime):
        rt = reporting_runtime
        victim = rt.nodes()[1]
        rt.kill_node(victim.node_id)
        rt.restart_node(victim.node_id)
        row = rt.gcs.get_node_report(victim.node_id.hex())
        assert row["alive"] is True
        assert not row.get("tombstone")
        assert rt.node_reporter(victim.node_id) is not None
        # Work still completes on the rejoined cluster.
        assert repro.get(work.remote(41)) == 42

    def test_shutdown_stops_reporter_threads(self):
        rt = repro.init(
            num_nodes=2, reporters_enabled=True, reporter_interval_seconds=0.05
        )
        reporters = [rt.node_reporter(n.node_id) for n in rt.nodes()]
        assert all(r is not None for r in reporters)
        repro.shutdown()
        for reporter in reporters:
            thread = reporter._thread
            assert thread is None or not thread.is_alive()

    def test_reporter_stop_is_idempotent(self, runtime):
        reporter = NodeReporter(runtime, runtime.nodes()[0], interval=0.05)
        reporter.start()
        reporter.stop()
        reporter.stop()  # no exception, no hang


class TestDisabledMode:
    def test_disabled_is_the_default_and_publishes_nothing(self, runtime):
        assert runtime.config.reporters_enabled is False
        repro.get([work.remote(i) for i in range(8)])
        assert runtime.gcs.node_reports() == {}
        assert runtime.node_reporter(runtime.nodes()[0].node_id) is None

    def test_disabled_lifecycle_hooks_are_null(self, runtime):
        """kill/restart with reporters off must not touch the GCS
        node-report table (the null-object cost contract)."""
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        runtime.restart_node(victim.node_id)
        assert runtime.gcs.node_reports() == {}
