"""RL workloads on the runtime: rollouts, allreduce, PS-SGD, ES, PPO, serving."""

import numpy as np
import pytest

import repro
from repro.rl import (
    ESConfig,
    EnvSpec,
    EvolutionStrategies,
    PPOConfig,
    PPOTrainer,
    PolicySpec,
    PolicyServer,
    ShardedParameterServer,
    SimulatorActor,
    SyncSGDTrainer,
    centered_ranks,
    compute_gae,
    make_dataset,
    measure_serving_throughput,
    ring_allreduce,
    rollout,
)


class TestRollout:
    def test_rollout_respects_step_limit(self):
        spec = EnvSpec("pendulum", max_steps=50)
        policy = PolicySpec.for_env(spec).build()
        trajectory = rollout(policy, spec.build(seed=0), num_steps=10)
        assert trajectory.length == 10
        assert len(trajectory.observations) == 10
        assert trajectory.total_reward <= 0  # pendulum rewards are costs

    def test_rollout_stops_at_termination(self):
        spec = EnvSpec("cartpole", max_steps=30)
        policy = PolicySpec.for_env(spec).build()
        trajectory = rollout(policy, spec.build(seed=0))
        assert 1 <= trajectory.length <= 30

    def test_simulator_actor(self, runtime):
        """The paper's Figure 3 Simulator actor."""
        env_spec = EnvSpec("pendulum", max_steps=40)
        policy_spec = PolicySpec.for_env(env_spec)
        simulator = SimulatorActor.remote(env_spec, policy_spec)
        params = policy_spec.build().get_flat()
        reward, length = repro.get(simulator.rollout.remote(params, 20), timeout=20)
        assert length == 20
        assert reward <= 0
        steps = repro.get(simulator.sample_steps.remote(params, 100), timeout=20)
        assert steps == 100


class TestRingAllreduce:
    def test_matches_numpy_sum(self, runtime):
        arrays = [np.random.default_rng(i).standard_normal(40) for i in range(4)]
        results = ring_allreduce(arrays)
        for result in results:
            np.testing.assert_allclose(result, sum(arrays), atol=1e-9)

    def test_uneven_chunking(self, runtime):
        # Length not divisible by participants: array_split handles it.
        arrays = [np.arange(10.0) for _ in range(3)]
        results = ring_allreduce(arrays)
        np.testing.assert_allclose(results[0], 3 * np.arange(10.0))

    def test_degenerate_sizes(self, runtime):
        assert ring_allreduce([]) == []
        single = ring_allreduce([np.array([1.0, 2.0])])
        np.testing.assert_allclose(single[0], [1.0, 2.0])

    def test_shape_mismatch_rejected(self, runtime):
        with pytest.raises(ValueError):
            ring_allreduce([np.zeros(3), np.zeros(4)])


class TestParameterServer:
    def test_shard_pull_and_update(self, runtime):
        server = ShardedParameterServer(np.zeros(10), num_shards=2, learning_rate=1.0)
        params = server.get_params()
        np.testing.assert_allclose(params, np.zeros(10))
        grads = server.split_gradient(np.ones(10))
        repro.get(server.apply([grads]))
        np.testing.assert_allclose(server.get_params(), -np.ones(10))
        server.close()

    def test_gradients_averaged_across_workers(self, runtime):
        server = ShardedParameterServer(np.zeros(4), num_shards=1, learning_rate=1.0)
        g1 = server.split_gradient(np.full(4, 2.0))
        g2 = server.split_gradient(np.full(4, 4.0))
        repro.get(server.apply([g1, g2]))
        np.testing.assert_allclose(server.get_params(), -np.full(4, 3.0))
        server.close()

    def test_sync_sgd_converges(self, runtime):
        features, targets, true_weights = make_dataset(300, 6, seed=2)
        trainer = SyncSGDTrainer(
            features, targets, num_workers=2, num_ps_shards=2, learning_rate=0.4
        )
        losses = trainer.train(25)
        assert losses[-1] < losses[0] * 0.05
        assert np.linalg.norm(trainer.params() - true_weights) < 0.2
        trainer.close()

    def test_single_shard_single_worker(self, runtime):
        features, targets, _w = make_dataset(100, 3, seed=3)
        trainer = SyncSGDTrainer(
            features, targets, num_workers=1, num_ps_shards=1, learning_rate=0.4
        )
        losses = trainer.train(15)
        assert losses[-1] < losses[0]
        trainer.close()


class TestEvolutionStrategies:
    def test_centered_ranks_properties(self):
        values = np.array([10.0, -5.0, 3.0, 100.0])
        ranks = centered_ranks(values)
        assert ranks.max() == 0.5
        assert ranks.min() == -0.5
        assert np.argmax(ranks) == np.argmax(values)
        assert ranks.sum() == pytest.approx(0.0)

    def test_training_improves_cartpole(self, runtime):
        env_spec = EnvSpec("cartpole", max_steps=120)
        es = EvolutionStrategies(
            env_spec,
            PolicySpec.for_env(env_spec, kind="linear"),
            ESConfig(population_size=12, sigma=0.3, learning_rate=0.15, seed=3),
        )
        before = es.evaluate(episodes=3)
        es.train(6)
        after = es.evaluate(episodes=3)
        assert after > before
        assert len(es.history) == 6

    def test_hierarchical_matches_flat_gradient_path(self, runtime):
        """Tree aggregation computes the same update as driver folding."""
        env_spec = EnvSpec("cartpole", max_steps=60)
        flat = EvolutionStrategies(
            env_spec, config=ESConfig(population_size=8, seed=11, hierarchical=False)
        )
        tree = EvolutionStrategies(
            env_spec,
            config=ESConfig(
                population_size=8, seed=11, hierarchical=True, aggregation_fanout=3
            ),
        )
        flat.train_iteration()
        tree.train_iteration()
        np.testing.assert_allclose(flat.theta, tree.theta, atol=1e-8)


class TestPPO:
    def test_gae_matches_manual_computation(self):
        rewards = np.array([1.0, 1.0])
        values = np.array([0.5, 0.25, 0.0])
        adv, ret = compute_gae(rewards, values, gamma=0.5, lam=1.0)
        # δ1 = 1 + 0.5·0.25 − 0.5 = 0.625; δ2 = 1 + 0 − 0.25 = 0.75
        # A2 = 0.75; A1 = 0.625 + 0.5·0.75 = 1.0
        np.testing.assert_allclose(adv, [1.0, 0.75])
        np.testing.assert_allclose(ret, adv + values[:2])

    def test_training_improves_cartpole(self, runtime):
        env_spec = EnvSpec("cartpole", max_steps=150)
        trainer = PPOTrainer(
            env_spec,
            PPOConfig(num_actors=3, steps_per_iteration=500, sgd_epochs=4, seed=1),
        )
        rewards = trainer.train(5)
        trainer.close()
        assert max(rewards[2:]) > rewards[0]

    def test_continuous_env_rejected(self, runtime):
        with pytest.raises(ValueError):
            PPOTrainer(EnvSpec("pendulum"))


class TestServing:
    def test_policy_server_serves_actions(self, runtime):
        env_spec = EnvSpec("cartpole")
        policy_spec = PolicySpec.for_env(env_spec, kind="linear")
        params = policy_spec.build().get_flat()
        server = PolicyServer.remote(policy_spec, params)
        states = [np.zeros(4) for _ in range(8)]
        actions = repro.get(server.serve.remote(states), timeout=20)
        assert len(actions) == 8
        assert all(a in (0, 1) for a in actions)
        repro.kill(server)

    def test_throughput_measurement_positive(self, runtime):
        server = PolicyServer.remote(eval_seconds=0.001)
        throughput = measure_serving_throughput(
            server, [b"x" * 1024] * 16, duration_seconds=0.3
        )
        assert throughput > 100
        repro.kill(server)
