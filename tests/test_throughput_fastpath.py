"""Task-throughput fast path (PR 8): batched ``submit_many`` submission,
the local-scheduler submit fast path, pooled workers, and the client-side
GCS caches — correctness under contention, node death, and ablation
(batched vs per-op writes must leave identical GCS state)."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.common.ids import FunctionID, NodeID, ObjectID
from repro.gcs.client import GlobalControlStore
from repro.gcs.shard import ShardedKV
from repro.gcs.tables import TaskStatus


@repro.remote
def add_one(x):
    return x + 1


_GATE = threading.Event()


@repro.remote
def wait_gate():
    _GATE.wait(10)
    return 1


def counter_value(runtime, name: str) -> float:
    total = 0.0
    for family in runtime.metrics.families():
        if family.name == name:
            total += sum(m.value for m in family.series.values())
    return total


# ---------------------------------------------------------------------------
# submit_many: the batched submission API
# ---------------------------------------------------------------------------


class TestSubmitMany:
    def test_results_match_sequential_remote(self, runtime):
        refs = repro.submit_many(add_one, [(i,) for i in range(20)])
        assert repro.get(refs, timeout=30) == [i + 1 for i in range(20)]

    def test_rejects_plain_functions(self, runtime):
        with pytest.raises(TypeError):
            repro.submit_many(lambda x: x, [(1,)])

    @staticmethod
    def _run_wave(batched: bool):
        rt = repro.init(
            num_nodes=1, num_cpus_per_node=4, spillback_threshold=1000
        )
        try:
            refs = add_one.submit_many(
                [(i,) for i in range(12)], batched=batched
            )
            values = repro.get(refs, timeout=30)
            rows = sorted(
                (entry.spec.function_name, entry.spec.args, entry.status)
                for entry in rt.gcs.tasks_with_status(TaskStatus.FINISHED)
            )
            events = {
                category: len(rt.gcs.events(category))
                for category in rt.gcs.event_categories()
            }
            return values, rows, events
        finally:
            repro.shutdown()

    def test_batched_and_unbatched_submission_identical_tables(self):
        """The ``--no-batch`` ablation is purely a write-coalescing choice:
        both paths must leave the same task rows and the same event-log
        shape behind."""
        batched_values, batched_rows, batched_events = self._run_wave(True)
        unbatched_values, unbatched_rows, unbatched_events = self._run_wave(
            False
        )
        assert batched_values == unbatched_values
        assert batched_rows == unbatched_rows
        assert batched_events == unbatched_events


# ---------------------------------------------------------------------------
# The submit fast path
# ---------------------------------------------------------------------------


class TestSubmitFastpath:
    def test_sequential_submissions_take_fast_path(self):
        rt = repro.init(num_nodes=1, num_cpus_per_node=4)
        try:
            assert repro.get(add_one.remote(0), timeout=10) == 1  # warm
            before = counter_value(rt, "scheduler_fastpath_total")
            for i in range(5):
                assert repro.get(add_one.remote(i), timeout=10) == i + 1
            taken = counter_value(rt, "scheduler_fastpath_total") - before
            assert taken == 5
            scheduled = rt.gcs.events("task_scheduled")
            assert any(
                dict(record.payload).get("policy") == "fastpath"
                for record in scheduled
            )
        finally:
            repro.shutdown()

    def test_fast_path_off_when_disabled(self):
        rt = repro.init(num_nodes=1, num_cpus_per_node=4, submit_fastpath=False)
        try:
            for i in range(4):
                assert repro.get(add_one.remote(i), timeout=10) == i + 1
            assert counter_value(rt, "scheduler_fastpath_total") == 0
        finally:
            repro.shutdown()

    def test_fast_path_steps_aside_under_contention(self):
        """With every CPU slot held by a blocked task, later submissions
        must take the checked (queued) path and still all complete once
        the workers free up — the worker-frees-mid-submit race resolves to
        one execution either way."""
        rt = repro.init(num_nodes=1, num_cpus_per_node=2)
        try:
            _GATE.clear()
            blockers = [wait_gate.remote() for _ in range(2)]
            baseline = counter_value(rt, "scheduler_fastpath_total")
            queued = [add_one.remote(i) for i in range(8)]
            # Saturated node: none of the queued tasks may fast-path.
            assert counter_value(rt, "scheduler_fastpath_total") == baseline
            _GATE.set()
            assert repro.get(blockers, timeout=20) == [1, 1]
            assert repro.get(queued, timeout=20) == [i + 1 for i in range(8)]
        finally:
            _GATE.set()
            repro.shutdown()


# ---------------------------------------------------------------------------
# Fault tolerance: fast-pathed and batch-submitted tasks leave a complete
# task table behind, so kill_node resubmission and lineage replay work.
# ---------------------------------------------------------------------------


class TestFastpathFaultTolerance:
    def test_kill_node_reexecutes_batch_submitted_tasks(self, runtime):
        refs = repro.submit_many(add_one, [(i,) for i in range(16)])
        assert repro.get(refs, timeout=20) == [i + 1 for i in range(16)]
        victim = [
            n for n in runtime.nodes() if n is not runtime.driver_node
        ][0]
        runtime.kill_node(victim.node_id)
        # Lost copies must be recoverable purely from the task rows the
        # batched submission wrote.
        assert repro.get(refs, timeout=30) == [i + 1 for i in range(16)]

    def test_kill_node_mid_wave_completes_all_tasks(self, runtime):
        refs = repro.submit_many(add_one, [(i,) for i in range(32)])
        victim = [
            n for n in runtime.nodes() if n is not runtime.driver_node
        ][0]
        runtime.kill_node(victim.node_id)
        assert repro.get(refs, timeout=30) == [i + 1 for i in range(32)]

    def test_fastpathed_chain_survives_node_death(self, runtime):
        ref = add_one.remote(0)
        for _ in range(5):
            ref = add_one.remote(ref)
        assert repro.get(ref, timeout=20) == 6
        victim = [
            n for n in runtime.nodes() if n is not runtime.driver_node
        ][0]
        runtime.kill_node(victim.node_id)
        ref2 = add_one.remote(ref)
        assert repro.get(ref2, timeout=30) == 7


# ---------------------------------------------------------------------------
# Client-side GCS caches
# ---------------------------------------------------------------------------


class TestClientSideCaches:
    def test_function_cache_serves_without_remote_read(self):
        gcs = GlobalControlStore()
        fid = FunctionID.from_seed("cached-fn")
        gcs.register_function(fid, lambda: 42)
        reads = []
        original = gcs.kv.get
        gcs.kv.get = lambda *a, **k: (reads.append(a), original(*a, **k))[1]
        assert gcs.get_function(fid)() == 42
        assert reads == []

    def test_function_cache_disabled_reads_through(self):
        gcs = GlobalControlStore(client_cache=False)
        fid = FunctionID.from_seed("uncached-fn")
        gcs.register_function(fid, lambda: 7)
        reads = []
        original = gcs.kv.get
        gcs.kv.get = lambda *a, **k: (reads.append(a), original(*a, **k))[1]
        assert gcs.get_function(fid)() == 7
        assert len(reads) == 1

    def test_location_hint_follows_publication(self):
        gcs = GlobalControlStore()
        oid = ObjectID.from_seed("hinted")
        node = NodeID.from_seed("n")
        assert not gcs.has_location_hint(oid)
        gcs.add_object_location(oid, node)
        assert gcs.has_location_hint(oid)
        # Retraction keeps the hint: it only forces the checked path.
        gcs.remove_object_location(oid, node)
        assert gcs.has_location_hint(oid)

    def test_hint_set_by_batched_finish(self, single_node_runtime):
        ref = add_one.remote(1)
        assert repro.get(ref, timeout=10) == 2
        assert single_node_runtime.gcs.has_location_hint(ref.object_id)


# ---------------------------------------------------------------------------
# Parallel per-shard batch flush
# ---------------------------------------------------------------------------


class TestParallelShardFlush:
    def test_multi_shard_batch_with_hop_delay_lands_everywhere(self):
        kv = ShardedKV(num_shards=4, num_replicas=2, hop_delay=1e-4)
        try:
            keys = [("t", ObjectID.from_seed(f"k{i}")) for i in range(32)]
            kv.batch([("put", key, index) for index, key in enumerate(keys)])
            for index, key in enumerate(keys):
                assert kv.get(key) == index
        finally:
            kv.close()

    def test_batch_preserves_per_key_append_order(self):
        kv = ShardedKV(num_shards=4, num_replicas=2, hop_delay=1e-4)
        try:
            log_key = ("log", ObjectID.from_seed("ordered"))
            other = [("t", ObjectID.from_seed(f"o{i}")) for i in range(8)]
            ops = [("append", log_key, i) for i in range(6)]
            ops += [("put", key, 1) for key in other]
            kv.batch(ops)
            assert kv.log(log_key) == list(range(6))
        finally:
            kv.close()
