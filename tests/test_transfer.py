"""Object transfer between node stores and the fetch-or-reconstruct path."""

import numpy as np

import repro
from repro.common.serialization import deserialize, serialize
from repro.core.transfer import striped_copy


class TestStripedCopy:
    def test_copy_preserves_content(self):
        value = serialize(np.arange(100_000))
        copy = striped_copy(value, chunk_bytes=4096)
        np.testing.assert_array_equal(deserialize(copy), np.arange(100_000))

    def test_copy_is_independent(self):
        value = serialize(b"payload" * 1000)
        copy = striped_copy(value)
        assert copy.buffers is not value.buffers
        assert copy.total_bytes == value.total_bytes

    def test_small_chunk_sizes(self):
        value = serialize(bytes(range(256)))
        for chunk in (1, 3, 64, 10_000):
            assert deserialize(striped_copy(value, chunk_bytes=chunk)) == bytes(
                range(256)
            )


class TestTransferService:
    def test_transfer_replicates_and_registers_location(self, runtime):
        ref = repro.put(np.ones(1000))  # lands on the driver node
        src = runtime.driver_node
        dst = [n for n in runtime.nodes() if n is not src][0]
        assert not dst.store.contains(ref.object_id)
        assert runtime.transfer.transfer(ref.object_id, dst)
        assert dst.store.contains(ref.object_id)
        assert dst.node_id in runtime.gcs.get_object_locations(ref.object_id)
        assert runtime.transfer.transfer_count == 1
        assert runtime.transfer.bytes_transferred > 0

    def test_transfer_to_holder_is_noop(self, runtime):
        ref = repro.put(1)
        src = runtime.driver_node
        count = runtime.transfer.transfer_count
        assert runtime.transfer.transfer(ref.object_id, src)
        assert runtime.transfer.transfer_count == count

    def test_transfer_with_no_copy_returns_false(self, runtime):
        from repro.common.ids import ObjectID

        dst = runtime.nodes()[1]
        assert not runtime.transfer.transfer(ObjectID.from_seed("ghost"), dst)

    def test_live_locations_excludes_dead_nodes(self, runtime):
        ref = repro.put(2)
        src = runtime.driver_node
        dst = [n for n in runtime.nodes() if n is not src][0]
        runtime.transfer.transfer(ref.object_id, dst)
        assert len(runtime.transfer.live_locations(ref.object_id)) == 2
        runtime.kill_node(dst.node_id)
        assert runtime.transfer.live_locations(ref.object_id) == {src.node_id}


class TestFetcher:
    def test_ensure_local_is_idempotent(self, runtime):
        ref = repro.put(np.zeros(10))
        dst = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        runtime.fetcher.ensure_local(ref.object_id, dst)
        runtime.fetcher.ensure_local(ref.object_id, dst)
        assert dst.store.contains(ref.object_id)

    def test_fetch_waits_for_future_creation(self, runtime):
        """Fetching an object that does not exist yet subscribes and
        completes when the producer publishes it (Figure 7b)."""
        import threading
        import time

        @repro.remote
        def produce():
            time.sleep(0.1)
            return "late"

        ref = produce.remote()
        value = repro.get(ref, timeout=10)
        assert value == "late"
