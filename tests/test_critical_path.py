"""Critical-path analysis over lifecycle traces (the observability tool
that answers "what bounded this job's wall clock, and which phase?")."""

import time

import repro
from repro.tools import ClusterInspector, CriticalPath, Timeline


@repro.remote
def slow_step(x):
    time.sleep(0.02)
    return x + 1


@repro.remote
def quick(x):
    return x * 2


@repro.remote
class Tally:
    def __init__(self):
        self.total = 0

    def add(self, x):
        self.total += x
        return self.total


class TestLifecycles:
    def test_every_task_gets_full_lifecycle(self, runtime):
        repro.get([quick.remote(i) for i in range(5)])
        lifecycles = Timeline(runtime).lifecycles()
        assert len(lifecycles) == 5
        for lc in lifecycles:
            assert lc.submitted is not None
            assert lc.scheduled is not None
            assert lc.inputs_ready is not None
            assert lc.started is not None
            assert lc.finished is not None
            # Causal ordering within one execution.
            assert lc.submitted <= lc.scheduled <= lc.finished
            assert lc.scheduling_seconds >= 0
            assert lc.fetch_seconds >= 0
            assert lc.execution_seconds > 0

    def test_actor_methods_traced(self, runtime):
        tally = Tally.remote()
        repro.get([tally.add.remote(i) for i in range(3)])
        lifecycles = [
            lc for lc in Timeline(runtime).lifecycles() if lc.kind == "actor_method"
        ]
        assert len(lifecycles) == 3
        for lc in lifecycles:
            assert lc.scheduled is not None
            assert lc.inputs_ready is not None

    def test_as_dict_round_trips(self, runtime):
        repro.get(quick.remote(1))
        payload = Timeline(runtime).lifecycles()[0].as_dict()
        assert payload["task"]
        assert payload["execution_seconds"] >= 0


class TestCriticalPath:
    def test_path_follows_longest_lineage_chain(self, runtime):
        # The fixture DAG: a 4-deep chain of slow steps (the known
        # critical path) racing a swarm of instant one-shot tasks.
        chain_refs = [slow_step.remote(0)]
        for _ in range(3):
            chain_refs.append(slow_step.remote(chain_refs[-1]))
        noise = [quick.remote(i) for i in range(8)]
        assert repro.get(chain_refs[-1]) == 4
        repro.get(noise)

        expected_chain = [
            runtime.graph.producer_of(ref.object_id).hex()[:8] for ref in chain_refs
        ]
        report = CriticalPath(runtime).analyze()
        assert report.task_chain == expected_chain
        assert report.dominant_phase == "execution"

    def test_coverage_at_least_95_percent(self, runtime):
        refs = [slow_step.remote(0)]
        for _ in range(4):
            refs.append(slow_step.remote(refs[-1]))
        repro.get(refs[-1])
        report = CriticalPath(runtime).analyze()
        assert report.wall_clock_seconds > 0.08  # 5 × 20 ms of sleep
        assert report.coverage >= 0.95
        # The three phases partition the attributed time exactly.
        assert report.attributed_seconds == sum(report.phase_totals.values())

    def test_empty_runtime_reports_nothing(self, runtime):
        report = CriticalPath(runtime).analyze()
        assert report.steps == []
        assert report.wall_clock_seconds == 0.0
        assert report.dominant_phase is None
        assert "nothing to analyze" in report.format()

    def test_report_format_and_dict(self, runtime):
        repro.get(slow_step.remote(0))
        report = CriticalPath(runtime).analyze()
        text = report.format()
        assert "critical path" in text
        assert "slow_step" in text
        payload = report.as_dict()
        assert payload["task_chain"] == report.task_chain
        assert set(payload["phase_totals"]) == {"scheduling", "transfer", "execution"}

    def test_inspector_exposes_critical_path(self, runtime):
        repro.get(quick.remote(3))
        report = ClusterInspector(runtime).critical_path()
        assert len(report.steps) == 1

    def test_stateful_edges_chain_actor_methods(self, runtime):
        tally = Tally.remote()
        for i in range(3):
            last = tally.add.remote(i)
        repro.get(last)
        report = CriticalPath(runtime).analyze()
        # The terminal method's path must run back through its stateful
        # predecessors (and the actor creation task).
        assert len(report.steps) >= 3
