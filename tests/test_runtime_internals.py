"""Runtime internals: submission dedup, driver failover, config handling."""

import pytest

import repro
from repro.core.runtime import Runtime, RuntimeConfig
from repro.gcs.tables import TaskStatus


@repro.remote
def plus_one(x):
    return x + 1


class TestConfig:
    def test_config_object_and_overrides_are_exclusive(self):
        with pytest.raises(ValueError):
            Runtime(RuntimeConfig(), num_nodes=3)

    def test_overrides_apply(self):
        rt = repro.init(num_nodes=3, num_cpus_per_node=2, gcs_shards=2)
        try:
            assert len(rt.nodes()) == 3
            assert rt.gcs.kv.num_shards == 2
            assert rt.nodes()[0].resources.total == {"CPU": 2.0}
        finally:
            repro.shutdown()

    def test_gpu_and_custom_resources_config(self):
        rt = repro.init(
            num_nodes=1,
            num_cpus_per_node=2,
            num_gpus_per_node=1,
            custom_resources={"TPU": 2},
        )
        try:
            totals = rt.nodes()[0].resources.total
            assert totals == {"CPU": 2.0, "GPU": 1.0, "TPU": 2.0}
        finally:
            repro.shutdown()

    def test_multiple_global_scheduler_replicas(self):
        rt = repro.init(num_nodes=2, num_global_schedulers=3)
        try:
            assert len(rt.global_schedulers) == 3
            # Round-robin across replicas.
            seen = {id(rt.global_scheduler_for(None)) for _ in range(6)}
            assert len(seen) == 3
        finally:
            repro.shutdown()


class TestSubmissionDedup:
    def test_finished_task_with_live_outputs_not_reexecuted(self, runtime):
        """A replayed parent resubmits children with identical task IDs;
        children whose outputs still exist must not re-run."""
        import time

        from repro.core import context

        @repro.remote
        def leaf():
            return 42

        parent_id = runtime.driver_task_id

        def submit_as_replay(replay=False):
            # Same parent + same submission index ⇒ same child task ID.
            # A replayed execution carries is_replay=True (set by the
            # reconstruction / resubmission paths), which routes its
            # submissions through the checked, deduplicating path.
            with context.execution_scope(
                runtime, runtime.driver_node, parent_id, is_replay=replay
            ):
                return leaf.remote()

        first = submit_as_replay()
        assert repro.get(first, timeout=10) == 42
        executed_before = len(runtime.gcs.events("task_finished"))
        second = submit_as_replay(replay=True)  # identical deterministic ID
        assert second == first
        time.sleep(0.2)
        assert len(runtime.gcs.events("task_finished")) == executed_before
        entry = runtime.gcs.get_task(runtime.gcs.creating_task(first.object_id))
        assert entry.status == TaskStatus.FINISHED


class TestDriverNodeFailover:
    def test_driver_node_moves_after_death(self, runtime):
        first = runtime.driver_node
        runtime.kill_node(first.node_id)
        second = runtime.driver_node
        assert second is not first
        assert second.alive
        # The API keeps working from the new driver node.
        assert repro.get(plus_one.remote(5), timeout=20) == 6

    def test_no_live_nodes_raises(self, runtime):
        from repro.common.errors import RuntimeNotInitializedError

        for node in runtime.nodes():
            runtime.kill_node(node.node_id)
        with pytest.raises(RuntimeNotInitializedError):
            _ = runtime.driver_node


class TestEventLogIntegrity:
    def test_every_finished_task_has_an_event(self, runtime):
        refs = [plus_one.remote(i) for i in range(10)]
        repro.get(refs, timeout=20)
        events = runtime.gcs.events("task_finished")
        assert len(events) == 10
        names = {e.as_dict()["name"] for e in events}
        assert names == {"plus_one"}

    def test_node_death_recorded(self, runtime):
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        deaths = runtime.gcs.events("node_death")
        assert len(deaths) == 1
        assert deaths[0].as_dict()["node"] == victim.node_id.hex()[:8]
