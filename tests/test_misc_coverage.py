"""Coverage for remaining knobs: chain timing, sim GCS shards, env costs."""

import time

import numpy as np
import pytest

from repro.gcs.chain import ReplicatedChain
from repro.rl.envs import HumanoidSurrogateEnv, PendulumEnv
from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import empty_tasks


class TestChainTimingKnobs:
    def test_hop_delay_slows_writes(self):
        fast = ReplicatedChain(num_replicas=2)
        slow = ReplicatedChain(num_replicas=2, hop_delay=2e-3)
        start = time.perf_counter()
        for i in range(10):
            fast.put(i, i)
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        for i in range(10):
            slow.put(i, i)
        slow_seconds = time.perf_counter() - start
        # 2 hops × 2 ms × 10 writes = 40+ ms of injected delay.
        assert slow_seconds > fast_seconds + 0.03

    def test_state_transfer_delay_scales_with_entries(self):
        chain = ReplicatedChain(num_replicas=1, transfer_delay_per_entry=1e-4)
        for i in range(100):
            chain.put(i, i)
        start = time.perf_counter()
        chain.add_member()
        elapsed = time.perf_counter() - start
        assert elapsed >= 100 * 1e-4 * 0.8

    def test_failure_detection_delay_applied(self):
        chain = ReplicatedChain(num_replicas=2, failure_detection_delay=5e-3)
        chain.kill_member(0)
        start = time.perf_counter()
        chain.put("k", 1)  # triggers report + reconfiguration
        assert time.perf_counter() - start >= 4e-3


class TestSimGcsShards:
    def test_single_shard_caps_throughput(self):
        capped = SimCluster(SimConfig(num_nodes=8, cpus_per_node=8, gcs_shards=1))
        capped.run_all(empty_tasks(2000))
        capped_rate = 2000 / capped.engine.now
        # 3 ops/task at 20 µs each through one shard ⇒ ≤ ~16.7 K tasks/s.
        assert capped_rate <= 17_000

    def test_sharding_scales_write_path(self):
        rates = {}
        for shards in (1, 4):
            cluster = SimCluster(
                SimConfig(num_nodes=8, cpus_per_node=8, gcs_shards=shards)
            )
            cluster.run_all(empty_tasks(2000))
            rates[shards] = 2000 / cluster.engine.now
        assert rates[4] > 3 * rates[1]

    def test_zero_shards_disables_model(self):
        cluster = SimCluster(SimConfig(num_nodes=2, gcs_shards=0))
        assert cluster.gcs_shards == []
        cluster.run_all(empty_tasks(50))
        assert cluster.tasks_executed == 50


class TestEnvironmentCosts:
    def test_humanoid_step_compute_burns_time(self):
        cheap = HumanoidSurrogateEnv(seed=0, step_compute=0)
        heavy = HumanoidSurrogateEnv(seed=0, step_compute=1200)
        action = np.zeros(17)

        def step_rate(env, steps=50):
            env.reset()
            start = time.perf_counter()
            for _ in range(steps):
                if env.has_terminated():
                    env.reset()
                env.step(action)
            return steps / (time.perf_counter() - start)

        assert step_rate(cheap) > 1.5 * step_rate(heavy)

    def test_pendulum_reward_bounds(self):
        env = PendulumEnv(seed=3)
        env.reset()
        for _ in range(100):
            _obs, reward, done = env.step(2.0)
            # Max cost: π² + 0.1·8² + 0.001·2² ≈ 16.27.
            assert -16.28 <= reward <= 0
            if done:
                env.reset()

    def test_humanoid_observation_embeds_target(self):
        env = HumanoidSurrogateEnv(seed=5)
        obs = env.reset()
        np.testing.assert_allclose(np.linalg.norm(obs[:17]), 1.0, atol=1e-6)
