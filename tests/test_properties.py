"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bsp import async_makespan
from repro.common.serialization import deserialize, serialize
from repro.rl.es import centered_ranks
from repro.sim.cluster import SimCluster, SimConfig, SimTask
from repro.sim.engine import Engine, SimResource


class TestSerializationProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=64
        ),
        st.sampled_from([np.float64, np.float32, np.int64, np.int32]),
    )
    @settings(max_examples=40, deadline=None)
    def test_numpy_roundtrip_any_dtype(self, values, dtype):
        array = np.asarray(values).astype(dtype)
        result = deserialize(serialize(array))
        np.testing.assert_array_equal(result, array)
        assert result.dtype == array.dtype

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=1, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_nd_shapes_roundtrip(self, ndim, base):
        shape = tuple(range(base, base + ndim)) or ()
        array = np.zeros(shape)
        assert deserialize(serialize(array)).shape == array.shape

    @given(st.binary(max_size=4096))
    @settings(max_examples=30, deadline=None)
    def test_bytes_roundtrip_and_size_bound(self, payload):
        serialized = serialize(payload)
        assert deserialize(serialized) == payload
        assert serialized.total_bytes >= len(payload)


class TestEngineDeterminism:
    @given(st.lists(st.floats(min_value=0.001, max_value=10), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_identical_runs_identical_clocks(self, delays):
        def run():
            engine = Engine()
            order = []

            def proc(delay, tag):
                yield engine.timeout(delay)
                order.append((tag, engine.now))

            for i, delay in enumerate(delays):
                engine.process(proc(delay, i))
            engine.run()
            return engine.now, order

        assert run() == run()

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.floats(min_value=0.01, max_value=2), min_size=1, max_size=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_resource_conservation(self, capacity, durations):
        """in_use never exceeds capacity and returns to zero."""
        engine = Engine()
        resource = SimResource(engine, capacity)
        peak = {"value": 0}

        def worker(duration):
            yield resource.acquire()
            peak["value"] = max(peak["value"], resource.in_use)
            yield engine.timeout(duration)
            resource.release()

        for duration in durations:
            engine.process(worker(duration))
        engine.run()
        assert peak["value"] <= capacity
        assert resource.in_use == 0
        assert resource.queue_length == 0


class TestSimClusterInvariants:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=15, deadline=None)
    def test_all_submitted_tasks_execute_exactly_once(self, nodes, count):
        cluster = SimCluster(SimConfig(num_nodes=nodes, cpus_per_node=2))
        tasks = [SimTask(f"t{i}", duration=0.01) for i in range(count)]
        events = [cluster.submit(t, origin=i % nodes) for i, t in enumerate(tasks)]
        cluster.engine.run()
        assert all(e.triggered for e in events)
        assert cluster.tasks_executed == count
        assert cluster.tasks_reexecuted == 0

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=10, deadline=None)
    def test_makespan_lower_bound(self, cpus):
        """The simulated makespan respects the work-conservation bound."""
        cluster = SimCluster(
            SimConfig(num_nodes=1, cpus_per_node=cpus, spillback_threshold=10_000)
        )
        tasks = [SimTask(f"t{i}", duration=0.1) for i in range(3 * cpus)]
        cluster.run_all(tasks, origins=[0] * len(tasks))
        total_work = 0.1 * len(tasks)
        assert cluster.engine.now >= total_work / cpus - 1e-9


class TestAlgorithmProperties:
    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_centered_ranks_bounds_and_sum(self, values):
        ranks = centered_ranks(np.asarray(values))
        assert ranks.min() >= -0.5 - 1e-9
        assert ranks.max() <= 0.5 + 1e-9
        assert abs(ranks.sum()) < 1e-6

    @given(
        st.lists(st.floats(min_value=0.001, max_value=5), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_async_makespan_bounds(self, durations, workers):
        makespan = async_makespan(durations, workers)
        assert makespan >= max(durations) - 1e-9
        assert makespan >= sum(durations) / workers - 1e-9
        assert makespan <= sum(durations) + 1e-9
