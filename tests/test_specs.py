"""Env/policy specs: the picklable factories tasks are parameterized by."""

import pickle

import numpy as np
import pytest

from repro.rl import EnvSpec, PolicySpec
from repro.rl.envs import CartPoleEnv, PendulumEnv


class TestEnvSpec:
    def test_unknown_env_rejected(self):
        with pytest.raises(ValueError):
            EnvSpec("atari")

    def test_build_constructs_right_class(self):
        assert isinstance(EnvSpec("pendulum").build(), PendulumEnv)
        assert isinstance(EnvSpec("cartpole").build(), CartPoleEnv)

    def test_max_steps_forwarded(self):
        env = EnvSpec("pendulum", max_steps=17).build()
        assert env.max_steps == 17

    def test_callable_as_factory(self):
        spec = EnvSpec("cartpole")
        assert isinstance(spec(), CartPoleEnv)

    def test_metadata_properties(self):
        spec = EnvSpec("pendulum")
        assert spec.observation_size == 3
        assert spec.action_size == 1
        assert spec.continuous
        discrete = EnvSpec("cartpole")
        assert not discrete.continuous

    def test_pickles(self):
        spec = EnvSpec("humanoid", max_steps=100)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.build().max_steps == 100

    def test_seeded_build_deterministic(self):
        a = EnvSpec("pendulum").build(seed=5)
        b = EnvSpec("pendulum").build(seed=5)
        np.testing.assert_allclose(a.reset(), b.reset())


class TestPolicySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec(kind="transformer", observation_size=3, action_size=1)

    def test_for_env_matches_shapes(self):
        env_spec = EnvSpec("cartpole")
        spec = PolicySpec.for_env(env_spec)
        policy = spec.build()
        assert policy.observation_size == 4
        assert policy.action_size == 2
        assert not spec.continuous

    def test_mlp_kind_with_hidden(self):
        env_spec = EnvSpec("pendulum")
        spec = PolicySpec.for_env(env_spec, kind="mlp", hidden=(16, 8))
        policy = spec.build()
        assert policy.hidden == (16, 8)

    def test_build_seed_controls_init(self):
        spec = PolicySpec.for_env(EnvSpec("pendulum"))
        a = spec.build(seed=1).get_flat()
        b = spec.build(seed=1).get_flat()
        c = spec.build(seed=2).get_flat()
        np.testing.assert_allclose(a, b)
        assert not np.allclose(a, c)

    def test_pickles(self):
        spec = PolicySpec.for_env(EnvSpec("cartpole"), kind="mlp", hidden=(8,))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
