"""Integration: collectives and training pipelines under failure.

The paper's pitch is that fault tolerance is *transparent* to application
code — an allreduce or a training loop written against the API keeps
producing correct answers when cluster components fail underneath it.
"""

import numpy as np
import pytest

import repro
from repro.rl import ShardedParameterServer, SyncSGDTrainer, make_dataset, ring_allreduce


class TestAllreduceUnderFailure:
    def test_allreduce_correct_after_prior_node_death(self):
        """Kill a node, then run allreduce on the survivors: correct sums."""
        rt = repro.init(num_nodes=3, num_cpus_per_node=4)
        try:
            victim = [n for n in rt.nodes() if n is not rt.driver_node][0]
            rt.kill_node(victim.node_id)
            arrays = [np.full(16, float(i)) for i in range(4)]
            results = ring_allreduce(arrays)
            for result in results:
                np.testing.assert_allclose(result, sum(arrays))
        finally:
            repro.shutdown()

    def test_allreduce_input_objects_reconstructed(self):
        """Inputs produced by tasks survive loss via lineage during the
        collective."""
        rt = repro.init(num_nodes=2, num_cpus_per_node=4)
        try:

            @repro.remote
            def make_array(i):
                return np.full(8, float(i + 1))

            refs = [make_array.remote(i) for i in range(3)]
            arrays = repro.get(refs, timeout=20)
            repro.free(refs)  # drop every copy; lineage remains
            rebuilt = repro.get(refs, timeout=30)  # transparently replayed
            for a, b in zip(arrays, rebuilt):
                np.testing.assert_allclose(a, b)
            results = ring_allreduce(rebuilt)
            np.testing.assert_allclose(results[0], sum(arrays))
        finally:
            repro.shutdown()


class TestTrainingUnderFailure:
    def test_sgd_converges_despite_node_death(self):
        """Kill a non-driver node mid-training; parameter-server actors on
        it are reconstructed and the loss still goes down."""
        rt = repro.init(num_nodes=3, num_cpus_per_node=4)
        try:
            features, targets, _w = make_dataset(300, 6, seed=9)
            trainer = SyncSGDTrainer(
                features, targets, num_workers=2, num_ps_shards=2, learning_rate=0.3
            )
            first_losses = trainer.train(5)
            victim = [n for n in rt.nodes() if n is not rt.driver_node][0]
            rt.kill_node(victim.node_id)
            second_losses = trainer.train(10)
            assert second_losses[-1] < first_losses[0]
            trainer.close()
        finally:
            repro.shutdown()

    def test_parameter_server_state_survives_via_replay(self):
        """PS shards replay their method chains after a node failure, so
        parameters are *not* reset (exactly-once application of updates)."""
        rt = repro.init(num_nodes=3, num_cpus_per_node=4)
        try:
            server = ShardedParameterServer(np.zeros(8), num_shards=1, learning_rate=1.0)
            gradient = server.split_gradient(np.ones(8))
            for _ in range(3):
                repro.get(server.apply([gradient]), timeout=20)
            np.testing.assert_allclose(server.get_params(), -3 * np.ones(8))
            # Kill whichever node hosts the shard actor.
            state = rt.actors.get_state(server.shards[0].actor_id)
            rt.kill_node(state.node.node_id)
            # The replayed shard must still hold the applied updates.
            np.testing.assert_allclose(server.get_params(), -3 * np.ones(8))
            repro.get(server.apply([gradient]), timeout=30)
            np.testing.assert_allclose(server.get_params(), -4 * np.ones(8))
            server.close()
        finally:
            repro.shutdown()
