"""Cancellation API: dequeue, cooperative interrupt, force, and get().

``repro.cancel(ref)`` follows Ray's semantics:

* not yet scheduled -> dequeued, every ``get`` raises TaskCancelledError;
* running and blocked in ``get`` -> the blocking wait raises inside the
  task (the cooperative cancellation point);
* running pure compute -> ``force=False`` lets the result stand,
  ``force=True`` replaces the outputs at the finish boundary;
* already finished -> no-op, ``cancel`` returns False.
"""

import time

import pytest

import repro
from repro.common.errors import TaskCancelledError


@repro.remote
def quick(x):
    return x * 2


@repro.remote
def spin(seconds):
    time.sleep(seconds)
    return "done"


def test_cancel_queued_task_dequeues(runtime):
    # Fill every CPU with sleepers so the victim stays queued.
    blockers = [spin.remote(0.5) for _ in range(8)]
    victim = quick.remote(21)
    assert repro.cancel(victim) is True
    with pytest.raises(TaskCancelledError):
        repro.get(victim, timeout=10)
    assert repro.get(blockers, timeout=10) == ["done"] * 8


def test_cancel_is_idempotent_and_false_after_finish(runtime):
    ref = quick.remote(5)
    assert repro.get(ref, timeout=10) == 10
    assert repro.cancel(ref) is False  # already finished: nothing to stop

    blockers = [spin.remote(0.5) for _ in range(8)]
    victim = quick.remote(1)
    assert repro.cancel(victim) is True
    # Repeat cancel: the task is already terminal (CANCELLED), so the
    # second call has nothing left to stop.
    assert repro.cancel(victim) is False
    with pytest.raises(TaskCancelledError):
        repro.get(victim, timeout=10)
    repro.get(blockers, timeout=10)


def test_cancel_interrupts_blocked_get(runtime):
    # A task blocked in repro.get on an object that arrives far too late:
    # cancellation must interrupt the wait, not ride it out.
    @repro.remote
    def producer():
        time.sleep(60)
        return "late"

    @repro.remote
    def consumer(ref):
        return repro.get(ref, timeout=55)

    slow_ref = producer.remote()
    blocked = consumer.remote(slow_ref)
    time.sleep(0.3)  # let the consumer dispatch and block in its get
    started = time.monotonic()
    assert repro.cancel(blocked) is True
    with pytest.raises(TaskCancelledError):
        repro.get(blocked, timeout=10)
    # The cooperative interrupt must fire promptly, not ride out the sleep.
    assert time.monotonic() - started < 10
    repro.cancel(slow_ref, force=True)


def test_plain_cancel_lets_finished_compute_stand(runtime):
    ref = spin.remote(0.3)
    time.sleep(0.05)  # ensure it is running, not queued
    repro.cancel(ref)  # non-force: the run is not interrupted mid-compute
    # The sleep completes; the uninterrupted result stands.
    assert repro.get(ref, timeout=10) == "done"


def test_force_cancel_replaces_finished_outputs(runtime):
    ref = spin.remote(0.3)
    time.sleep(0.05)
    assert repro.cancel(ref, force=True) is True
    with pytest.raises(TaskCancelledError):
        repro.get(ref, timeout=10)


def test_cancelled_error_propagates_to_dependents(runtime):
    blockers = [spin.remote(0.5) for _ in range(8)]
    root = quick.remote(1)
    child = quick.remote(root)
    repro.cancel(root)
    with pytest.raises(TaskCancelledError):
        repro.get(child, timeout=10)
    repro.get(blockers, timeout=10)


def test_cancel_put_object_raises(runtime):
    ref = repro.put(42)
    with pytest.raises(ValueError):
        repro.cancel(ref)


def test_cancel_actor_method_flags_without_dequeue(runtime):
    @repro.remote
    class Counter:
        def __init__(self):
            self.value = 0

        def bump(self, delay=0.0):
            if delay:
                time.sleep(delay)
            self.value += 1
            return self.value

    c = Counter.remote()
    busy = c.bump.remote(0.4)  # occupies the mailbox head
    victim = c.bump.remote()
    later = c.bump.remote()
    assert repro.cancel(victim) is True
    with pytest.raises(TaskCancelledError):
        repro.get(victim, timeout=10)
    # The mailbox stays counter-contiguous: later methods still execute,
    # and the cancelled method did not mutate actor state.
    assert repro.get(busy, timeout=10) == 1
    assert repro.get(later, timeout=10) == 2
