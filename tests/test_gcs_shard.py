"""Sharded KV: routing, aggregation, pub-sub through shards."""

from repro.common.ids import ObjectID, TaskID
from repro.gcs.shard import ShardedKV


class TestRouting:
    def test_key_routes_to_same_shard(self):
        kv = ShardedKV(num_shards=4)
        key = ("object", ObjectID.from_seed("x"))
        assert kv.shard_for(key) is kv.shard_for(key)

    def test_table_rows_for_entity_colocated(self):
        """All tables for one entity land on one shard (single-key ops)."""
        kv = ShardedKV(num_shards=8)
        entity = TaskID.from_seed("t")
        assert kv.shard_for(("task", entity)) is kv.shard_for(("status", entity))

    def test_put_get_through_shards(self):
        kv = ShardedKV(num_shards=4)
        for i in range(40):
            kv.put(("t", ObjectID.from_seed(str(i))), i)
        for i in range(40):
            assert kv.get(("t", ObjectID.from_seed(str(i)))) == i

    def test_keys_spread_across_shards(self):
        kv = ShardedKV(num_shards=4)
        for i in range(200):
            kv.put(("t", ObjectID.from_seed(str(i))), i)
        nonempty = sum(1 for shard in kv.shards if shard.num_entries() > 0)
        assert nonempty == 4

    def test_plain_string_keys_work(self):
        kv = ShardedKV(num_shards=3)
        kv.put("plain", 1)
        assert kv.get("plain") == 1


class TestAggregation:
    def test_num_entries_sums_shards(self):
        kv = ShardedKV(num_shards=4)
        for i in range(25):
            kv.put(("t", ObjectID.from_seed(str(i))), i)
        assert kv.num_entries() == 25

    def test_keys_union(self):
        kv = ShardedKV(num_shards=2)
        keys = [("t", ObjectID.from_seed(str(i))) for i in range(10)]
        for k in keys:
            kv.put(k, 0)
        assert sorted(map(repr, kv.keys())) == sorted(map(repr, keys))

    def test_append_and_log(self):
        kv = ShardedKV(num_shards=2)
        key = ("log", ObjectID.from_seed("o"))
        kv.append(key, 1)
        kv.append(key, 2)
        assert kv.log(key) == [1, 2]

    def test_delete(self):
        kv = ShardedKV(num_shards=2)
        kv.put("k", 1)
        kv.delete("k")
        assert kv.get("k") is None


class TestSubscriptions:
    def test_subscribe_routes_to_owning_shard(self):
        kv = ShardedKV(num_shards=4)
        key = ("object_loc", ObjectID.from_seed("o"))
        seen = []
        kv.subscribe(key, lambda _k, v: seen.append(v))
        kv.append(key, ("add", "n1"))
        assert seen == [("add", "n1")]

    def test_invalid_shard_count(self):
        import pytest

        with pytest.raises(ValueError):
            ShardedKV(num_shards=0)
