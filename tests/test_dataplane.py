"""Zero-copy data plane: deserialized-value cache, parallel prefetch,
multi-replica striping, batched GCS object writes, node-table locking."""

from __future__ import annotations

import threading

import numpy as np
import pytest

import repro
from repro.common.ids import NodeID, ObjectID, TaskID
from repro.common.metrics import MetricsRegistry
from repro.core import object_store as object_store_module
from repro.core.object_store import DeserializedValueCache, LocalObjectStore
from repro.core.task_spec import ArgRef, TaskSpec
from repro.core.transfer import TransferService, striped_copy, striped_copy_multi
from repro.core.worker import resolve_args
from repro.common.serialization import SerializedObject, deserialize, serialize
from repro.gcs.client import GlobalControlStore
from repro.gcs.tables import TaskStatus


def make_store(**kwargs) -> LocalObjectStore:
    kwargs.setdefault("metrics", MetricsRegistry())
    return LocalObjectStore(NodeID.from_seed("dataplane"), **kwargs)


def put_value(store: LocalObjectStore, name: str, value) -> ObjectID:
    object_id = ObjectID.from_seed(name)
    store.put(object_id, serialize(value))
    return object_id


class TestDeserializedValueCache:
    def test_second_read_is_a_cache_hit_returning_same_object(self):
        store = make_store()
        oid = put_value(store, "a", {"weights": np.arange(1000.0)})
        first, found = store.load_value(oid)
        assert found
        second, found = store.load_value(oid)
        assert found
        assert second is first  # cached value, not a re-deserialization
        assert store.value_cache.stats()["hits"] >= 1

    def test_missing_object_reports_not_found(self):
        store = make_store()
        value, found = store.load_value(ObjectID.from_seed("ghost"))
        assert not found and value is None

    def test_delete_and_reput_never_serves_stale_value(self):
        store = make_store()
        oid = put_value(store, "a", "old")
        assert store.load_value(oid) == ("old", True)
        store.delete(oid)
        store.put(oid, serialize("new"))
        assert store.load_value(oid) == ("new", True)

    def test_eviction_invalidates_cached_value(self):
        blob = np.zeros(10_000, dtype=np.uint8)
        size = serialize(blob).total_bytes
        store = make_store(capacity_bytes=int(size * 1.5))
        oid = put_value(store, "a", blob)
        store.load_value(oid)
        assert len(store.value_cache) == 1
        put_value(store, "b", blob)  # forces LRU eviction of "a"
        assert not store.contains(oid)
        assert len(store.value_cache) == 0
        assert store.value_cache.stats()["invalidations"] >= 1
        _value, found = store.load_value(oid)
        assert not found  # no spill directory: the copy is simply gone

    def test_spill_invalidates_cache_and_restore_reloads(self, tmp_path):
        blob = np.arange(10_000, dtype=np.float64)
        size = serialize(blob).total_bytes
        store = make_store(
            capacity_bytes=int(size * 1.5), spill_directory=str(tmp_path)
        )
        oid = put_value(store, "a", blob)
        store.load_value(oid)
        put_value(store, "b", np.zeros_like(blob))  # "a" spills to disk
        assert store.is_spilled(oid)
        assert len(store.value_cache) == 0  # cached value must not pin memory
        restored, found = store.load_value(oid)
        assert found
        np.testing.assert_array_equal(restored, blob)

    def test_drop_all_clears_cache(self):
        store = make_store()
        oid = put_value(store, "a", [1, 2, 3])
        store.load_value(oid)
        store.drop_all()
        assert len(store.value_cache) == 0
        assert store.load_value(oid) == (None, False)

    def test_cache_bytes_bounded_and_lru_evicted_independently(self):
        # The serialized store is unbounded here; only the value cache has
        # a capacity, so its eviction is provably independent.
        blob = bytes(1000)
        size = serialize(blob).total_bytes
        store = make_store(value_cache_capacity_bytes=int(size * 2.5))
        oids = [put_value(store, f"o{i}", blob) for i in range(4)]
        for oid in oids:
            store.load_value(oid)
        cache = store.value_cache
        assert len(cache) == 2  # capacity fits two entries
        assert cache.used_bytes <= int(size * 2.5)
        assert cache.stats()["evictions"] >= 2
        assert store.num_objects() == 4  # serialized store untouched
        # LRU order: the two most recently read survive.
        assert cache.get(oids[-1])[1] and cache.get(oids[-2])[1]
        assert not cache.get(oids[0])[1]

    def test_oversized_value_is_never_admitted(self):
        cache = DeserializedValueCache(capacity_bytes=10)
        cache.put(ObjectID.from_seed("big"), "x" * 100, 1000)
        assert len(cache) == 0

    def test_cache_disabled_store_still_reads(self):
        store = make_store(value_cache_enabled=False)
        assert store.value_cache is None
        oid = put_value(store, "a", 42)
        assert store.load_value(oid) == (42, True)

    def test_racing_readers_never_observe_stale_value_after_reput(self):
        """Readers hammering load_value while an ObjectID is repeatedly
        deleted and re-created with different content (the reconstruction-
        with-different-lineage-state analogue) must never let the writer
        observe an older value through the cache."""
        store = make_store()
        oid = ObjectID.from_seed("contended")
        store.put(oid, serialize(0))
        stop = threading.Event()
        reader_errors: list = []
        writer_errors: list = []

        def reader():
            while not stop.is_set():
                try:
                    store.load_value(oid)
                except Exception as exc:  # noqa: BLE001
                    reader_errors.append(exc)
                    return

        def writer():
            try:
                for generation in range(1, 200):
                    store.delete(oid)
                    store.put(oid, serialize(generation))
                    value, found = store.load_value(oid)
                    # The just-written generation is the only acceptable
                    # answer: a stale cache entry would surface here.
                    if not found or value != generation:
                        writer_errors.append((generation, value, found))
                        return
            finally:
                stop.set()

        readers = [threading.Thread(target=reader) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for t in readers:
            t.start()
        writer_thread.start()
        writer_thread.join(timeout=30)
        stop.set()
        for t in readers:
            t.join(timeout=10)
        assert not writer_errors, f"stale reads observed: {writer_errors[:3]}"
        assert not reader_errors


class TestResolveArgsMemo:
    def test_duplicate_arg_refs_deserialize_once(self, runtime, monkeypatch):
        node = runtime.driver_node
        oid = repro.put([1, 2, 3]).object_id
        calls = []
        real = object_store_module.deserialize
        monkeypatch.setattr(
            object_store_module,
            "deserialize",
            lambda s: calls.append(1) or real(s),
        )
        # Disable the cache so the memo alone carries the dedup.
        node.store.value_cache = None
        spec = TaskSpec(
            task_id=TaskID.from_seed("memo"),
            function_id=None,
            function_name="f",
            args=(ArgRef(oid), ArgRef(oid)),
            kwargs=(("again", ArgRef(oid)),),
            num_returns=1,
        )
        args, kwargs, error = resolve_args(node, spec)
        assert error is None
        assert args[0] == [1, 2, 3] and args[1] is args[0]
        assert kwargs["again"] is args[0]
        assert len(calls) == 1


class TestParallelPrefetch:
    def test_prefetch_replicates_all_inputs(self, runtime):
        refs = [repro.put(np.full(2000, i)) for i in range(8)]
        ids = [r.object_id for r in refs]
        remote = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        issued = runtime.fetcher.prefetch(ids, remote)
        assert issued == 8
        for oid in ids:
            assert remote.store.availability_event(oid).wait(timeout=10)
        counter = runtime.metrics.counter(
            "prefetch_requests_total", "Inputs handed to the prefetch pool"
        )
        assert counter.value >= 8

    def test_prefetch_skips_local_objects(self, runtime):
        ref = repro.put("here")
        assert runtime.fetcher.prefetch([ref.object_id], runtime.driver_node) == 0

    def test_zero_parallelism_falls_back_to_inline_fetch(self, runtime):
        runtime.fetcher.prefetch_parallelism = 0
        ref = repro.put(np.ones(100))
        remote = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        runtime.fetcher.prefetch([ref.object_id], remote)
        assert remote.store.contains(ref.object_id)

    def test_many_input_task_executes(self, runtime):
        refs = [repro.put(i) for i in range(16)]

        @repro.remote
        def total(*values):
            return sum(values)

        assert repro.get(total.remote(*refs), timeout=30) == sum(range(16))


class TestMultiReplicaStriping:
    def test_multi_source_copy_matches_value(self):
        value = serialize(np.arange(100_000)).seal()
        replica = value.copy()
        result = striped_copy_multi([value, replica], chunk_bytes=4096)
        np.testing.assert_array_equal(deserialize(result), np.arange(100_000))
        assert result.owned

    def test_chunks_alternate_between_sources(self):
        a = SerializedObject(b"p", [b"\xaa" * 8], owned=True)
        b = SerializedObject(b"p", [b"\xbb" * 8], owned=True)
        striped = striped_copy_multi([a, b], chunk_bytes=2)
        assert bytes(striped.buffers[0]) == b"\xaa\xaa\xbb\xbb" * 2

    def test_striped_copy_output_is_readonly(self):
        copy = striped_copy(serialize(np.ones(1000)).seal(), chunk_bytes=512)
        view = copy.buffers[0]
        assert isinstance(view, memoryview) and view.readonly

    def test_transfer_stripes_from_multiple_live_replicas(self):
        runtime = repro.init(num_nodes=3, num_cpus_per_node=2)
        try:
            runtime.transfer.chunk_bytes = 1024  # several stripes per buffer
            payload = np.arange(20_000, dtype=np.float64)
            ref = repro.put(payload)
            first, second = [
                n for n in runtime.nodes() if n is not runtime.driver_node
            ]
            assert runtime.transfer.transfer(ref.object_id, first)
            multi = runtime.metrics.counter(
                "transfer_multi_source_total",
                "Replications striped across more than one live replica",
            )
            before = multi.value
            assert runtime.transfer.transfer(ref.object_id, second)
            assert multi.value == before + 1
            value, found = second.store.load_value(ref.object_id)
            assert found
            np.testing.assert_array_equal(value, payload)
        finally:
            repro.shutdown()


class TestBatchedGcsWrites:
    def _entries(self, count, node_id, task_id):
        return [
            (ObjectID.from_seed(f"out-{count}-{i}"), 100 + i, task_id, node_id)
            for i in range(count)
        ]

    def test_batched_outputs_visible_with_location_and_metadata(self):
        gcs = GlobalControlStore(num_shards=4)
        node_id = NodeID.from_seed("n")
        task_id = TaskID.from_seed("t")
        entries = self._entries(3, node_id, task_id)
        gcs.add_task_outputs(entries)
        for object_id, size, tid, nid in entries:
            assert gcs.get_object_locations(object_id) == {node_id}
            entry = gcs.get_object_entry(object_id)
            assert entry.size == size and entry.task_id == task_id

    def test_batched_and_unbatched_paths_agree(self):
        batched = GlobalControlStore(num_shards=2)
        unbatched = GlobalControlStore(num_shards=2)
        node_id = NodeID.from_seed("n")
        task_id = TaskID.from_seed("t")
        entries = self._entries(4, node_id, task_id)
        batched.add_task_outputs(entries, batched=True)
        unbatched.add_task_outputs(entries, batched=False)
        for object_id, _size, _tid, _nid in entries:
            assert batched.get_object_locations(
                object_id
            ) == unbatched.get_object_locations(object_id)
            assert batched.get_object_entry(object_id) == unbatched.get_object_entry(
                object_id
            )

    def test_failed_store_put_publishes_no_location(self):
        gcs = GlobalControlStore(num_shards=1)
        object_id = ObjectID.from_seed("unstored")
        gcs.add_task_outputs([(object_id, 64, TaskID.from_seed("t"), None)])
        assert gcs.get_object_locations(object_id) == set()
        assert gcs.get_object_entry(object_id).size == 64

    def test_batch_publishes_to_subscribers(self):
        gcs = GlobalControlStore(num_shards=2)
        object_id = ObjectID.from_seed("watched")
        seen = []
        gcs.subscribe_object_locations(
            object_id, lambda op, node: seen.append((op, node))
        )
        node_id = NodeID.from_seed("n")
        gcs.add_task_outputs([(object_id, 10, None, node_id)])
        assert seen == [("add", node_id)]

    def test_batch_survives_chain_member_failure(self):
        gcs = GlobalControlStore(num_shards=1, num_replicas=3)
        gcs.kv.shards[0].kill_member(0)
        node_id = NodeID.from_seed("n")
        entries = self._entries(3, node_id, TaskID.from_seed("t"))
        gcs.add_task_outputs(entries)
        for object_id, _size, _tid, _nid in entries:
            assert gcs.get_object_locations(object_id) == {node_id}

    def _finish(self, gcs, batched):
        node_id = NodeID.from_seed("n")
        task_id = TaskID.from_seed("finish")
        gcs.add_task(task_id, spec="spec-sentinel")
        entries = self._entries(2, node_id, task_id)
        gcs.finish_task(
            task_id,
            TaskStatus.FINISHED,
            node_id,
            entries,
            event=("task_finished", dict(task="finish", duration=0.5)),
            batched=batched,
        )
        return node_id, task_id, entries

    @pytest.mark.parametrize("batched", [True, False])
    def test_finish_task_coalesces_outputs_status_and_event(self, batched):
        gcs = GlobalControlStore(num_shards=4)
        node_id, task_id, entries = self._finish(gcs, batched)
        for object_id, size, tid, _nid in entries:
            assert gcs.get_object_locations(object_id) == {node_id}
            assert gcs.get_object_entry(object_id).size == size
        task_entry = gcs.get_task(task_id)
        assert task_entry.status == TaskStatus.FINISHED
        assert task_entry.node_id == node_id
        assert task_entry.spec == "spec-sentinel"
        events = gcs.events("task_finished")
        assert len(events) == 1 and events[0].as_dict()["duration"] == 0.5

    def test_finish_task_requires_task_row(self):
        gcs = GlobalControlStore(num_shards=1)
        with pytest.raises(KeyError):
            gcs.finish_task(
                TaskID.from_seed("ghost"), TaskStatus.FINISHED, None, []
            )


class TestNodeTableLocking:
    def test_concurrent_registration_and_lookup(self):
        gcs = GlobalControlStore(num_shards=1)
        service = TransferService(gcs)
        object_id = ObjectID.from_seed("hot")

        class FakeNode:
            def __init__(self, index):
                self.node_id = NodeID.from_seed(f"node-{index}")
                self.alive = True

        errors: list = []

        def registrar():
            try:
                for i in range(500):
                    node = FakeNode(i)
                    service.register_node(node)
                    gcs.add_object_location(object_id, node.node_id)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for _ in range(500):
                    service.live_locations(object_id)
                    service.node(NodeID.from_seed("node-0"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=registrar)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(service.live_locations(object_id)) == 500


class TestSpillWithMemoryviewBuffers:
    def test_striped_copy_spills_and_restores(self, tmp_path):
        """Transfer-striped objects carry memoryview buffers, which pickle
        rejects; the spill path must materialize them."""
        payload = np.arange(30_000, dtype=np.float64)
        striped = striped_copy(serialize(payload).seal(), chunk_bytes=4096)
        assert any(isinstance(b, memoryview) for b in striped.buffers)
        size = striped.total_bytes
        store = make_store(
            capacity_bytes=int(size * 1.5), spill_directory=str(tmp_path)
        )
        oid = ObjectID.from_seed("striped")
        store.put(oid, striped)
        put_value(store, "pressure", np.zeros_like(payload))  # spills "striped"
        assert store.is_spilled(oid)
        restored = store.get(oid)
        assert restored is not None
        np.testing.assert_array_equal(deserialize(restored), payload)

    def test_unsealed_put_then_spill_round_trip(self, tmp_path):
        payload = np.arange(20_000, dtype=np.int64)
        serialized = serialize(payload)  # unowned memoryviews; put seals
        size = serialized.total_bytes
        store = make_store(
            capacity_bytes=int(size * 1.5), spill_directory=str(tmp_path)
        )
        oid = ObjectID.from_seed("sealed")
        store.put(oid, serialized)
        put_value(store, "pressure", np.zeros_like(payload))
        value, found = store.load_value(oid)
        assert found
        np.testing.assert_array_equal(value, payload)


class TestPutSealing:
    def test_resident_object_does_not_alias_producer_memory(self):
        store = make_store()
        array = np.ones(1000, dtype=np.float64)
        oid = ObjectID.from_seed("sealed-at-put")
        store.put(oid, serialize(array))
        array[:] = -1.0  # producer mutates after the put
        value, found = store.load_value(oid)
        assert found
        np.testing.assert_array_equal(value, np.ones(1000))

    def test_owned_objects_are_not_copied_again(self):
        store = make_store()
        sealed = serialize(np.ones(100)).seal()
        oid = ObjectID.from_seed("owned")
        store.put(oid, sealed)
        assert store.get(oid) is sealed
