"""Policies and the backprop MLP: flat-vector roundtrips, exact gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.rl.nn import MLP, log_prob_categorical, softmax
from repro.rl.policy import LinearPolicy, MLPPolicy
from repro.rl.optim import SGD, Adam


class TestLinearPolicy:
    def test_flat_roundtrip(self):
        policy = LinearPolicy(3, 2, seed=0)
        theta = policy.get_flat()
        clone = LinearPolicy(3, 2, seed=99)
        clone.set_flat(theta)
        np.testing.assert_allclose(clone.get_flat(), theta)
        obs = np.array([0.1, -0.2, 0.3])
        np.testing.assert_allclose(clone.act(obs), policy.act(obs))

    def test_continuous_action_bounded(self):
        policy = LinearPolicy(3, 1, continuous=True, action_scale=2.0, seed=0)
        policy.set_flat(np.full(policy.num_params(), 100.0))
        action = policy.act(np.ones(3))
        assert np.all(np.abs(action) <= 2.0 + 1e-9)

    def test_discrete_returns_argmax_index(self):
        policy = LinearPolicy(2, 4, continuous=False, seed=0)
        action = policy.act(np.array([1.0, -1.0]))
        assert isinstance(action, int)
        assert 0 <= action < 4

    def test_wrong_size_rejected(self):
        policy = LinearPolicy(3, 2)
        with pytest.raises(ValueError):
            policy.set_flat(np.zeros(5))

    def test_perturbed_moves_by_sigma_noise(self):
        policy = LinearPolicy(3, 2, seed=0)
        noise = np.ones(policy.num_params())
        shifted = policy.perturbed(noise, sigma=0.5)
        np.testing.assert_allclose(
            shifted.get_flat(), policy.get_flat() + 0.5, atol=1e-12
        )

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_flat_roundtrip_any_shape(self, obs_size, act_size):
        policy = LinearPolicy(obs_size, act_size, seed=1)
        theta = np.random.default_rng(0).standard_normal(policy.num_params())
        policy.set_flat(theta)
        np.testing.assert_allclose(policy.get_flat(), theta)


class TestMLPPolicy:
    def test_flat_roundtrip(self):
        policy = MLPPolicy(4, 2, hidden=(8, 8), seed=0)
        theta = policy.get_flat()
        clone = policy.clone()
        np.testing.assert_allclose(clone.get_flat(), theta)

    def test_num_params(self):
        policy = MLPPolicy(4, 2, hidden=(8,), seed=0)
        expected = 8 * 4 + 8 + 2 * 8 + 2
        assert policy.num_params() == expected

    def test_act_deterministic(self):
        policy = MLPPolicy(3, 1, hidden=(5,), seed=0)
        obs = np.array([0.5, 0.5, 0.5])
        np.testing.assert_allclose(policy.act(obs), policy.act(obs))


class TestMLPGradients:
    def test_backward_matches_numerical_gradient(self):
        """Exact backprop check against central differences."""
        rng = np.random.default_rng(0)
        net = MLP(3, 5, 2, seed=1)
        x = rng.standard_normal((4, 3))
        grad_out = rng.standard_normal((4, 2))

        def loss(theta):
            net.set_flat(theta)
            out, _ = net.forward(x)
            return float(np.sum(out * grad_out))

        theta0 = net.get_flat()
        out, cache = net.forward(x)
        analytic = net.backward(cache, grad_out)
        eps = 1e-6
        for index in rng.choice(theta0.size, size=12, replace=False):
            bumped = theta0.copy()
            bumped[index] += eps
            up = loss(bumped)
            bumped[index] -= 2 * eps
            down = loss(bumped)
            numeric = (up - down) / (2 * eps)
            assert analytic[index] == pytest.approx(numeric, rel=1e-4, abs=1e-6)
        net.set_flat(theta0)

    def test_flat_roundtrip(self):
        net = MLP(3, 4, 2, seed=0)
        theta = net.get_flat()
        net.set_flat(theta * 2)
        np.testing.assert_allclose(net.get_flat(), theta * 2)
        with pytest.raises(ValueError):
            net.set_flat(np.zeros(3))

    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((6, 4)) * 10
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6))
        assert np.all(probs >= 0)

    def test_log_prob_categorical(self):
        logits = np.array([[0.0, np.log(3.0)]])  # probs = [0.25, 0.75]
        lp = log_prob_categorical(logits, np.array([1]))
        assert lp[0] == pytest.approx(np.log(0.75))


class TestOptimizers:
    def test_sgd_ascends_quadratic(self):
        # maximize -||x||²: gradient is -2x; iterates should approach 0.
        theta = np.array([5.0, -3.0])
        opt = SGD(learning_rate=0.1)
        for _ in range(100):
            theta = opt.step(theta, -2 * theta)
        assert np.linalg.norm(theta) < 1e-3

    def test_sgd_momentum_accelerates(self):
        theta_a = np.array([5.0])
        theta_b = np.array([5.0])
        plain, momentum = SGD(0.01), SGD(0.01, momentum=0.9)
        for _ in range(50):
            theta_a = plain.step(theta_a, -2 * theta_a)
            theta_b = momentum.step(theta_b, -2 * theta_b)
        assert abs(theta_b[0]) < abs(theta_a[0])

    def test_adam_converges(self):
        theta = np.array([4.0, 4.0])
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            theta = opt.step(theta, -2 * theta)
        assert np.linalg.norm(theta) < 1e-2

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            Adam(learning_rate=-1)
