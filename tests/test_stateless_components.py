"""Section 4.2.1's design claim, tested: every component is stateless.

"on failure, components simply restart and read the lineage from the
GCS."  We swap live components for freshly constructed ones mid-workload
and nothing breaks, because all state they need is in the GCS.
"""

import time

import pytest

import repro
from repro.core.global_scheduler import GlobalScheduler
from repro.core.reconstruction import ReconstructionManager


@repro.remote
def work(x):
    return x * 3


class TestComponentRestart:
    def test_global_scheduler_swapped_mid_run(self, runtime):
        """Replace the global scheduler with a brand-new instance: all
        placement state (loads, locations) is re-read from GCS/heartbeats."""
        repro.get([work.remote(i) for i in range(8)], timeout=20)
        runtime.global_schedulers[0] = GlobalScheduler(
            runtime.gcs,
            get_nodes=runtime.live_nodes,
            locality_aware=runtime.config.locality_aware,
        )
        assert repro.get([work.remote(i) for i in range(16)], timeout=30) == [
            i * 3 for i in range(16)
        ]
        assert runtime.global_schedulers[0].decisions >= 0

    def test_reconstruction_manager_swapped_mid_run(self, runtime):
        ref = work.remote(5)
        assert repro.get(ref, timeout=20) == 15
        runtime.reconstruction = ReconstructionManager(runtime)
        runtime.fetcher.reconstruct = runtime.reconstruction.maybe_reconstruct
        # Lose the object; the *new* manager replays from GCS lineage.
        repro.free(ref)
        assert repro.get(ref, timeout=30) == 15
        assert runtime.reconstruction.reconstructed_tasks >= 1

    def test_scheduler_estimates_rebuilt_from_reports(self, runtime):
        """A fresh scheduler's EWMAs re-learn from completion reports."""
        fresh = GlobalScheduler(runtime.gcs, get_nodes=runtime.live_nodes)
        initial = fresh.avg_task_duration.get()
        runtime.global_schedulers.append(fresh)
        repro.get([work.remote(i) for i in range(20)], timeout=20)
        # report_task_duration fans out to every replica, including ours.
        assert fresh.avg_task_duration.get() != initial

    def test_object_locations_answerable_by_anyone(self, runtime):
        """Any component can answer 'where is X?' from the GCS alone."""
        ref = repro.put(b"z" * 1000)
        locations = runtime.gcs.get_object_locations(ref.object_id)
        assert locations
        for node_id in locations:
            assert runtime.node(node_id).store.contains(ref.object_id)
