"""Named actors: options(name=...), get_actor, duplicate rejection, reuse.

The name registry lives in the GCS actor-name table: a name is claimed
atomically at creation (before any durable side effect), resolved by
``repro.get_actor``, and released only when the actor is permanently dead
(``repro.kill`` / unreconstructable failure) — a restartable failure keeps
the name bound.
"""

import pytest

import repro
from repro.common.errors import TaskExecutionError


@repro.remote
class Registry:
    def __init__(self, tag="r"):
        self.tag = tag
        self.items = []

    def add(self, item):
        self.items.append(item)
        return len(self.items)

    def peek(self):
        return list(self.items)


def test_create_and_lookup_by_name(runtime):
    Registry.options(name="alpha").remote()
    handle = repro.get_actor("alpha")
    assert repro.get(handle.add.remote("x"), timeout=10) == 1
    # A second lookup resolves to the same actor (same state).
    again = repro.get_actor("alpha")
    assert repro.get(again.add.remote("y"), timeout=10) == 2
    assert repro.get(handle.peek.remote(), timeout=10) == ["x", "y"]


def test_duplicate_name_rejected(runtime):
    Registry.options(name="taken").remote()
    with pytest.raises(ValueError, match="already taken"):
        Registry.options(name="taken").remote()
    # The survivor still works and the duplicate left no debris.
    handle = repro.get_actor("taken")
    assert repro.get(handle.add.remote(1), timeout=10) == 1


def test_unknown_name_raises(runtime):
    with pytest.raises(ValueError, match="no live actor"):
        repro.get_actor("never-created")


def test_kill_releases_name_for_reuse(runtime):
    first = Registry.options(name="cycled").remote()
    assert repro.get(first.add.remote("a"), timeout=10) == 1
    repro.kill(first)
    with pytest.raises(ValueError, match="no live actor"):
        repro.get_actor("cycled")
    # The name is free again; the replacement starts fresh.
    Registry.options(name="cycled").remote()
    fresh = repro.get_actor("cycled")
    assert repro.get(fresh.peek.remote(), timeout=10) == []


def test_killed_named_actor_methods_raise(runtime):
    handle = Registry.options(name="doomed").remote()
    repro.get(handle.add.remote(1), timeout=10)
    repro.kill(handle)
    with pytest.raises(TaskExecutionError, match="died permanently"):
        repro.get(handle.add.remote(2), timeout=10)


def test_name_survives_node_failure(runtime):
    handle = Registry.options(name="survivor").remote()
    assert repro.get(handle.add.remote("pre"), timeout=10) == 1
    state = runtime.actors.get_state(handle.actor_id)
    runtime.kill_node(state.node.node_id)
    # Restartable failure: the name stays bound to the rebuilt actor.
    again = repro.get_actor("survivor")
    assert repro.get(again.add.remote("post"), timeout=30) == 2


def test_unnamed_actors_unaffected(runtime):
    a = Registry.remote()
    b = Registry.options(name="named").remote()
    assert repro.get(a.add.remote(1), timeout=10) == 1
    assert repro.get(b.add.remote(1), timeout=10) == 1
