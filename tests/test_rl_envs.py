"""Environment dynamics: Pendulum, CartPole, Humanoid surrogate."""

import numpy as np
import pytest

from repro.rl.envs import CartPoleEnv, HumanoidSurrogateEnv, PendulumEnv
from repro.rl.envs.pendulum import MAX_SPEED, MAX_TORQUE, angle_normalize


class TestPendulum:
    def test_observation_shape_and_bounds(self):
        env = PendulumEnv(seed=0)
        obs = env.reset()
        assert obs.shape == (3,)
        assert -1 <= obs[0] <= 1 and -1 <= obs[1] <= 1
        assert np.hypot(obs[0], obs[1]) == pytest.approx(1.0)

    def test_reward_is_negative_cost(self):
        env = PendulumEnv(seed=0)
        env.reset()
        _obs, reward, _done = env.step(0.0)
        assert reward <= 0

    def test_torque_clipped(self):
        env = PendulumEnv(seed=1)
        env.reset()
        # A huge torque must behave exactly like MAX_TORQUE.
        env2 = PendulumEnv(seed=1)
        env2.reset()
        obs_a = env.step(1e9)[0]
        obs_b = env2.step(MAX_TORQUE)[0]
        np.testing.assert_allclose(obs_a, obs_b)

    def test_speed_clipped(self):
        env = PendulumEnv(seed=2)
        env.reset()
        for _ in range(100):
            obs, _r, done = env.step(MAX_TORQUE)
            assert abs(obs[2]) <= MAX_SPEED + 1e-9
            if done:
                break

    def test_episode_terminates_at_max_steps(self):
        env = PendulumEnv(seed=0, max_steps=10)
        env.reset()
        done = False
        steps = 0
        while not done:
            _o, _r, done = env.step(0.0)
            steps += 1
        assert steps == 10
        assert env.has_terminated()

    def test_seeded_determinism(self):
        a, b = PendulumEnv(seed=7), PendulumEnv(seed=7)
        np.testing.assert_allclose(a.reset(), b.reset())
        for _ in range(5):
            np.testing.assert_allclose(a.step(1.0)[0], b.step(1.0)[0])

    def test_angle_normalize(self):
        assert angle_normalize(0.0) == 0.0
        assert angle_normalize(2 * np.pi) == pytest.approx(0.0)
        assert angle_normalize(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_physics_step_matches_closed_form(self):
        """One Euler step against the hand-computed update."""
        env = PendulumEnv(seed=0)
        env.reset()
        theta, theta_dot = env._theta, env._theta_dot
        u = 1.0
        expected_thdot = theta_dot + (15.0 * np.sin(theta) + 3.0 * u) * 0.05
        expected_thdot = np.clip(expected_thdot, -MAX_SPEED, MAX_SPEED)
        expected_theta = theta + expected_thdot * 0.05
        obs, _r, _d = env.step(u)
        assert obs[2] == pytest.approx(expected_thdot)
        assert obs[0] == pytest.approx(np.cos(expected_theta))


class TestCartPole:
    def test_reset_near_zero(self):
        env = CartPoleEnv(seed=0)
        assert np.all(np.abs(env.reset()) <= 0.05)

    def test_actions_move_cart(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        right = env.step(1)[0]
        assert right[1] > 0  # positive velocity after a push right

    def test_episode_ends_on_pole_fall(self):
        env = CartPoleEnv(seed=0, max_steps=500)
        env.reset()
        steps = 0
        done = False
        while not done:
            _obs, reward, done = env.step(0)  # constant push: falls fast
            assert reward == 1.0
            steps += 1
        assert steps < 200

    def test_step_after_done_raises(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        while not env.has_terminated():
            env.step(0)
        with pytest.raises(RuntimeError):
            env.step(0)

    def test_reset_clears_done(self):
        env = CartPoleEnv(seed=0)
        env.reset()
        while not env.has_terminated():
            env.step(0)
        env.reset()
        assert not env.has_terminated()


class TestHumanoidSurrogate:
    def test_shapes_match_mujoco_humanoid(self):
        env = HumanoidSurrogateEnv(seed=0)
        assert env.reset().shape == (376,)
        assert env.action_size == 17

    def test_good_actions_yield_higher_reward(self):
        env = HumanoidSurrogateEnv(seed=0)
        obs = env.reset()
        target = obs[:17]
        _o, aligned_reward, _d = env.step(target)
        env2 = HumanoidSurrogateEnv(seed=0)
        obs2 = env2.reset()
        _o, opposed_reward, _d = env2.step(-obs2[:17])
        assert aligned_reward > opposed_reward

    def test_bad_policies_fall_early(self):
        """Variable episode lengths: the property Table 4/Fig 14 rely on."""
        rng = np.random.default_rng(0)
        lengths = []
        for seed in range(5):
            env = HumanoidSurrogateEnv(seed=seed, max_steps=500)
            obs = env.reset()
            steps = 0
            while not env.has_terminated():
                env.step(rng.standard_normal(17))  # random policy
                steps += 1
            lengths.append(steps)
        assert max(lengths) < 500  # random policies fall before the cap
        aligned_env = HumanoidSurrogateEnv(seed=0, max_steps=500)
        obs = aligned_env.reset()
        steps = 0
        while not aligned_env.has_terminated():
            obs, _r, _d = aligned_env.step(obs[:17])
            steps += 1
        assert steps == 500  # a tracking policy survives to the cap
