"""Public API: actors — serial execution, state, handles, failures."""

import pytest

import repro


@repro.remote
class Counter:
    def __init__(self, start=0):
        self.value = start

    def incr(self, amount=1):
        self.value += amount
        return self.value

    def read(self):
        return self.value

    def boom(self):
        raise ValueError("method error")


@repro.remote
def bump_through_task(counter):
    """Actor handles can be passed to tasks (Section 3.1)."""
    return repro.get(counter.incr.remote())


class TestActorBasics:
    def test_creation_and_method(self, runtime):
        counter = Counter.remote(5)
        assert repro.get(counter.incr.remote()) == 6

    def test_methods_execute_serially_in_order(self, runtime):
        """Stateful edges: each method sees the previous method's state."""
        counter = Counter.remote()
        refs = [counter.incr.remote() for _ in range(20)]
        assert repro.get(refs) == list(range(1, 21))

    def test_constructor_kwargs(self, runtime):
        counter = Counter.remote(start=10)
        assert repro.get(counter.read.remote()) == 10

    def test_two_actors_independent_state(self, runtime):
        a, b = Counter.remote(), Counter.remote(100)
        repro.get([a.incr.remote(), b.incr.remote()])
        assert repro.get(a.read.remote()) == 1
        assert repro.get(b.read.remote()) == 101

    def test_futures_as_method_args(self, runtime):
        @repro.remote
        def seven():
            return 7

        counter = Counter.remote()
        assert repro.get(counter.incr.remote(seven.remote())) == 7

    def test_handle_passed_to_task(self, runtime):
        counter = Counter.remote()
        results = sorted(repro.get([bump_through_task.remote(counter) for _ in range(3)]))
        assert results == [1, 2, 3]

    def test_direct_instantiation_rejected(self, runtime):
        with pytest.raises(TypeError):
            Counter()

    def test_private_attribute_access_raises(self, runtime):
        counter = Counter.remote()
        with pytest.raises(AttributeError):
            _ = counter._internal


class TestActorErrors:
    def test_method_error_propagates(self, runtime):
        counter = Counter.remote()
        with pytest.raises(repro.TaskExecutionError) as info:
            repro.get(counter.boom.remote())
        assert isinstance(info.value.cause, ValueError)

    def test_actor_survives_method_error(self, runtime):
        counter = Counter.remote()
        repro.get(counter.incr.remote())
        with pytest.raises(repro.TaskExecutionError):
            repro.get(counter.boom.remote())
        assert repro.get(counter.incr.remote()) == 2

    def test_constructor_failure_kills_actor(self, runtime):
        @repro.remote
        class Broken:
            def __init__(self):
                raise RuntimeError("bad init")

            def method(self):
                return 1

        actor = Broken.remote()
        with pytest.raises(repro.TaskExecutionError):
            repro.get(actor.method.remote(), timeout=10)


class TestActorKill:
    def test_kill_releases_resources(self, runtime):
        # The cluster has 8 CPUs; create and kill 12 actors serially —
        # only possible if kill releases each actor's reservation.
        for i in range(12):
            counter = Counter.remote()
            assert repro.get(counter.incr.remote()) == 1
            repro.kill(counter)

    def test_methods_after_kill_fail(self, runtime):
        counter = Counter.remote()
        repro.get(counter.incr.remote())
        repro.kill(counter)
        with pytest.raises(repro.TaskExecutionError):
            repro.get(counter.incr.remote(), timeout=10)

    def test_kill_with_restart_replays_state(self, runtime):
        """A crash-restart rebuilds the actor by replaying its methods."""
        counter = Counter.options(checkpoint_interval=None).remote()
        repro.get([counter.incr.remote() for _ in range(5)])
        repro.kill(counter, restart=True)
        # State is rebuilt from the method log: next incr sees value 5.
        assert repro.get(counter.incr.remote(), timeout=20) == 6


class TestActorResources:
    def test_gpu_actor_placed_on_gpu_node(self, gpu_runtime):
        @repro.remote(num_gpus=1)
        class GpuActor:
            def where(self):
                from repro.core import context

                return context.current_node().node_id

        actor = GpuActor.remote()
        node_id = repro.get(actor.where.remote())
        node = gpu_runtime.node(node_id)
        assert node.resources.total.get("GPU", 0) > 0

    def test_actor_options_override(self, runtime):
        actor = Counter.options(max_restarts=0).remote()
        state = runtime.actors.get_state(actor.actor_id)
        assert state.max_restarts == 0

    def test_actor_placement_respects_reservations(self, runtime):
        """Actor lifetime reservations must spread across nodes: 8 actors
        on 2×4-CPU nodes fit exactly; a placement that ignores
        reservations deadlocks this (regression for a real bug)."""
        actors = [Counter.remote() for _ in range(8)]
        results = repro.get([a.incr.remote() for a in actors], timeout=30)
        assert results == [1] * 8
        per_node = {}
        for actor in actors:
            state = runtime.actors.get_state(actor.actor_id)
            per_node[state.node.node_id] = per_node.get(state.node.node_id, 0) + 1
        assert sorted(per_node.values()) == [4, 4]
        for actor in actors:
            repro.kill(actor)

    def test_concurrent_pipelines_with_actor_pressure(self, runtime):
        """Several driver tasks each creating actors (the Figure 3 shape)
        make progress even when reservations near cluster capacity."""

        @repro.remote
        def pipeline(seed):
            counter = Counter.remote(seed)
            values = [repro.get(counter.incr.remote()) for _ in range(3)]
            repro.kill(counter)
            return values[-1]

        results = repro.get([pipeline.remote(i * 10) for i in range(3)], timeout=60)
        assert results == [3, 13, 23]
