"""The unified options/config surface (repro.common.options).

All four ``.options()`` surfaces — task, actor, method, deployment — plus
the ``@repro.remote`` / ``@serve.deployment`` decorators validate through
the single ``Options.for_surface`` path: unknown keys raise TypeError with
a did-you-mean suggestion, chained calls merge, and ``repro.init``
rejects unknown RuntimeConfig overrides.
"""

import pytest

import repro
from repro import serve
from repro.common.options import UNSET, Options


@repro.remote
def echo(x):
    return x


@repro.remote(num_cpus=2, max_retries=1)
def heavy(x):
    return x


@repro.remote(num_cpus=2)
class Counter:
    def __init__(self):
        self.value = 0

    def incr(self, by=1):
        self.value += by
        return self.value


class TestOptionsObject:
    def test_unset_fields_are_distinguished_from_none(self):
        opts = Options.for_surface("actor", checkpoint_interval=None)
        assert opts.is_set("checkpoint_interval")
        assert opts.get("checkpoint_interval", 5) is None
        assert not opts.is_set("name")
        assert opts.get("name", "fallback") == "fallback"

    def test_merged_later_fields_win(self):
        first = Options.for_surface("task", num_cpus=2, max_retries=1)
        second = Options.for_surface("task", max_retries=3)
        merged = first.merged(second)
        assert merged.get("num_cpus") == 2
        assert merged.get("max_retries") == 3

    def test_set_fields_round_trip(self):
        opts = Options.for_surface("task", num_returns=2)
        assert opts.set_fields() == {"num_returns": 2}
        assert "num_returns=2" in repr(opts)

    def test_unknown_surface_rejected(self):
        with pytest.raises(ValueError, match="unknown options surface"):
            Options.for_surface("lambda", num_cpus=1)

    def test_value_validation(self):
        with pytest.raises(TypeError, match="num_returns"):
            Options.for_surface("task", num_returns=0)
        with pytest.raises(TypeError, match="num_cpus"):
            Options.for_surface("task", num_cpus=-1)
        with pytest.raises(TypeError, match="retry_exceptions"):
            Options.for_surface("task", retry_exceptions=KeyError)
        with pytest.raises(TypeError, match="batch_wait_timeout_s"):
            Options.for_surface("deployment", batch_wait_timeout_s=-0.5)
        with pytest.raises(TypeError, match="name"):
            Options.for_surface("actor", name="")


class TestUnknownKeys:
    """Every surface rejects unknown keys through the one shared path."""

    def test_task_options_did_you_mean(self):
        with pytest.raises(TypeError, match="did you mean 'num_returns'"):
            echo.options(num_return=2)

    def test_task_decorator_unknown_key(self):
        with pytest.raises(TypeError, match="unknown task option"):
            repro.remote(num_gups=1)(lambda x: x)

    def test_actor_options_did_you_mean(self):
        with pytest.raises(TypeError, match="did you mean 'max_restarts'"):
            Counter.options(max_restart=0)

    def test_actor_decorator_unknown_key(self):
        with pytest.raises(TypeError, match="unknown actor option"):

            @repro.remote(checkpoint_intervall=3)
            class Bad:
                pass

    def test_method_options_unknown_key(self, runtime):
        counter = Counter.remote()
        with pytest.raises(TypeError, match="unknown method option"):
            counter.incr.options(num_cpus=1)

    def test_deployment_options_did_you_mean(self):
        with pytest.raises(TypeError, match="did you mean 'max_batch_size'"):
            serve.deployment(max_batchsize=4)

    def test_cross_surface_hint_names_the_other_surface(self):
        # 'checkpoint_interval' is an actor knob; the task error says so.
        with pytest.raises(TypeError, match="actor"):
            echo.options(checkpoint_interval=3)


class TestChaining:
    def test_task_options_chain_merges(self, runtime):
        g = heavy.options(num_returns=1).options(max_retries=2)
        # Both the decorator resources and the first options() survive.
        assert g._resources.get("CPU") == 2
        assert g._max_retries == 2
        assert repro.get(g.remote(7)) == 7

    def test_task_options_resources_override(self):
        g = heavy.options(num_cpus=1)
        assert g._resources.get("CPU") == 1

    def test_actor_options_keep_decorator_resources(self, runtime):
        """Regression: ActorClass.options used to reset resources to the
        default when no resource key was passed."""
        scoped = Counter.options(max_restarts=0)
        assert scoped._resources.get("CPU") == 2
        actor = scoped.remote()
        state = runtime.actors.get_state(actor.actor_id)
        assert state.max_restarts == 0

    def test_actor_options_chain_merges(self, runtime):
        scoped = Counter.options(name="chained").options(max_restarts=1)
        assert scoped._name == "chained"
        assert scoped._max_restarts == 1
        actor = scoped.remote()
        assert repro.get_actor("chained").actor_id == actor.actor_id

    def test_method_options_chain_merges(self, runtime):
        counter = Counter.remote()
        bound = counter.incr.options(max_retries=2).options(num_returns=1)
        assert bound._max_retries == 2
        assert repro.get(bound.remote()) == 1

    def test_deployment_options_chain_merges(self):
        @serve.deployment(num_replicas=2, max_batch_size=4)
        def model(x):
            return x

        tuned = model.options(max_batch_size=8).options(batch_wait_timeout_s=0.01)
        assert tuned.opts.get("num_replicas") == 2
        assert tuned.opts.get("max_batch_size") == 8
        assert tuned.opts.get("batch_wait_timeout_s") == 0.01


class TestInitValidation:
    def test_unknown_override_rejected_before_startup(self):
        with pytest.raises(TypeError, match="did you mean 'num_nodes'"):
            repro.init(num_nodez=2)
        assert not repro.is_initialized()

    def test_error_lists_valid_fields(self):
        with pytest.raises(TypeError, match="gcs_shards"):
            repro.init(definitely_not_a_field=1)

    def test_describe_covers_every_field(self):
        rows = repro.RuntimeConfig.describe()
        names = {row["name"] for row in rows}
        assert names == set(repro.RuntimeConfig.__dataclass_fields__)
        for row in rows:
            assert row["doc"], f"field {row['name']} has no doc line"


class TestHandleReprs:
    def test_actor_handle_repr_carries_name_and_incarnation(self, runtime):
        actor = Counter.options(name="reprtest").remote()
        repro.get(actor.incr.remote())
        text = repr(actor)
        assert "Counter" in text
        assert "name='reprtest'" in text
        assert "incarnation=1" in text
        repro.kill(actor, restart=True)
        assert repro.get(actor.incr.remote(), timeout=20) == 2
        assert "incarnation=2" in repr(actor)

    def test_actor_handle_repr_without_runtime_state(self):
        from repro.common.ids import ActorID

        handle = repro.ActorHandle(ActorID.from_seed("repr-orphan"))
        assert handle.actor_id.hex()[:12] in repr(handle)
