"""The simulated cluster: scheduling policy, locality, lineage replay."""

import pytest

from repro.sim import SimCluster, SimConfig, SimTask
from repro.sim.cluster import SimulationError
from repro.sim.workloads import (
    dependency_chains,
    empty_tasks,
    heterogeneous_rollouts,
    locality_tasks,
)


class TestBasicExecution:
    def test_single_task_completes(self):
        cluster = SimCluster(SimConfig(num_nodes=1, cpus_per_node=2))
        event = cluster.submit(SimTask("t", duration=0.5))
        cluster.engine.run()
        assert event.triggered
        assert event.value >= 0.5  # latency includes the execution
        assert cluster.tasks_executed == 1

    def test_outputs_registered_with_lineage(self):
        cluster = SimCluster(SimConfig(num_nodes=1))
        task = SimTask("p", duration=0.1, outputs=(("obj", 64),))
        cluster.submit(task)
        cluster.engine.run()
        assert cluster.object_size["obj"] == 64
        assert cluster.lineage["obj"] is task
        assert cluster.live_locations("obj")

    def test_dependency_order_respected(self):
        cluster = SimCluster(SimConfig(num_nodes=2))
        producer = SimTask("p", duration=1.0, outputs=(("obj", 64),))
        consumer = SimTask("c", duration=0.1, deps=("obj",))
        done_c = cluster.submit(consumer, origin=1)  # submitted first!
        done_p = cluster.submit(producer, origin=0)
        cluster.engine.run()
        assert done_c.triggered and done_p.triggered
        # Consumer cannot finish before the producer's output exists.
        assert cluster.engine.now >= 1.1

    def test_cores_limit_parallelism(self):
        cluster = SimCluster(SimConfig(num_nodes=1, cpus_per_node=2, spillback_threshold=1000))
        for event in [cluster.submit(SimTask(f"t{i}", duration=1.0)) for i in range(4)]:
            pass
        cluster.engine.run()
        assert cluster.engine.now >= 2.0  # 4 × 1s on 2 cores

    def test_gpu_task_needs_gpu_node(self):
        cluster = SimCluster(SimConfig(num_nodes=2, gpus_per_node=0))
        with pytest.raises(SimulationError):
            cluster.submit(SimTask("g", duration=0.1, num_gpus=1))
            cluster.engine.run()


class TestBottomUpScheduling:
    def test_light_load_schedules_locally(self):
        cluster = SimCluster(SimConfig(num_nodes=4, spillback_threshold=100))
        cluster.run_all(empty_tasks(10), origins=[0] * 10)
        assert cluster.tasks_local == 10
        assert cluster.tasks_forwarded == 0

    def test_overload_forwards_to_global(self):
        cluster = SimCluster(SimConfig(num_nodes=4, spillback_threshold=2))
        tasks = [SimTask(f"t{i}", duration=1.0) for i in range(40)]
        cluster.run_all(tasks, origins=[0] * 40)
        assert cluster.tasks_forwarded > 0

    def test_scaling_is_near_linear(self):
        """Figure 8b's property: tasks/s grows ~linearly with nodes."""
        rates = {}
        for nodes in (4, 16):
            cluster = SimCluster(SimConfig(num_nodes=nodes, cpus_per_node=8))
            count = nodes * 300
            cluster.run_all(empty_tasks(count))
            rates[nodes] = count / cluster.engine.now
        assert rates[16] / rates[4] == pytest.approx(4.0, rel=0.15)

    def test_locality_aware_beats_unaware_at_large_sizes(self):
        """Figure 8a's property, at 100 MB."""
        means = {}
        for aware in (True, False):
            cluster = SimCluster(
                SimConfig(num_nodes=2, cpus_per_node=16, locality_aware=aware,
                          spillback_threshold=0)
            )
            tasks = locality_tasks(cluster, 200, 100_000_000, seed=1)
            latencies = cluster.run_all(tasks, origins=[0] * len(tasks))
            means[aware] = sum(latencies) / len(latencies)
        assert means[False] > means[True] * 10

    def test_locality_irrelevant_for_tiny_objects(self):
        means = {}
        for aware in (True, False):
            cluster = SimCluster(
                SimConfig(num_nodes=2, cpus_per_node=16, locality_aware=aware,
                          spillback_threshold=0)
            )
            tasks = locality_tasks(cluster, 100, 1000, seed=1)
            latencies = cluster.run_all(tasks, origins=[0] * len(tasks))
            means[aware] = sum(latencies) / len(latencies)
        assert means[False] < means[True] * 3


class TestFailureRecovery:
    def test_lost_object_reconstructed_via_lineage(self):
        cluster = SimCluster(SimConfig(num_nodes=3, cpus_per_node=4))
        chains = dependency_chains(num_chains=10, chain_length=6, task_duration=0.05)
        events = [cluster.submit(t, origin=0) for chain in chains for t in chain]
        cluster.engine._schedule(0.2, lambda: cluster.kill_node(1))
        cluster.engine.run()
        assert all(e.triggered for e in events)
        assert cluster.tasks_reexecuted > 0

    def test_reexecuted_tasks_tracked_in_timeline(self):
        cluster = SimCluster(SimConfig(num_nodes=3, cpus_per_node=4))
        chains = dependency_chains(num_chains=6, chain_length=8, task_duration=0.05)
        for chain in chains:
            for task in chain:
                cluster.submit(task, origin=0)
        cluster.engine._schedule(0.2, lambda: cluster.kill_node(2))
        cluster.engine.run()
        assert cluster.timeline.total.get("reexecuted", 0) == cluster.tasks_reexecuted

    def test_add_node_after_failure(self):
        cluster = SimCluster(SimConfig(num_nodes=2, cpus_per_node=2))
        cluster.kill_node(1)
        new_index = cluster.add_node()
        assert new_index == 2
        assert set(cluster.live_node_indices()) == {0, 2}
        event = cluster.submit(SimTask("t", duration=0.1))
        cluster.engine.run()
        assert event.triggered

    def test_unrecoverable_loss_raises(self):
        cluster = SimCluster(SimConfig(num_nodes=2))
        cluster.put_object("data", 100, 1)
        cluster.kill_node(1)  # only copy gone, no lineage
        cluster.submit(SimTask("c", duration=0.1, deps=("data",)))
        with pytest.raises(SimulationError):
            cluster.engine.run()


class TestWorkloads:
    def test_heterogeneous_rollouts_step_range(self):
        pairs = heterogeneous_rollouts(100, per_step_seconds=1e-4, seed=7)
        for task, steps in pairs:
            assert 10 <= steps <= 1000
            assert task.duration == pytest.approx(steps * 1e-4)

    def test_dependency_chain_shape(self):
        chains = dependency_chains(2, 3)
        assert len(chains) == 2
        assert chains[0][1].deps == (chains[0][0].outputs[0][0],)
        assert chains[0][0].deps == ()
