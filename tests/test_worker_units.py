"""Unit tests for the worker execution helpers."""

import pytest

import repro
from repro.common.errors import TaskExecutionError
from repro.common.ids import FunctionID, ObjectID, TaskID
from repro.common.serialization import serialize
from repro.core.task_spec import ArgRef, TaskSpec
from repro.core.worker import normalize_returns, pin_inputs, resolve_args


def spec_with(num_returns=1, args=(), kwargs=()):
    return TaskSpec(
        task_id=TaskID.from_seed("t"),
        function_id=FunctionID.from_seed("f"),
        function_name="f",
        args=args,
        kwargs=kwargs,
        num_returns=num_returns,
    )


class TestNormalizeReturns:
    def test_zero_returns_discards(self):
        assert normalize_returns(spec_with(num_returns=0), "ignored") == []

    def test_single_return_wraps(self):
        assert normalize_returns(spec_with(num_returns=1), (1, 2)) == [(1, 2)]

    def test_multi_return_splits_tuple_and_list(self):
        assert normalize_returns(spec_with(num_returns=2), (1, 2)) == [1, 2]
        assert normalize_returns(spec_with(num_returns=3), [1, 2, 3]) == [1, 2, 3]

    def test_arity_mismatch_raises(self):
        with pytest.raises(TypeError):
            normalize_returns(spec_with(num_returns=2), (1, 2, 3))
        with pytest.raises(TypeError):
            normalize_returns(spec_with(num_returns=2), "not-a-sequence")


class TestResolveArgs:
    def test_plain_values_pass_through(self, runtime):
        node = runtime.driver_node
        args, kwargs, error = resolve_args(
            node, spec_with(args=(1, "x"), kwargs=(("k", 2.5),))
        )
        assert args == [1, "x"]
        assert kwargs == {"k": 2.5}
        assert error is None

    def test_refs_deserialized_from_store(self, runtime):
        node = runtime.driver_node
        oid = ObjectID.from_seed("arg")
        node.store.put(oid, serialize({"payload": 7}))
        args, _kwargs, error = resolve_args(node, spec_with(args=(ArgRef(oid),)))
        assert args == [{"payload": 7}]
        assert error is None

    def test_error_input_detected(self, runtime):
        node = runtime.driver_node
        oid = ObjectID.from_seed("bad")
        upstream = TaskExecutionError(TaskID.from_seed("up"), ValueError("x"))
        node.store.put(oid, serialize(upstream))
        _args, _kwargs, error = resolve_args(node, spec_with(args=(ArgRef(oid),)))
        assert isinstance(error, TaskExecutionError)

    def test_missing_ref_raises(self, runtime):
        node = runtime.driver_node
        with pytest.raises(RuntimeError):
            resolve_args(
                node, spec_with(args=(ArgRef(ObjectID.from_seed("missing")),))
            )


class TestPinInputs:
    def test_pins_present_objects(self, runtime):
        node = runtime.driver_node
        oid = ObjectID.from_seed("pinme")
        node.store.put(oid, serialize(1))
        pin_inputs(runtime, node, [oid])
        assert node.store.is_pinned(oid)

    def test_refetches_evicted_input(self, runtime):
        """If the input vanished after readiness, pin_inputs pulls it back
        (here from the other node's copy)."""
        node = runtime.driver_node
        other = [n for n in runtime.nodes() if n is not node][0]
        oid = ObjectID.from_seed("roundtrip")
        payload = serialize(b"data")
        other.store.put(oid, payload)
        runtime.gcs.add_object(oid, payload.total_bytes, None)
        runtime.gcs.add_object_location(oid, other.node_id)
        assert not node.store.contains(oid)
        pin_inputs(runtime, node, [oid])
        assert node.store.contains(oid)
        assert node.store.is_pinned(oid)
