"""Serialization layer: roundtrips, out-of-band buffers, size accounting."""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.serialization import (
    SerializedObject,
    buffer_nbytes,
    deserialize,
    object_size,
    serialize,
)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            3.14,
            "hello",
            b"raw-bytes",
            [1, 2, 3],
            {"a": 1, "b": [2, 3]},
            (1, "two", 3.0),
            {1, 2, 3},
        ],
    )
    def test_python_values(self, value):
        assert deserialize(serialize(value)) == value

    def test_numpy_array(self):
        array = np.arange(1000, dtype=np.float64).reshape(10, 100)
        result = deserialize(serialize(array))
        np.testing.assert_array_equal(result, array)
        assert result.dtype == array.dtype

    def test_nested_numpy(self):
        value = {"weights": np.ones(16), "step": 3}
        result = deserialize(serialize(value))
        np.testing.assert_array_equal(result["weights"], value["weights"])
        assert result["step"] == 3

    def test_exception_roundtrip(self):
        error = ValueError("boom")
        result = deserialize(serialize(error))
        assert isinstance(result, ValueError)
        assert result.args == ("boom",)

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=20),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_arbitrary_json_like(self, value):
        assert deserialize(serialize(value)) == value


class TestBuffers:
    def test_large_arrays_go_out_of_band(self):
        array = np.zeros(100_000)
        serialized = serialize(array)
        assert serialized.buffers, "numpy data should be an out-of-band buffer"
        assert sum(len(b) for b in serialized.buffers) >= array.nbytes

    def test_size_accounts_for_buffers(self):
        small = object_size(np.zeros(10))
        large = object_size(np.zeros(100_000))
        assert large > small
        assert large >= 100_000 * 8

    def test_copy_is_independent_and_equal(self):
        original = serialize(np.arange(64))
        copy = original.copy()
        assert copy.total_bytes == original.total_bytes
        np.testing.assert_array_equal(deserialize(copy), deserialize(original))
        assert copy.buffers is not original.buffers

    def test_total_bytes_matches_parts(self):
        serialized = serialize({"x": np.ones(128)})
        assert serialized.total_bytes == len(serialized.payload) + sum(
            len(b) for b in serialized.buffers
        )

    def test_serialized_object_is_constructible(self):
        obj = SerializedObject(b"payload", [b"buf1", b"buf2"])
        assert obj.total_bytes == len(b"payload") + 4 + 4


class TestZeroCopy:
    def test_serialize_aliases_producer_memory(self):
        """``serialize`` keeps out-of-band buffers as memoryviews over the
        producer's memory — no copy until ``seal``."""
        array = np.arange(1000, dtype=np.float64)
        serialized = serialize(array)
        assert all(isinstance(b, memoryview) for b in serialized.buffers)
        assert not serialized.owned
        array[0] = -7.0  # visible through the aliased view
        np.testing.assert_array_equal(deserialize(serialized), array)

    def test_seal_copies_once_and_detaches(self):
        array = np.ones(1000)
        serialized = serialize(array)
        sealed = serialized.seal()
        assert sealed.owned
        array[:] = 0.0  # must NOT affect the sealed copy
        np.testing.assert_array_equal(deserialize(sealed), np.ones(1000))

    def test_seal_on_owned_object_is_identity(self):
        sealed = serialize(np.ones(10)).seal()
        assert sealed.seal() is sealed

    def test_payload_only_objects_are_born_owned(self):
        serialized = serialize({"a": [1, 2, 3]})
        assert not serialized.buffers
        assert serialized.owned
        assert serialized.seal() is serialized

    def test_object_size_matches_serialize_total(self):
        for value in [42, "text", np.arange(5000), {"w": np.ones(300)}]:
            assert object_size(value) == serialize(value).total_bytes

    def test_object_size_does_not_materialize_buffers(self):
        """Regression pin: ``object_size`` must count buffer lengths without
        a ``.tobytes()``-style materialization — its peak allocation stays
        far below the size of the data it measures."""
        array = np.zeros(8 * 1024 * 1024, dtype=np.uint8)  # 8 MiB
        object_size(array)  # warm up pickler internals
        tracemalloc.start()
        try:
            object_size(array)
            _current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < array.nbytes // 4, (
            f"object_size allocated {peak} bytes for a {array.nbytes}-byte "
            "array: a buffer copy has crept back in"
        )

    def test_buffer_nbytes_handles_all_buffer_types(self):
        assert buffer_nbytes(b"abcd") == 4
        assert buffer_nbytes(bytearray(8)) == 8
        assert buffer_nbytes(memoryview(bytes(16))) == 16
        wide = memoryview(np.zeros(4, dtype=np.float64))
        assert buffer_nbytes(wide) == 32
