#!/usr/bin/env python
"""Record the golden placement trace for the default scheduler policy.

Replays the deterministic scenario in ``scenario.py`` through
``GlobalScheduler.schedule`` and writes every placement decision to
``scheduler_trace.json``.  The checked-in trace was recorded **before** the
policy-layer refactor (PR 6) against the hard-coded
lowest-estimated-waiting-time body; the equivalence test in
``tests/test_scheduler_policies.py`` replays the identical scenario through
the extracted ``lowest_wait`` policy and asserts identical placements.

Regenerate only if the *scenario* changes (never to paper over a policy
behaviour change):

    PYTHONPATH=src:tests/golden python tests/golden/record_scheduler_trace.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.core.global_scheduler import GlobalScheduler

from scenario import SCENARIO_SEED, run_trace


def main() -> None:
    placements = run_trace(
        lambda gcs, get_nodes: GlobalScheduler(gcs, get_nodes=get_nodes)
    )
    out = os.path.join(os.path.dirname(__file__), "scheduler_trace.json")
    with open(out, "w") as fh:
        json.dump({"seed": SCENARIO_SEED, "placements": placements}, fh)
    print(f"recorded {len(placements)} placements -> {out}")


if __name__ == "__main__":
    main()
