"""Deterministic synthetic cluster scenario for the golden scheduler trace.

The scenario drives a :class:`GlobalScheduler` (old hard-coded body or new
policy-backed one — both duck-type the same surface) through 160 placement
decisions over a 6-node cluster whose backlogs, available resources, and
object locations evolve deterministically.  It exercises every branch of
the lowest-estimated-waiting-time policy: idle ties (round-robin), queue
pressure, the cannot-acquire-now penalty, locality pull from large remote
inputs, GPU feasibility filtering, a node death mid-trace, and EWMA
duration/bandwidth updates between decisions.

``run_trace`` returns the sequence of chosen node indices; the recorder
writes it to ``scheduler_trace.json`` and the equivalence test replays it.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Tuple

from repro.common.ids import FunctionID, NodeID, ObjectID, TaskID
from repro.core.task_spec import ArgRef, TaskSpec

SCENARIO_SEED = 20260807
NUM_NODES = 6
NUM_DECISIONS = 160
NUM_OBJECTS = 40


class FakeResources:
    """Duck-types the two ResourcePool queries the scheduler makes."""

    def __init__(self, total: Dict[str, float]):
        self.total = dict(total)
        self.available_now = dict(total)

    def can_ever_satisfy(self, request: Dict[str, float]) -> bool:
        return all(self.total.get(k, 0.0) >= v for k, v in request.items())

    def can_acquire_now(self, request: Dict[str, float]) -> bool:
        return all(self.available_now.get(k, 0.0) >= v for k, v in request.items())


class FakeLocalScheduler:
    def __init__(self) -> None:
        self.backlog_value = 0

    def backlog(self) -> int:
        return self.backlog_value


class FakeNode:
    def __init__(self, index: int, total: Dict[str, float]):
        self.index = index
        self.node_id = NodeID.from_seed(f"golden-node-{index}")
        self.alive = True
        self.resources = FakeResources(total)
        self.local_scheduler = FakeLocalScheduler()


class FakeEntry:
    def __init__(self, size: int, locations):
        self.size = size
        self.locations = set(locations)
        self.task_id = None


class FakeGcs:
    def __init__(self) -> None:
        self.entries: Dict[ObjectID, FakeEntry] = {}

    def get_object_entry(self, object_id: ObjectID):
        return self.entries.get(object_id)


def build_scenario(rng: random.Random):
    """(nodes, gcs, steps): a fully precomputed decision scenario."""
    nodes: List[FakeNode] = []
    for i in range(NUM_NODES):
        total = {"CPU": 4.0}
        if i >= 4:  # two GPU nodes
            total["GPU"] = 2.0
        nodes.append(FakeNode(i, total))

    gcs = FakeGcs()
    object_ids: List[ObjectID] = []
    for i in range(NUM_OBJECTS):
        oid = ObjectID.from_seed(f"golden-obj-{i}")
        object_ids.append(oid)
        size = rng.choice([1_000, 100_000, 10_000_000, 500_000_000])
        holders = rng.sample(range(NUM_NODES), k=rng.choice([1, 1, 2]))
        gcs.entries[oid] = FakeEntry(
            size, [nodes[h].node_id for h in holders]
        )

    steps = []
    for i in range(NUM_DECISIONS):
        step: Dict[str, object] = {}
        # Evolving load: backlogs drift, resource availability flips.
        step["backlogs"] = [
            max(0, int(rng.gauss(8, 6))) if rng.random() < 0.7 else 0
            for _ in range(NUM_NODES)
        ]
        step["available"] = []
        for node in nodes:
            if rng.random() < 0.25:  # saturated right now
                step["available"].append({k: 0.0 for k in node.resources.total})
            else:
                step["available"].append(dict(node.resources.total))
        step["duration_sample"] = (
            rng.choice([0.0005, 0.002, 0.05, 0.4]) if rng.random() < 0.5 else None
        )
        step["transfer_sample"] = (
            (rng.choice([10_000, 1_000_000, 50_000_000]), rng.uniform(0.001, 0.1))
            if rng.random() < 0.3
            else None
        )
        # Node 3 dies two thirds of the way through the trace.
        step["kill_node"] = 3 if i == (2 * NUM_DECISIONS) // 3 else None

        resources = rng.choice(
            [{"CPU": 1.0}, {"CPU": 1.0}, {"CPU": 2.0}, {"GPU": 1.0}]
        )
        deps = tuple(
            ArgRef(rng.choice(object_ids)) for _ in range(rng.choice([0, 0, 1, 1, 2, 3]))
        )
        step["spec"] = TaskSpec(
            task_id=TaskID.from_seed(f"golden-task-{i}"),
            function_id=FunctionID.from_seed("golden-fn"),
            function_name=f"golden-{i}",
            args=deps,
            kwargs=(),
            num_returns=1,
            resources=resources,
        )
        steps.append(step)
    return nodes, gcs, steps


def run_trace(make_scheduler: Callable) -> List[int]:
    """Replay the scenario through ``make_scheduler(gcs, get_nodes)``."""
    rng = random.Random(SCENARIO_SEED)
    nodes, gcs, steps = build_scenario(rng)
    scheduler = make_scheduler(gcs, lambda: list(nodes))
    placements: List[int] = []
    for step in steps:
        for node, backlog in zip(nodes, step["backlogs"]):
            node.local_scheduler.backlog_value = backlog
        for node, available in zip(nodes, step["available"]):
            node.resources.available_now = available
        if step["duration_sample"] is not None:
            scheduler.report_task_duration(step["duration_sample"])
        if step["transfer_sample"] is not None:
            scheduler.report_transfer(*step["transfer_sample"])
        if step["kill_node"] is not None:
            nodes[step["kill_node"]].alive = False
        placements.append(scheduler.schedule(step["spec"]).index)
    return placements
