"""The dynamic task graph: data, control, and stateful edges (Figure 4)."""

from repro.common.ids import ActorID, FunctionID, ObjectID, TaskID
from repro.core.task_graph import EdgeType, TaskGraph
from repro.core.task_spec import ArgRef, TaskSpec


def spec(name, args=(), parent=None, actor=None, method=None, counter=-1, creation=False, returns=1):
    return TaskSpec(
        task_id=TaskID.from_seed(name),
        function_id=FunctionID.from_seed(name),
        function_name=name,
        args=args,
        kwargs=(),
        num_returns=returns,
        parent_task_id=TaskID.from_seed(parent) if parent else None,
        actor_id=ActorID.from_seed(actor) if actor else None,
        actor_method=method,
        actor_counter=counter,
        is_actor_creation=creation,
    )


class TestDataEdges:
    def test_task_to_outputs(self):
        graph = TaskGraph()
        s = spec("t", returns=2)
        graph.add_task(s)
        data = graph.edges(EdgeType.DATA)
        assert {e.dst for e in data} == set(s.return_ids)

    def test_input_to_task(self):
        graph = TaskGraph()
        producer = spec("p")
        graph.add_task(producer)
        consumer = spec("c", args=(ArgRef(producer.return_ids[0]),))
        graph.add_task(consumer)
        assert graph.producer_of(producer.return_ids[0]) == producer.task_id
        assert consumer.task_id in graph.consumers_of(producer.return_ids[0])

    def test_replay_does_not_duplicate(self):
        graph = TaskGraph()
        s = spec("t")
        graph.add_task(s)
        graph.add_task(s)
        assert graph.num_tasks() == 1
        assert len(graph.edges()) == 1


class TestControlEdges:
    def test_parent_to_child(self):
        graph = TaskGraph()
        parent = spec("parent")
        graph.add_task(parent)
        child = spec("child", parent="parent")
        graph.add_task(child)
        assert graph.children_of(parent.task_id) == [child.task_id]
        kinds = {e.kind for e in graph.edges() if e.dst == child.task_id}
        assert EdgeType.CONTROL in kinds


class TestStatefulEdges:
    def test_chain_in_invocation_order(self):
        """Methods on one actor form a chain of stateful edges (Fig 4)."""
        graph = TaskGraph()
        graph.add_task(spec("create", actor="A", creation=True))
        m_specs = [
            spec(f"m{i}", actor="A", method="m", counter=i) for i in range(3)
        ]
        for m in m_specs:
            graph.add_task(m)
        chain = graph.stateful_chain(ActorID.from_seed("A"))
        assert chain == [m.task_id for m in m_specs]
        stateful = graph.edges(EdgeType.STATEFUL)
        # create→m0, m0→m1, m1→m2
        assert len(stateful) == 3
        assert (stateful[1].src, stateful[1].dst) == (
            m_specs[0].task_id,
            m_specs[1].task_id,
        )

    def test_separate_actors_have_separate_chains(self):
        graph = TaskGraph()
        graph.add_task(spec("a0", actor="A", method="m", counter=0))
        graph.add_task(spec("b0", actor="B", method="m", counter=0))
        graph.add_task(spec("a1", actor="A", method="m", counter=1))
        chain_a = graph.stateful_chain(ActorID.from_seed("A"))
        assert len(chain_a) == 2
        assert len(graph.stateful_chain(ActorID.from_seed("B"))) == 1


class TestLineageQueries:
    def test_ancestors_transitive(self):
        graph = TaskGraph()
        t1 = spec("t1")
        graph.add_task(t1)
        t2 = spec("t2", args=(ArgRef(t1.return_ids[0]),))
        graph.add_task(t2)
        t3 = spec("t3", args=(ArgRef(t2.return_ids[0]),))
        graph.add_task(t3)
        ancestors = graph.ancestors(t3.return_ids[0])
        assert ancestors == {t1.task_id, t2.task_id, t3.task_id}

    def test_ancestors_of_unknown_object_empty(self):
        graph = TaskGraph()
        assert graph.ancestors(ObjectID.from_seed("x")) == set()

    def test_to_dot_contains_nodes_and_styles(self):
        graph = TaskGraph()
        t1 = spec("t1")
        graph.add_task(t1)
        graph.add_task(spec("m0", actor="A", method="m", counter=0))
        graph.add_task(spec("m1", actor="A", method="m", counter=1))
        dot = graph.to_dot()
        assert "digraph" in dot
        assert "style=bold" in dot  # stateful edge styling
        assert "style=solid" in dot  # data edge styling
