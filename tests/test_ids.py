"""Identifier semantics: determinism, immutability, sharding."""

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.common.ids import (
    ActorID,
    BaseID,
    FunctionID,
    ID_LENGTH,
    NodeID,
    ObjectID,
    TaskID,
    deterministic_task_id,
    shard_index,
)


class TestBaseID:
    def test_requires_exact_length(self):
        with pytest.raises(ValueError):
            TaskID(b"short")
        with pytest.raises(ValueError):
            TaskID(b"x" * (ID_LENGTH + 1))

    def test_random_ids_unique(self):
        ids = {TaskID.from_random() for _ in range(500)}
        assert len(ids) == 500

    def test_seed_is_deterministic(self):
        assert TaskID.from_seed("a") == TaskID.from_seed("a")
        assert TaskID.from_seed("a") != TaskID.from_seed("b")

    def test_nil(self):
        assert TaskID.nil().is_nil()
        assert not TaskID.from_random().is_nil()

    def test_immutable(self):
        task_id = TaskID.from_random()
        with pytest.raises(AttributeError):
            task_id.foo = 1

    def test_type_distinguishes_equality(self):
        binary = b"\x01" * ID_LENGTH
        assert TaskID(binary) != NodeID(binary)
        assert hash(TaskID(binary)) != hash(NodeID(binary))

    def test_ordering_within_type(self):
        a = TaskID(b"\x00" * ID_LENGTH)
        b = TaskID(b"\x01" + b"\x00" * (ID_LENGTH - 1))
        assert a < b

    def test_pickle_roundtrip(self):
        for cls in (TaskID, NodeID, ObjectID, ActorID, FunctionID):
            original = cls.from_random()
            assert pickle.loads(pickle.dumps(original)) == original

    def test_hex_roundtrip_length(self):
        task_id = TaskID.from_random()
        assert len(task_id.hex()) == 2 * ID_LENGTH
        assert bytes.fromhex(task_id.hex()) == task_id.binary()


class TestObjectID:
    def test_return_ids_deterministic(self):
        task_id = TaskID.from_seed("t")
        assert ObjectID.for_task_return(task_id, 0) == ObjectID.for_task_return(
            task_id, 0
        )

    def test_return_ids_distinct_by_index(self):
        task_id = TaskID.from_seed("t")
        ids = {ObjectID.for_task_return(task_id, i) for i in range(10)}
        assert len(ids) == 10

    def test_put_ids_differ_from_return_ids(self):
        task_id = TaskID.from_seed("t")
        assert ObjectID.for_put(task_id, 0) != ObjectID.for_task_return(task_id, 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            ObjectID.for_task_return(TaskID.from_seed("t"), -1)


class TestSharding:
    def test_shard_index_in_range(self):
        for _ in range(100):
            assert 0 <= shard_index(ObjectID.from_random(), 7) < 7

    def test_shard_index_stable(self):
        object_id = ObjectID.from_seed("x")
        assert shard_index(object_id, 8) == shard_index(object_id, 8)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_index(ObjectID.from_random(), 0)

    @given(st.integers(min_value=1, max_value=64), st.binary(min_size=20, max_size=20))
    def test_shard_index_covers_only_valid_range(self, shards, raw):
        assert 0 <= shard_index(ObjectID(raw), shards) < shards

    def test_shards_reasonably_balanced(self):
        counts = [0] * 4
        for i in range(2000):
            counts[shard_index(ObjectID.from_seed(str(i)), 4)] += 1
        assert min(counts) > 2000 / 4 * 0.7


class TestDeterministicTaskID:
    def test_same_parent_same_index(self):
        parent = TaskID.from_seed("p")
        assert deterministic_task_id(parent, 3) == deterministic_task_id(parent, 3)

    def test_different_index_differs(self):
        parent = TaskID.from_seed("p")
        assert deterministic_task_id(parent, 0) != deterministic_task_id(parent, 1)

    def test_salt_differs(self):
        parent = TaskID.from_seed("p")
        assert deterministic_task_id(parent, 0) != deterministic_task_id(
            parent, 0, salt="actor"
        )

    @given(st.integers(min_value=0, max_value=10_000))
    def test_unique_across_indices(self, index):
        parent = TaskID.from_seed("p")
        a = deterministic_task_id(parent, index)
        b = deterministic_task_id(parent, index + 1)
        assert a != b
