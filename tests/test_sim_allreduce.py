"""Mechanistic allreduce on the simulated cluster."""

import pytest

from repro.sim.allreduce_sim import scheduler_delay_sweep, simulate_ring_allreduce
from repro.sim.collectives import RingAllreduceConfig, ring_allreduce_time


class TestMechanisticAllreduce:
    def test_completes_with_expected_task_count(self):
        result = simulate_ring_allreduce(num_nodes=8, object_size=8_000_000)
        assert result.tasks_submitted == 2 * 7 * 8
        assert result.completion_seconds > 0
        # Each round moves one chunk per node across the ring.
        assert result.transfers >= 2 * 7 * 8

    def test_trivial_sizes(self):
        assert simulate_ring_allreduce(num_nodes=1).completion_seconds == 0.0

    def test_monotonic_in_object_size(self):
        small = simulate_ring_allreduce(num_nodes=8, object_size=8_000_000)
        large = simulate_ring_allreduce(num_nodes=8, object_size=80_000_000)
        assert large.completion_seconds > small.completion_seconds

    def test_single_stream_slower(self):
        """Ray* mechanistically: fewer transfer streams, slower collective."""
        striped = simulate_ring_allreduce(
            num_nodes=8, object_size=400_000_000, streams=8
        )
        single = simulate_ring_allreduce(
            num_nodes=8, object_size=400_000_000, streams=1
        )
        assert single.completion_seconds > 1.3 * striped.completion_seconds

    def test_agrees_with_cost_model_at_large_sizes(self):
        """Mechanism and closed-form model converge where bandwidth
        dominates (the model's lockstep assumption is conservative for
        small sizes)."""
        mech = simulate_ring_allreduce(num_nodes=16, object_size=1_000_000_000)
        model = ring_allreduce_time(1_000_000_000, RingAllreduceConfig())
        assert mech.completion_seconds == pytest.approx(model, rel=0.3)

    def test_scheduler_delay_emerges_mechanistically(self):
        """Fig 12b from the mechanism, not the price sheet: a few ms of
        injected scheduling delay ~doubles completion."""
        sweep = scheduler_delay_sweep([0.0, 5e-3], num_nodes=8, object_size=50_000_000)
        assert sweep[5e-3] > 1.6 * sweep[0.0]
