"""GCS flushing: bounded memory, durable lineage on disk (Figure 10b)."""

import pytest

from repro.common.ids import TaskID
from repro.gcs.client import GlobalControlStore
from repro.gcs.flush import GcsFlusher
from repro.gcs.tables import TaskStatus


@pytest.fixture
def gcs():
    return GlobalControlStore(num_shards=2, num_replicas=1)


def _finish_tasks(gcs, count, prefix="t"):
    ids = []
    for i in range(count):
        tid = TaskID.from_seed(f"{prefix}{i}")
        gcs.add_task(tid, f"spec-{i}")
        gcs.update_task_status(tid, TaskStatus.FINISHED)
        ids.append(tid)
    return ids


class TestFlushMechanics:
    def test_flush_moves_finished_tasks(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        _finish_tasks(gcs, 10)
        assert gcs.num_entries() >= 10
        flushed = flusher.flush()
        assert flushed == 10
        assert gcs.num_entries() == 0
        assert flusher.flushed_task_count() == 10

    def test_pending_tasks_not_flushed(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        tid = TaskID.from_seed("pending")
        gcs.add_task(tid, "spec")
        assert flusher.flush() == 0
        assert gcs.get_task(tid) is not None

    def test_failed_tasks_are_flushed(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        tid = TaskID.from_seed("failed")
        gcs.add_task(tid, "spec")
        gcs.update_task_status(tid, TaskStatus.FAILED)
        assert flusher.flush() == 1

    def test_events_are_flushed(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        gcs.record_event("profiling", sample=1)
        gcs.record_event("profiling", sample=2)
        assert flusher.flush() == 2
        assert gcs.events("profiling") == []

    def test_restore_task_reads_durable_lineage(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        ids = _finish_tasks(gcs, 5)
        flusher.flush()
        restored = flusher.restore_task(ids[3])
        assert restored is not None
        assert restored.spec == "spec-3"
        assert flusher.restore_task(TaskID.from_seed("nope")) is None

    def test_multiple_flushes_append(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "flush.bin"))
        _finish_tasks(gcs, 3, prefix="a")
        flusher.flush()
        _finish_tasks(gcs, 4, prefix="b")
        flusher.flush()
        assert flusher.flushed_task_count() == 7


class TestFlushPolicy:
    def test_should_flush_above_threshold(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "f.bin"), max_entries_in_memory=5)
        _finish_tasks(gcs, 10)
        assert flusher.should_flush()
        flusher.maybe_flush()
        assert gcs.num_entries() == 0

    def test_maybe_flush_noop_below_threshold(self, gcs, tmp_path):
        flusher = GcsFlusher(gcs, str(tmp_path / "f.bin"), max_entries_in_memory=100)
        _finish_tasks(gcs, 3)
        assert flusher.maybe_flush() == 0
        assert gcs.num_entries() > 0

    def test_memory_stays_bounded_with_flushing(self, gcs, tmp_path):
        """The Figure 10b property: with periodic flushing the entry count
        stays below the cap; without, it grows with the task count."""
        flusher = GcsFlusher(gcs, str(tmp_path / "f.bin"), max_entries_in_memory=50)
        high_water = 0
        for batch in range(20):
            _finish_tasks(gcs, 10, prefix=f"b{batch}-")
            flusher.maybe_flush()
            high_water = max(high_water, gcs.num_entries())
        assert high_water <= 60  # cap + one batch
        flusher.flush()  # final flush drains the remainder
        assert flusher.flushed_task_count() == 200
        assert gcs.num_entries() == 0
