"""Chaos test: a mixed workload survives random failure injection.

The paper's §7 answer to "is fault tolerance really needed?": it makes
applications "easier to write and reason about".  Here a workload mixing
task chains, actors, and large objects runs while nodes die and join
underneath it; every final answer must still be exactly correct.
"""

import random
import time

import pytest

import repro


@repro.remote
def grow(acc, x):
    return acc + [x]


@repro.remote
def big_block(i):
    return bytes([i % 256]) * 50_000


@repro.remote(checkpoint_interval=4)
class Ledger:
    def __init__(self):
        self.entries = []

    def append(self, value):
        self.entries.append(value)
        return len(self.entries)

    @repro.method(read_only=True)
    def snapshot(self):
        return list(self.entries)


@pytest.mark.parametrize("seed", [1, 2])
def test_mixed_workload_survives_failures(seed):
    rng = random.Random(seed)
    rt = repro.init(num_nodes=4, num_cpus_per_node=2)
    try:
        # Task chains building lists (order-sensitive results).
        chains = []
        for c in range(4):
            ref = grow.remote([], c)
            for i in range(1, 6):
                ref = grow.remote(ref, c * 10 + i)
            chains.append((c, ref))

        # Large objects (eviction/transfer pressure).
        blocks = [big_block.remote(i) for i in range(6)]

        # A checkpointing actor with read-only queries.
        ledger = Ledger.remote()
        appended = [ledger.append.remote(i) for i in range(10)]

        # Let some work land, then kill a random non-driver node...
        time.sleep(0.3)
        victims = [n for n in rt.nodes() if n is not rt.driver_node]
        victim = rng.choice(victims)
        rt.kill_node(victim.node_id)
        # ...and add a fresh node (elasticity).
        rt.add_node({"CPU": 2})

        # More work lands on the reshaped cluster.
        more = [ledger.append.remote(100 + i) for i in range(4)]
        late_chain = grow.remote(chains[0][1], 999)

        # Every answer must be exactly right despite the failure.
        for c, ref in chains:
            expected = [c] + [c * 10 + i for i in range(1, 6)]
            assert repro.get(ref, timeout=60) == expected
        for i, block in enumerate(blocks):
            value = repro.get(block, timeout=60)
            assert value == bytes([i % 256]) * 50_000
        assert repro.get(appended[-1], timeout=60) == 10
        assert repro.get(more[-1], timeout=60) == 14
        snapshot = repro.get(ledger.snapshot.remote(), timeout=60)
        assert snapshot == list(range(10)) + [100 + i for i in range(4)]
        late = repro.get(late_chain, timeout=60)
        assert late[-1] == 999
    finally:
        repro.shutdown()


def test_workload_survives_gcs_member_failure():
    """Kill a replica in every GCS shard chain mid-workload: clients
    report the failures, chains reconfigure, the application never
    notices (Figure 10a's property, observed through the whole stack)."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4, gcs_shards=4, gcs_replicas=2)
    try:
        first = repro.get([grow.remote([], i) for i in range(4)], timeout=30)
        assert first == [[i] for i in range(4)]
        for shard in rt.gcs.kv.shards:
            shard.kill_member(0)
        second = repro.get([grow.remote([], 10 + i) for i in range(8)], timeout=30)
        assert second == [[10 + i] for i in range(8)]
        for shard in rt.gcs.kv.shards:
            assert shard.chain_length() == 1  # reconfigured, still serving
            shard.add_member()  # restore replication
            assert shard.chain_length() == 2
        third = repro.get(grow.remote([], 99), timeout=30)
        assert third == [99]
    finally:
        repro.shutdown()


def test_es_training_survives_node_loss():
    """An RL training job (the paper's target workload) continues across a
    node failure between iterations."""
    from repro.rl import ESConfig, EnvSpec, EvolutionStrategies, PolicySpec

    rt = repro.init(num_nodes=3, num_cpus_per_node=2)
    try:
        env_spec = EnvSpec("cartpole", max_steps=80)
        es = EvolutionStrategies(
            env_spec,
            PolicySpec.for_env(env_spec, kind="linear"),
            ESConfig(population_size=8, sigma=0.3, learning_rate=0.15, seed=5),
        )
        es.train(2)
        victim = [n for n in rt.nodes() if n is not rt.driver_node][0]
        rt.kill_node(victim.node_id)
        rewards = es.train(3)  # rollout tasks reroute to the survivors
        assert len(rewards) == 3
        assert len(es.history) == 5
    finally:
        repro.shutdown()


def test_high_task_count_throughput():
    """A couple thousand tiny tasks drain correctly and reasonably fast
    (regression guard on scheduler overhead)."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4)
    try:

        @repro.remote
        def tiny(i):
            return i

        count = 2000
        start = time.time()
        refs = [tiny.remote(i) for i in range(count)]
        results = repro.get(refs, timeout=120)
        elapsed = time.time() - start
        assert results == list(range(count))
        assert elapsed < 60, f"{count} tasks took {elapsed:.1f}s"
        assert rt.gcs.num_tasks() == count
    finally:
        repro.shutdown()


def test_sim_cluster_runs_are_deterministic():
    """Identical simulated workloads produce identical timelines."""
    from repro.sim import SimCluster, SimConfig
    from repro.sim.workloads import dependency_chains

    def run():
        cluster = SimCluster(SimConfig(num_nodes=3, cpus_per_node=2))
        chains = dependency_chains(num_chains=6, chain_length=5, task_duration=0.05)
        for chain in chains:
            for task in chain:
                cluster.submit(task, origin=0)
        cluster.engine._schedule(0.2, lambda: cluster.kill_node(1))
        cluster.engine.run()
        return (
            cluster.engine.now,
            cluster.tasks_executed,
            cluster.tasks_reexecuted,
            sorted(cluster.timeline.total.items()),
        )

    assert run() == run()


def test_double_failure_with_checkpointed_actor():
    """Two successive node losses; the actor replays from checkpoints both
    times and loses nothing."""
    rt = repro.init(num_nodes=3, num_cpus_per_node=2)
    try:
        ledger = Ledger.remote()
        repro.get([ledger.append.remote(i) for i in range(6)], timeout=30)

        state = rt.actors.get_state(ledger.actor_id)
        rt.kill_node(state.node.node_id)
        assert repro.get(ledger.append.remote(6), timeout=60) == 7

        state = rt.actors.get_state(ledger.actor_id)
        rt.kill_node(state.node.node_id)
        assert repro.get(ledger.append.remote(7), timeout=60) == 8
        assert repro.get(ledger.snapshot.remote(), timeout=60) == list(range(8))
    finally:
        repro.shutdown()


# ---------------------------------------------------------------------------
# Deterministic fault injection (repro.common.faults + repro.tools.chaos)
# ---------------------------------------------------------------------------

from repro.common.faults import (  # noqa: E402
    KILL_NODE,
    RESTART_NODE,
    FaultAction,
    FaultSchedule,
    FaultTrigger,
    PlannedFault,
)
from repro.tools.chaos import ChaosRunner  # noqa: E402


def test_fault_schedule_dry_run_is_deterministic():
    """Unbound schedules log planned faults without applying them, and the
    same seed + same hook stimulus yields the identical canonical log."""

    def drive():
        schedule = FaultSchedule.random(seed=11, num_nodes=4, kills=2)
        for _ in range(300):
            schedule.on_task_finished()
        return schedule.event_log(), schedule.signature()

    log_a, sig_a = drive()
    log_b, sig_b = drive()
    assert log_a == log_b
    assert sig_a == sig_b
    assert log_a  # something fired
    assert all(event[-1] == "dry_run" for event in log_a if event[0] == "planned")


def test_fault_schedule_triggers_are_source_tagged():
    """A task-count trigger must not fire from a placement hook."""
    schedule = FaultSchedule(
        seed=0,
        faults=[
            PlannedFault(
                FaultTrigger(after_tasks=1), FaultAction(KILL_NODE, target=1)
            )
        ],
    )
    for _ in range(50):
        schedule.on_place(None)
    assert schedule.event_log() == ()  # wrong source: nothing fires
    schedule.on_task_finished()
    assert len(schedule.event_log()) == 1


def test_chunk_fault_decisions_are_pure_hash():
    """Chunk drop decisions depend only on (seed, object, chunk)."""
    from repro.common.ids import ObjectID

    oid = ObjectID.from_seed("chunky")

    def decisions(seed):
        schedule = FaultSchedule(seed=seed, chunk_drop_probability=0.5)
        return [schedule.chunk_fault(oid, i) for i in range(32)]

    first = decisions(7)
    assert first == decisions(7)
    assert first != decisions(8)  # different seed, different pattern
    assert "drop" in first


def test_single_use_schedule_rejects_rebind():
    schedule = FaultSchedule.random(seed=1, num_nodes=3, kills=1)
    rt = repro.init(num_nodes=3, fault_schedule=schedule)
    try:
        schedule.bind(rt)  # rebinding the same runtime is a no-op
        with pytest.raises(RuntimeError):
            schedule.bind(object())  # a second cluster must build its own
    finally:
        repro.shutdown()


def test_chaos_runner_same_seed_same_fault_log():
    """The subsystem's headline guarantee: same-seed runs inject the
    byte-identical fault sequence, and the workload stays correct."""
    runner = ChaosRunner(seed=5, num_nodes=4, kills=1, first_kill_after=30)
    first = runner.run()
    second = runner.run()
    assert first.tasks_run == 200
    assert second.tasks_run == 200
    assert first.event_log == second.event_log
    assert first.signature == second.signature
    applied = [e for e in first.event_log if e[0] == "planned"]
    assert applied, "no planned faults fired"


def test_chaos_run_with_kill_and_restart_recovers():
    """A killed-and-restarted node rejoins and the full answer is right."""
    schedule = FaultSchedule(
        seed=2,
        faults=[
            PlannedFault(
                FaultTrigger(after_tasks=10), FaultAction(KILL_NODE, target=2)
            ),
            PlannedFault(
                FaultTrigger(after_tasks=20), FaultAction(RESTART_NODE, target=2)
            ),
        ],
    )
    rt = repro.init(num_nodes=3, num_cpus_per_node=2, fault_schedule=schedule)
    try:
        @repro.remote
        def bump(x):
            return x + 1

        refs = [bump.remote(i) for i in range(20)]
        for _ in range(3):
            refs = [bump.remote(r) for r in refs]
        assert repro.get(refs, timeout=120) == [i + 4 for i in range(20)]
        outcomes = [e[-1] for e in schedule.event_log() if e[0] == "planned"]
        assert outcomes == ["applied", "applied"]
        assert all(n.alive for n in rt.nodes())
    finally:
        repro.shutdown()
