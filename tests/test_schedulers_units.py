"""Focused tests for the local and global schedulers."""

import time

import pytest

import repro
from repro.common.errors import ResourceRequestError
from repro.common.ids import FunctionID, TaskID
from repro.core.global_scheduler import ExponentialAverage
from repro.core.task_spec import TaskSpec


def make_spec(name="probe", resources=None):
    return TaskSpec(
        task_id=TaskID.from_seed(name),
        function_id=FunctionID.from_seed(name),
        function_name=name,
        args=(),
        kwargs=(),
        num_returns=1,
        resources=resources or {"CPU": 1.0},
    )


class TestExponentialAverage:
    def test_moves_toward_samples(self):
        avg = ExponentialAverage(1.0, alpha=0.5)
        avg.update(3.0)
        assert avg.get() == pytest.approx(2.0)
        avg.update(2.0)
        assert avg.get() == pytest.approx(2.0)

    def test_alpha_extremes(self):
        sticky = ExponentialAverage(1.0, alpha=0.0)
        sticky.update(100.0)
        assert sticky.get() == 1.0
        jumpy = ExponentialAverage(1.0, alpha=1.0)
        jumpy.update(100.0)
        assert jumpy.get() == 100.0


class TestGlobalScheduler:
    def test_infeasible_everywhere_raises(self, runtime):
        scheduler = runtime.global_schedulers[0]
        with pytest.raises(ResourceRequestError):
            scheduler.schedule(make_spec(resources={"GPU": 1.0}))

    def test_dead_nodes_never_chosen(self, runtime):
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        scheduler = runtime.global_schedulers[0]
        for i in range(6):
            chosen = scheduler.schedule(make_spec(name=f"p{i}"))
            assert chosen.alive

    def test_ties_round_robin_across_nodes(self, runtime):
        scheduler = runtime.global_schedulers[0]
        chosen = {
            scheduler.schedule(make_spec(name=f"t{i}")).node_id for i in range(6)
        }
        assert len(chosen) == 2  # both idle nodes share the load

    def test_loaded_node_avoided(self, runtime):
        """A node with backlog loses to an idle one."""

        @repro.remote
        def sleepy():
            time.sleep(0.3)

        # Saturate the driver node's local queue.
        refs = [sleepy.remote() for _ in range(8)]
        time.sleep(0.05)
        scheduler = runtime.global_schedulers[0]
        scheduler.report_task_duration(0.3)  # make backlog expensive
        busy = runtime.driver_node
        idle = [n for n in runtime.nodes() if n is not busy][0]
        wait_busy = scheduler.estimated_wait(busy, make_spec())
        wait_idle = scheduler.estimated_wait(idle, make_spec())
        assert wait_busy >= wait_idle
        repro.get(refs, timeout=20)

    def test_decision_counter(self, runtime):
        scheduler = runtime.global_schedulers[0]
        before = scheduler.decisions
        scheduler.schedule(make_spec())
        assert scheduler.decisions == before + 1


class TestLocalScheduler:
    def test_backlog_counts_running_and_queued(self, runtime):
        @repro.remote
        def sleepy():
            time.sleep(0.25)

        node = runtime.driver_node
        assert node.local_scheduler.backlog() == 0
        refs = [sleepy.remote() for _ in range(6)]
        time.sleep(0.05)
        assert node.local_scheduler.backlog() > 0
        repro.get(refs, timeout=20)
        time.sleep(0.1)
        assert node.local_scheduler.backlog() == 0

    def test_stats_split_local_vs_forwarded(self, runtime):
        @repro.remote
        def quick():
            return 1

        repro.get([quick.remote() for _ in range(4)], timeout=10)
        scheduler = runtime.driver_node.local_scheduler
        assert scheduler.scheduled_locally >= 1
        # Light load: nothing needed the global scheduler.
        assert scheduler.forwarded == 0

    def test_stop_halts_dispatch(self, runtime):
        node = runtime.nodes()[1]
        node.local_scheduler.stop()
        # Dispatcher exits; placing on a stopped-but-alive scheduler is
        # not part of the contract, but stop() itself must be clean.
        assert node.local_scheduler._stopped
