"""Replay buffer actor and Ape-X-style DQN."""

import numpy as np
import pytest

import repro
from repro.rl import ApexDQNTrainer, DQNConfig, EnvSpec, ReplayBufferActor


def make_transition(i, done=False):
    return (np.full(4, float(i)), i % 2, 1.0, np.full(4, float(i + 1)), done)


class TestReplayBuffer:
    def test_add_and_size(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=100)
        size = repro.get(buffer.add.remote([make_transition(i) for i in range(5)]))
        assert size == 5
        assert repro.get(buffer.size.remote()) == 5
        repro.kill(buffer)

    def test_capacity_ring_overwrites(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=10)
        repro.get(buffer.add.remote([make_transition(i) for i in range(25)]))
        stats = repro.get(buffer.stats.remote())
        assert stats["size"] == 10
        assert stats["total_added"] == 25
        repro.kill(buffer)

    def test_sample_returns_stored_transitions(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=50, seed=1)
        repro.get(buffer.add.remote([make_transition(i) for i in range(20)]))
        indices, batch, weights = repro.get(buffer.sample.remote(8))
        assert len(indices) == len(batch) == len(weights) == 8
        for obs, action, reward, next_obs, done in batch:
            assert obs.shape == (4,)
            assert action in (0, 1)
        repro.kill(buffer)

    def test_sample_empty_buffer(self, runtime):
        buffer = ReplayBufferActor.remote()
        indices, batch, weights = repro.get(buffer.sample.remote(4))
        assert batch == []
        repro.kill(buffer)

    def test_prioritized_sampling_prefers_high_priority(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=100, prioritized=True, seed=0)
        repro.get(buffer.add.remote([make_transition(i) for i in range(50)]))
        # Crank up the priority of index 7; it should dominate samples.
        repro.get(buffer.update_priorities.remote([7], [1000.0]))
        counts = 0
        for _ in range(20):
            indices, _b, _w = repro.get(buffer.sample.remote(10))
            counts += indices.count(7)
        assert counts > 20  # >10% of 200 draws vs 2% under uniform
        repro.kill(buffer)

    def test_weights_normalized(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=50, prioritized=True, seed=2)
        repro.get(buffer.add.remote([make_transition(i) for i in range(30)]))
        _i, _b, weights = repro.get(buffer.sample.remote(10))
        assert max(weights) == pytest.approx(1.0)
        assert all(0 < w <= 1.0 for w in weights)
        repro.kill(buffer)

    def test_invalid_capacity(self, runtime):
        buffer = ReplayBufferActor.remote(capacity=0)
        with pytest.raises(repro.TaskExecutionError):
            repro.get(buffer.size.remote(), timeout=10)


class TestApexDQN:
    def test_training_round_moves_data(self, runtime):
        trainer = ApexDQNTrainer(
            EnvSpec("cartpole", max_steps=100),
            DQNConfig(
                num_actors=2,
                collect_steps_per_round=40,
                learn_starts=60,
                batch_size=32,
                seed=0,
            ),
        )
        stats = trainer.train(3)
        trainer.close()
        assert stats[-1]["env_steps"] == 3 * 2 * 40
        assert stats[-1]["learner_steps"] > 0
        assert trainer.episode_rewards  # episodes completed somewhere

    def test_epsilon_decays(self, runtime):
        trainer = ApexDQNTrainer(
            EnvSpec("cartpole", max_steps=50),
            DQNConfig(num_actors=1, epsilon_decay_steps=100, seed=1),
        )
        start = trainer.epsilon()
        trainer.env_steps = 100
        assert trainer.epsilon() < start
        assert trainer.epsilon() == pytest.approx(trainer.config.epsilon_final)
        trainer.close()

    def test_greedy_evaluation_runs(self, runtime):
        trainer = ApexDQNTrainer(
            EnvSpec("cartpole", max_steps=60),
            DQNConfig(num_actors=1, seed=2),
        )
        reward = trainer.greedy_episode_reward()
        assert reward >= 1
        trainer.close()

    def test_continuous_env_rejected(self, runtime):
        with pytest.raises(ValueError):
            ApexDQNTrainer(EnvSpec("pendulum"))

    def test_learning_reduces_td_error(self, runtime):
        """With enough rounds the TD error on CartPole shrinks."""
        trainer = ApexDQNTrainer(
            EnvSpec("cartpole", max_steps=100),
            DQNConfig(
                num_actors=2,
                collect_steps_per_round=50,
                learn_starts=100,
                batch_size=32,
                learning_rate=5e-3,
                seed=3,
            ),
        )
        stats = trainer.train(10)
        trainer.close()
        errors = [s["mean_td_error"] for s in stats if s["mean_td_error"] > 0]
        assert len(errors) >= 3
        # Not strictly monotone, but the tail should be below the head.
        assert np.mean(errors[-3:]) < np.mean(errors[:3]) * 1.5
