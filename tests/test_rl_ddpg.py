"""DDPG: continuous control with actor-critic targets."""

import numpy as np
import pytest

import repro
from repro.rl import DDPGConfig, DDPGTrainer, EnvSpec
from repro.rl.nn import MLP


class TestInputGradients:
    def test_backward_input_matches_numerical(self):
        rng = np.random.default_rng(0)
        net = MLP(4, 6, 2, seed=3)
        x = rng.standard_normal((3, 4))
        grad_out = rng.standard_normal((3, 2))
        _out, cache = net.forward(x)
        analytic = net.backward_input(cache, grad_out)
        eps = 1e-6
        for sample in range(3):
            for feature in range(4):
                bumped = x.copy()
                bumped[sample, feature] += eps
                up = float(np.sum(net(bumped) * grad_out))
                bumped[sample, feature] -= 2 * eps
                down = float(np.sum(net(bumped) * grad_out))
                numeric = (up - down) / (2 * eps)
                assert analytic[sample, feature] == pytest.approx(
                    numeric, rel=1e-4, abs=1e-6
                )


class TestDDPG:
    def test_requires_continuous_env(self, runtime):
        with pytest.raises(ValueError):
            DDPGTrainer(EnvSpec("cartpole"))

    def test_round_moves_data_and_learns(self, runtime):
        trainer = DDPGTrainer(
            EnvSpec("pendulum", max_steps=100),
            DDPGConfig(
                num_explorers=2,
                collect_steps_per_round=60,
                learn_starts=100,
                learner_steps_per_round=5,
                seed=0,
            ),
        )
        stats = trainer.train(3)
        trainer.close()
        assert stats[-1]["env_steps"] == 3 * 2 * 60
        assert stats[-1]["learner_steps"] > 0
        assert trainer.episode_rewards  # pendulum episodes complete

    def test_actions_respect_torque_bounds(self, runtime):
        trainer = DDPGTrainer(EnvSpec("pendulum", max_steps=50), DDPGConfig(seed=1))
        obs = np.random.default_rng(0).standard_normal((5, 3))
        actions = trainer._act(trainer.actor, obs)
        assert np.all(np.abs(actions) <= trainer.config.action_scale)
        trainer.close()

    def test_targets_track_live_networks(self, runtime):
        trainer = DDPGTrainer(
            EnvSpec("pendulum", max_steps=60),
            DDPGConfig(
                num_explorers=1,
                collect_steps_per_round=120,
                learn_starts=100,
                learner_steps_per_round=10,
                tau=0.5,
                seed=2,
            ),
        )
        before_gap = np.linalg.norm(
            trainer.actor.get_flat() - trainer.target_actor.get_flat()
        )
        trainer.train(2)
        after_gap = np.linalg.norm(
            trainer.actor.get_flat() - trainer.target_actor.get_flat()
        )
        # Initially identical; training moves the live net but Polyak keeps
        # the target close (with tau=0.5, within a small multiple).
        assert before_gap == 0.0
        live_moved = np.linalg.norm(trainer.actor.get_flat()) > 0
        assert live_moved
        assert after_gap < 1.0
        trainer.close()

    def test_policy_evaluation_runs(self, runtime):
        trainer = DDPGTrainer(EnvSpec("pendulum", max_steps=50), DDPGConfig(seed=3))
        reward = trainer.policy_episode_reward()
        assert reward <= 0  # pendulum rewards are costs
        trainer.close()
