"""The cluster metrics registry: primitives, exposition, and coverage.

The registry is the observability tentpole: every runtime component
registers its series at construction, so after any workload the full
documented catalog (docs/OBSERVABILITY.md) must be present and the
Prometheus exposition must be well-formed.
"""

import math

import pytest

import repro
from repro.common.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    percentile,
    percentile_rank,
    summarize,
)

# Every series the runtime documents — docs/OBSERVABILITY.md is the
# human-readable version of this list; keep the two in sync.
DOCUMENTED_SERIES = {
    # local scheduler
    "scheduler_tasks_placed_total",
    "scheduler_spillbacks_total",
    "scheduler_dispatch_seconds",
    "scheduler_queue_depth",
    # global scheduler
    "global_scheduler_decisions_total",
    "global_scheduler_estimated_wait_seconds",
    # object store
    "object_store_puts_total",
    "object_store_gets_total",
    "object_store_hits_total",
    "object_store_misses_total",
    "object_store_evictions_total",
    "object_store_evicted_bytes_total",
    "object_store_used_bytes",
    # transfer
    "transfer_objects_total",
    "transfer_bytes_total",
    "transfer_seconds",
    "fetch_seconds",
    # GCS
    "gcs_ops_total",
    "gcs_publishes_total",
    # reconstruction
    "reconstruction_tasks_total",
    "reconstruction_objects_total",
    # runtime / event layer
    "tasks_submitted_total",
    "actor_methods_submitted_total",
    "wait_latency_seconds",
}


@repro.remote
def double(x):
    return x * 2


@repro.remote
def payload(i):
    return bytes(20_000) + bytes([i % 256])


@repro.remote
class Counter_:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
        return self.n


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_gauge_callback_reads_live(self):
        box = {"v": 1}
        g = Gauge(fn=lambda: box["v"])
        assert g.value == 1
        box["v"] = 42
        assert g.value == 42

    def test_histogram_counts_and_sum(self):
        h = Histogram()
        for v in (0.001, 0.01, 0.01, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.021)
        assert h.mean == pytest.approx(5.021 / 4)

    def test_histogram_buckets_cumulative(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 100.0):
            h.observe(v)
        # bucket_counts are per-bucket (not yet cumulative): the +Inf
        # overflow rides in the last slot.
        assert h.bucket_counts() == [1, 2, 0, 1]

    def test_histogram_percentile_returns_bucket_bound(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(5.0)
        assert h.percentile(50) == 0.1
        assert h.percentile(99) <= 10.0
        assert h.percentile(100) == 10.0

    def test_histogram_empty_percentile_is_nan(self):
        assert math.isnan(Histogram().percentile(99))

    def test_default_buckets_span_micro_to_kilo_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] > 1000
        assert all(
            a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )


class TestSharedQuantileHelpers:
    def test_percentile_rank_bounds(self):
        assert percentile_rank(1, 99) == 0
        assert percentile_rank(100, 0) == 0
        assert percentile_rank(100, 100) == 99

    def test_percentile_on_sorted_samples(self):
        samples = sorted(float(i) for i in range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(samples, 100) == 100.0

    def test_summarize_fields(self):
        s = summarize([3.0, 1.0, 2.0])
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == 2.0

    def test_summarize_empty_is_nan(self):
        assert all(math.isnan(v) for v in summarize([]).values())

    def test_sim_latency_stats_uses_shared_percentile(self):
        from repro.sim.metrics import LatencyStats

        stats = LatencyStats()
        for i in range(1, 101):
            stats.record(float(i))
        raw = sorted(stats.samples)
        assert stats.percentile(95) == percentile(raw, 95)


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help", node="n1")
        b = reg.counter("x_total", "help", node="n1")
        assert a is b
        c = reg.counter("x_total", "help", node="n2")
        assert c is not a

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("mixed", "help")
        with pytest.raises(ValueError):
            reg.gauge("mixed", "help")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x_total", "help")
        c.inc(100)
        assert c.value == 0
        assert reg.series_names() == []
        assert reg.to_prometheus_text() == ""
        assert NULL_REGISTRY.histogram("h", "help").count == 0

    def test_prometheus_text_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "operations", node="a").inc(3)
        h = reg.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(50.0)
        text = reg.to_prometheus_text()
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{node="a"} 3' in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_to_dict_has_no_nonfinite(self):
        reg = MetricsRegistry()
        reg.gauge("g", "help", fn=lambda: float("inf"))
        flat = reg.to_dict()

        def walk(obj):
            if isinstance(obj, float):
                assert math.isfinite(obj)
            elif isinstance(obj, dict):
                for v in obj.values():
                    walk(v)
            elif isinstance(obj, list):
                for v in obj:
                    walk(v)

        walk(flat)


class TestRuntimeCatalog:
    def test_all_documented_series_present_after_mixed_workload(self, runtime):
        # Mixed workload: plain tasks, chained dependencies (transfer),
        # and actor methods.
        refs = [double.remote(i) for i in range(8)]
        chained = double.remote(refs[0])
        counter = Counter_.remote()
        repro.get(refs + [chained])
        repro.get([counter.bump.remote() for _ in range(3)])
        repro.get([payload.remote(i) for i in range(3)])

        names = set(runtime.metrics.series_names())
        missing = DOCUMENTED_SERIES - names
        assert not missing, f"series missing from registry: {sorted(missing)}"

    def test_counters_reflect_workload(self, runtime):
        repro.get([double.remote(i) for i in range(5)])
        flat = runtime.metrics.to_dict()
        submitted = sum(
            s["value"] for s in flat["tasks_submitted_total"]["series"]
        )
        assert submitted >= 5
        placed = sum(
            s["value"] for s in flat["scheduler_tasks_placed_total"]["series"]
        )
        assert placed >= 5

    def test_wait_latency_histogram_fed_by_event_layer(self, runtime):
        ref = double.remote(21)
        assert repro.get(ref) == 42
        hist = runtime.metrics.histogram(
            "wait_latency_seconds", "Time blocked in Completion.wait"
        )
        assert hist.count >= 1

    def test_disabled_runtime_registers_nothing(self):
        rt = repro.init(
            num_nodes=1,
            num_cpus_per_node=2,
            metrics_enabled=False,
            trace_events_enabled=False,
        )
        try:
            assert repro.get(double.remote(3)) == 6
            assert rt.metrics.series_names() == []
            assert rt.metrics.to_prometheus_text() == ""
            # No lifecycle events either — only the always-on finish record.
            assert rt.gcs.events("task_submitted") == []
            assert rt.gcs.events("task_scheduled") == []
        finally:
            repro.shutdown()
