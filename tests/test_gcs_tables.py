"""GCS typed tables: object locations, task lineage, actors, events."""

import pytest

from repro.common.ids import ActorID, FunctionID, NodeID, ObjectID, TaskID
from repro.gcs.client import GlobalControlStore
from repro.gcs.tables import TaskStatus


@pytest.fixture
def gcs():
    return GlobalControlStore(num_shards=2, num_replicas=1)


class TestFunctionTable:
    def test_register_and_get(self, gcs):
        fid = FunctionID.from_seed("f")
        gcs.register_function(fid, sum)
        assert gcs.get_function(fid) is sum

    def test_missing_function_raises(self, gcs):
        with pytest.raises(KeyError):
            gcs.get_function(FunctionID.from_seed("missing"))


class TestObjectTable:
    def test_locations_fold_adds_and_removes(self, gcs):
        oid = ObjectID.from_seed("o")
        n1, n2 = NodeID.from_seed("n1"), NodeID.from_seed("n2")
        gcs.add_object_location(oid, n1)
        gcs.add_object_location(oid, n2)
        assert gcs.get_object_locations(oid) == {n1, n2}
        gcs.remove_object_location(oid, n1)
        assert gcs.get_object_locations(oid) == {n2}

    def test_entry_combines_metadata_and_locations(self, gcs):
        oid = ObjectID.from_seed("o")
        tid = TaskID.from_seed("t")
        node = NodeID.from_seed("n")
        gcs.add_object(oid, 128, tid)
        gcs.add_object_location(oid, node)
        entry = gcs.get_object_entry(oid)
        assert entry.size == 128
        assert entry.task_id == tid
        assert entry.locations == frozenset({node})

    def test_missing_entry_is_none(self, gcs):
        assert gcs.get_object_entry(ObjectID.from_seed("missing")) is None

    def test_creating_task_lineage_pointer(self, gcs):
        oid = ObjectID.from_seed("o")
        tid = TaskID.from_seed("t")
        gcs.add_object(oid, 1, tid)
        assert gcs.creating_task(oid) == tid

    def test_put_objects_have_no_lineage(self, gcs):
        oid = ObjectID.from_seed("o")
        gcs.add_object(oid, 1, None)
        assert gcs.creating_task(oid) is None

    def test_location_subscription(self, gcs):
        oid = ObjectID.from_seed("o")
        node = NodeID.from_seed("n")
        seen = []
        unsubscribe = gcs.subscribe_object_locations(
            oid, lambda op, nid: seen.append((op, nid))
        )
        gcs.add_object_location(oid, node)
        assert seen == [("add", node)]
        unsubscribe()
        gcs.remove_object_location(oid, node)
        assert len(seen) == 1


class TestTaskTable:
    def test_add_and_get(self, gcs):
        tid = TaskID.from_seed("t")
        gcs.add_task(tid, "spec")
        entry = gcs.get_task(tid)
        assert entry.spec == "spec"
        assert entry.status == TaskStatus.PENDING

    def test_add_is_idempotent_for_replay(self, gcs):
        """Replayed tasks must not clobber the original lineage record."""
        tid = TaskID.from_seed("t")
        gcs.add_task(tid, "original")
        gcs.add_task(tid, "replayed")
        assert gcs.get_task(tid).spec == "original"

    def test_status_transitions(self, gcs):
        tid = TaskID.from_seed("t")
        node = NodeID.from_seed("n")
        gcs.add_task(tid, "spec")
        gcs.update_task_status(tid, TaskStatus.RUNNING, node_id=node)
        entry = gcs.get_task(tid)
        assert entry.status == TaskStatus.RUNNING
        assert entry.node_id == node
        gcs.update_task_status(tid, TaskStatus.FINISHED)
        entry = gcs.get_task(tid)
        assert entry.status == TaskStatus.FINISHED
        assert entry.node_id == node  # preserved when not passed

    def test_update_unknown_task_raises(self, gcs):
        with pytest.raises(KeyError):
            gcs.update_task_status(TaskID.from_seed("x"), TaskStatus.RUNNING)

    def test_tasks_with_status(self, gcs):
        for i in range(3):
            gcs.add_task(TaskID.from_seed(str(i)), i)
        gcs.update_task_status(TaskID.from_seed("0"), TaskStatus.FINISHED)
        finished = gcs.tasks_with_status(TaskStatus.FINISHED)
        assert len(finished) == 1
        assert len(gcs.tasks_with_status(TaskStatus.PENDING)) == 2


class TestActorTable:
    def test_register_and_update(self, gcs):
        aid = ActorID.from_seed("a")
        node = NodeID.from_seed("n")
        gcs.register_actor(aid, "Counter", None)
        gcs.update_actor(aid, node_id=node, methods_executed=5)
        entry = gcs.get_actor(aid)
        assert entry.class_name == "Counter"
        assert entry.node_id == node
        assert entry.methods_executed == 5
        assert entry.alive

    def test_update_unknown_actor_raises(self, gcs):
        with pytest.raises(KeyError):
            gcs.update_actor(ActorID.from_seed("x"), alive=False)


class TestEventLog:
    def test_events_recorded_by_category(self, gcs):
        gcs.record_event("task_finished", task="t1", duration=0.5)
        gcs.record_event("task_finished", task="t2", duration=0.7)
        gcs.record_event("node_death", node="n1")
        events = gcs.events("task_finished")
        assert len(events) == 2
        assert events[0].as_dict()["task"] == "t1"
        assert len(gcs.events("node_death")) == 1

    def test_empty_category(self, gcs):
        assert gcs.events("nothing") == []
