"""The serve plane: batching, backpressure, retry, hot swap, autoscaling.

Router edge cases from the PR issue: batch cut on timeout vs size,
backpressure shed (plus its HTTP 429 mapping), and replica death mid-batch
retrying on a sibling.  Plus deployment lifecycle (versioned hot swap with
drain), the GCS serve tables, the dashboard panels, and the replica
autoscaler's scale-up / scale-down / replace-dead reconciliation.
"""

import json
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro
from repro import serve
from repro.common.errors import BackpressureError, GetTimeoutError
from repro.tools.autoscaler import ReplicaAutoscaler, ReplicaAutoscalerConfig


@serve.deployment(num_replicas=1, max_batch_size=4, batch_wait_timeout_s=5.0)
class Batcher:
    def __init__(self):
        self.calls = 0

    def handle_batch(self, payloads):
        self.calls += 1
        return [(p, len(payloads)) for p in payloads]


@serve.deployment(num_replicas=1, max_batch_size=1, batch_wait_timeout_s=0.01)
class Slow:
    def __init__(self, delay=0.2):
        self.delay = delay

    def handle_batch(self, payloads):
        time.sleep(self.delay)
        return list(payloads)


class TestBatching:
    def test_batch_cut_on_size(self, runtime):
        """Four submissions fill max_batch_size=4 and cut immediately —
        nobody waits out the 2.5 s half-budget deadline."""
        handle = Batcher.deploy()
        start = time.perf_counter()
        futures = [handle.submit(i) for i in range(4)]
        results = [f.result(timeout=10) for f in futures]
        elapsed = time.perf_counter() - start
        assert [r[0] for r in results] == [0, 1, 2, 3]
        assert all(r[1] == 4 for r in results), "expected one 4-wide batch"
        assert elapsed < 2.0, f"size-full batch waited {elapsed:.2f}s"

    def test_batch_cut_on_timeout(self, runtime):
        """A lone request is cut when half its 0.4 s budget is spent, not
        when the (never-filling) batch reaches 8."""
        handle = Batcher.options(
            max_batch_size=8, batch_wait_timeout_s=0.4
        ).deploy()
        start = time.perf_counter()
        payload, width = handle.query(42, timeout=10)
        elapsed = time.perf_counter() - start
        assert payload == 42
        assert width == 1
        assert elapsed < 5.0

    def test_function_deployment(self, runtime):
        @serve.deployment(max_batch_size=2, batch_wait_timeout_s=0.02)
        def double(x):
            return x * 2

        handle = double.deploy()
        assert handle.query_many([1, 2, 3], timeout=10) == [2, 4, 6]

    def test_future_timeout(self, runtime):
        handle = Slow.deploy(0.5)
        future = handle.submit("x")
        with pytest.raises(GetTimeoutError):
            future.result(timeout=0.01)
        assert future.result(timeout=10) == "x"


class TestBackpressure:
    def test_shed_when_queue_full(self, runtime):
        handle = Slow.options(max_queue_per_replica=2).deploy(0.3)
        futures, shed = [], 0
        for i in range(10):
            try:
                futures.append(handle.submit(i))
            except BackpressureError:
                shed += 1
        assert shed > 0, "10 instant submissions must overflow a 2-deep queue"
        # Admitted requests still complete.
        for future in futures:
            future.result(timeout=20)
        assert handle.stats()["shed"] == shed

    def test_shed_recovers(self, runtime):
        handle = Slow.options(max_queue_per_replica=1).deploy(0.1)
        with pytest.raises(BackpressureError):
            for i in range(8):
                handle.submit(i)
        # After the queue drains, submissions are accepted again.
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                assert handle.query("again", timeout=10) == "again"
                break
            except BackpressureError:
                time.sleep(0.05)
        else:
            pytest.fail("backpressure never cleared")


class TestReplicaDeath:
    def test_mid_batch_death_retries_on_sibling(self, runtime):
        handle = Slow.options(
            num_replicas=2, max_restarts=0, max_queue_per_replica=64
        ).deploy(0.5)
        futures = [handle.submit(i) for i in range(2)]
        time.sleep(0.15)  # let both batches dispatch, one per replica
        victim = repro.get_actor("serve:Slow#v1:0")
        repro.kill(victim, restart=False)
        # Both requests still answer: the dead replica's batch is retried
        # on its sibling.
        assert sorted(f.result(timeout=20) for f in futures) == [0, 1]
        stats = handle.stats()
        assert stats["retries"] >= 1
        dead = [r for r in stats["replicas"] if r["dead"]]
        assert len(dead) == 1

    def test_all_replicas_dead_propagates_error(self, runtime):
        handle = Slow.options(num_replicas=1, max_restarts=0).deploy(0.3)
        future = handle.submit("doomed")
        time.sleep(0.1)
        repro.kill(repro.get_actor("serve:Slow#v1:0"), restart=False)
        with pytest.raises(Exception):
            future.result(timeout=20)


class TestHotSwap:
    def test_versioned_redeploy_swaps_and_drains(self, runtime):
        @serve.deployment(num_replicas=2, max_batch_size=4, batch_wait_timeout_s=0.02)
        class Model:
            def __init__(self, tag):
                self.tag = tag

            def handle_batch(self, payloads):
                return [(self.tag, p) for p in payloads]

        handle = Model.deploy("v1")
        assert handle.query(1, timeout=10) == ("v1", 1)
        assert handle.version == 1

        handle2 = Model.deploy("v2")
        assert handle2.version == 2
        assert handle2.query(1, timeout=10) == ("v2", 1)

        plane = serve.get_plane(runtime)
        plane.wait_drains()
        # Old replicas were drained to permanent death: their names freed.
        with pytest.raises(ValueError):
            repro.get_actor("serve:Model#v1:0")

        row = runtime.gcs.get_deployment("Model")
        assert row["version"] == 2
        assert all("#v2:" in name for name in row["replicas"])
        history = runtime.gcs.deployment_history("Model")
        assert [entry["version"] for entry in history] == [1, 2]

    def test_drain_waits_for_inflight(self, runtime):
        @repro.remote
        class Worker:
            def work(self):
                time.sleep(0.3)
                return "done"

        worker = Worker.remote()
        refs = [worker.work.remote() for _ in range(3)]
        assert runtime.drain_actor(worker.actor_id, timeout=10)
        # Every pre-drain call completed before the kill.
        assert repro.get(refs, timeout=10) == ["done"] * 3

    def test_deployment_handle_repr(self, runtime):
        handle = Batcher.deploy()
        assert repr(handle) == "DeploymentHandle('Batcher', version=1, replicas=1)"


class TestReplicaAutoscaler:
    def _autoscaler(self, runtime, name, **overrides):
        config = ReplicaAutoscalerConfig(
            high_watermark=2.0,
            low_watermark=0.5,
            hysteresis=1,
            cooldown_seconds=0.0,
            min_replicas=1,
            max_replicas=4,
            **overrides,
        )
        return ReplicaAutoscaler(runtime, name, config)

    def test_scale_up_then_down(self, runtime):
        handle = Slow.options(max_queue_per_replica=64).deploy(0.2)
        scaler = self._autoscaler(runtime, "Slow")
        router = serve.get_plane(runtime).get("Slow").router

        futures = [handle.submit(i) for i in range(12)]
        router.publish_report()
        decision = scaler.tick()
        assert decision is not None and decision["action"] == "scale_up"
        assert handle.num_replicas == 2

        for future in futures:
            future.result(timeout=30)
        router.publish_report()
        decision = scaler.tick()
        assert decision is not None and decision["action"] == "scale_down"
        assert handle.num_replicas == 1

    def test_replaces_permanently_dead_replica(self, runtime):
        handle = Slow.options(num_replicas=2, max_restarts=0).deploy(0.05)
        handle.query("warm", timeout=10)
        repro.kill(repro.get_actor("serve:Slow#v1:0"), restart=False)

        scaler = self._autoscaler(runtime, "Slow")
        router = serve.get_plane(runtime).get("Slow").router
        router.publish_report()
        decision = scaler.tick()
        assert decision is not None and decision["action"] == "replace_replica"
        stats = handle.stats()
        assert stats["alive_replicas"] == 2
        assert handle.query("after", timeout=10) == "after"

    def test_decisions_land_in_event_timeline(self, runtime):
        handle = Slow.options(max_queue_per_replica=64).deploy(0.2)
        scaler = self._autoscaler(runtime, "Slow")
        router = serve.get_plane(runtime).get("Slow").router
        futures = [handle.submit(i) for i in range(12)]
        router.publish_report()
        scaler.tick()
        records, _ = runtime.gcs.events_since(0, categories=["autoscaler_decision"])
        kinds = [r.as_dict().get("kind") for r in records]
        assert "serve_replicas" in kinds
        for future in futures:
            future.result(timeout=30)


class TestServeTables:
    def test_report_published_into_gcs(self, runtime):
        handle = Batcher.deploy()
        handle.query(1, timeout=10)
        router = serve.get_plane(runtime).get("Batcher").router
        row = router.publish_report()
        stored = runtime.gcs.get_serve_report("Batcher")
        assert stored["seq"] == row["seq"]
        assert stored["deployment"] == "Batcher"
        assert stored["p99_ms"] is not None
        assert runtime.gcs.serve_reports()["Batcher"]["seq"] == row["seq"]

    def test_dashboard_serve_and_config_endpoints(self, runtime):
        from repro.tools.http_dashboard import DashboardServer

        handle = Batcher.deploy()
        handle.query(1, timeout=10)
        serve.get_plane(runtime).get("Batcher").router.publish_report()
        server = DashboardServer(runtime).start()
        try:
            base = server.address
            with urllib.request.urlopen(base + "/serve", timeout=10) as resp:
                body = json.loads(resp.read())
            assert body["Batcher"]["version"] == 1
            assert body["Batcher"]["report"]["deployment"] == "Batcher"
            with urllib.request.urlopen(base + "/config", timeout=10) as resp:
                config = json.loads(resp.read())
            fields = {row["name"]: row for row in config}
            assert fields["num_nodes"]["value"] == "2"
            assert fields["gcs_shards"]["doc"]
        finally:
            server.stop()

    def test_delete_tombstones(self, runtime):
        Batcher.deploy().query(1, timeout=10)
        plane = serve.get_plane(runtime)
        plane.get("Batcher").router.publish_report()
        plane.delete("Batcher")
        assert runtime.gcs.get_deployment("Batcher")["deleted"]
        assert runtime.gcs.get_serve_report("Batcher")["tombstone"]
        with pytest.raises(KeyError):
            plane.handle("Batcher")


class TestHTTPIngress:
    def test_query_404_and_429(self, runtime):
        handle = Slow.options(max_queue_per_replica=1).deploy(0.3)
        assert handle.query("warm", timeout=10) == "warm"
        server = serve.ServeHTTPServer(serve.get_plane(runtime)).start()
        try:
            url = server.url

            def post(name, payload):
                request = urllib.request.Request(
                    f"{url}/serve/{name}",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
                try:
                    with urllib.request.urlopen(request, timeout=30) as resp:
                        return resp.status, json.loads(resp.read())
                except urllib.error.HTTPError as exc:
                    return exc.code, json.loads(exc.read())

            status, body = post("Slow", "ping")
            assert status == 200 and body["result"] == "ping"

            status, _body = post("nosuch", 1)
            assert status == 404

            with ThreadPoolExecutor(max_workers=8) as pool:
                codes = [
                    status
                    for status, _ in pool.map(lambda i: post("Slow", i), range(8))
                ]
            assert 200 in codes
            assert 429 in codes, f"expected a shed among {codes}"

            with urllib.request.urlopen(f"{url}/serve", timeout=10) as resp:
                summary = json.loads(resp.read())
            assert summary["Slow"]["shed"] >= 1
        finally:
            server.stop()
