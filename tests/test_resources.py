"""Resource pools and request normalization."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.core.resources import ResourcePool, normalize_resources


class TestNormalize:
    def test_default_is_one_cpu(self):
        assert normalize_resources() == {"CPU": 1.0}

    def test_explicit_values(self):
        req = normalize_resources(num_cpus=2, num_gpus=1, resources={"TPU": 4})
        assert req == {"CPU": 2.0, "GPU": 1.0, "TPU": 4.0}

    def test_zero_cpu_kept_for_bookkeeping(self):
        assert normalize_resources(num_cpus=0) == {"CPU": 0.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_resources(num_cpus=-1)
        with pytest.raises(ValueError):
            normalize_resources(resources={"X": -2})

    def test_cpu_in_custom_resources_rejected(self):
        with pytest.raises(ValueError):
            normalize_resources(resources={"CPU": 2})


class TestResourcePool:
    def test_try_acquire_and_release(self):
        pool = ResourcePool({"CPU": 2})
        assert pool.try_acquire({"CPU": 1})
        assert pool.try_acquire({"CPU": 1})
        assert not pool.try_acquire({"CPU": 1})
        pool.release({"CPU": 1})
        assert pool.try_acquire({"CPU": 1})

    def test_can_ever_satisfy(self):
        pool = ResourcePool({"CPU": 4})
        assert pool.can_ever_satisfy({"CPU": 4})
        assert not pool.can_ever_satisfy({"CPU": 5})
        assert not pool.can_ever_satisfy({"GPU": 1})
        assert pool.can_ever_satisfy({})

    def test_all_or_nothing(self):
        pool = ResourcePool({"CPU": 2, "GPU": 1})
        pool.try_acquire({"GPU": 1})
        # CPU available but GPU is not: acquisition must fail atomically.
        assert not pool.try_acquire({"CPU": 1, "GPU": 1})
        assert pool.available()["CPU"] == 2

    def test_release_over_capacity_rejected(self):
        pool = ResourcePool({"CPU": 1})
        with pytest.raises(ValueError):
            pool.release({"CPU": 1})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool({"CPU": -1})

    def test_blocking_acquire_times_out(self):
        pool = ResourcePool({"CPU": 1})
        pool.try_acquire({"CPU": 1})
        assert not pool.acquire({"CPU": 1}, timeout=0.05)
        # Failed acquire must not leak availability.
        pool.release({"CPU": 1})
        assert pool.available()["CPU"] == 1

    def test_blocking_acquire_wakes_on_release(self):
        pool = ResourcePool({"CPU": 1})
        pool.try_acquire({"CPU": 1})
        acquired = threading.Event()

        def waiter():
            if pool.acquire({"CPU": 1}, timeout=5):
                acquired.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        pool.release({"CPU": 1})
        assert acquired.wait(timeout=5)

    def test_utilization(self):
        pool = ResourcePool({"CPU": 4})
        assert pool.utilization("CPU") == 0.0
        pool.try_acquire({"CPU": 2})
        assert pool.utilization("CPU") == pytest.approx(0.5)
        assert pool.utilization("GPU") == 0.0

    def test_release_listener_fires(self):
        pool = ResourcePool({"CPU": 1})
        fired = []
        pool.add_release_listener(lambda: fired.append(1))
        pool.try_acquire({"CPU": 1})
        pool.release({"CPU": 1})
        assert fired == [1]

    @given(st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=20))
    def test_acquire_release_conserves_capacity(self, amounts):
        pool = ResourcePool({"CPU": 8})
        held = []
        for amount in amounts:
            if pool.try_acquire({"CPU": float(amount)}):
                held.append(amount)
        for amount in held:
            pool.release({"CPU": float(amount)})
        assert pool.available()["CPU"] == pytest.approx(8)
