"""App-level task retries: max_retries / retry_exceptions on tasks and
actor methods.

In-place retries re-run the same attempt on the same node after an
application exception — distinct from lineage reconstruction (which replays
tasks whose *outputs* were lost to node failure).  ``retry_exceptions``
narrows which exception types qualify; cancellation never retries.
"""

import threading

import pytest

import repro
from repro.common.errors import TaskExecutionError


class FlakeCounter:
    """Cross-thread attempt counter shared with remote functions."""

    def __init__(self):
        self.lock = threading.Lock()
        self.counts = {}

    def bump(self, key):
        with self.lock:
            self.counts[key] = self.counts.get(key, 0) + 1
            return self.counts[key]


FLAKES = FlakeCounter()


@repro.remote(max_retries=3)
def flaky(key, fail_until):
    attempt = FLAKES.bump(key)
    if attempt <= fail_until:
        raise RuntimeError(f"attempt {attempt} fails")
    return attempt


@repro.remote(max_retries=2, retry_exceptions=[KeyError])
def picky(key, exc_name):
    FLAKES.bump(key)
    raise {"KeyError": KeyError, "ValueError": ValueError}[exc_name](key)


def test_retry_until_success(runtime):
    assert repro.get(flaky.remote("ok-3", 2), timeout=30) == 3


def test_retries_exhausted_raises_original(runtime):
    with pytest.raises(TaskExecutionError) as info:
        repro.get(flaky.remote("always", 99), timeout=30)
    assert "attempt 4 fails" in str(info.value)  # 1 try + 3 retries
    assert FLAKES.counts["always"] == 4


def test_retry_exceptions_filters_types(runtime):
    # KeyError is retryable: 1 try + 2 retries.
    with pytest.raises(TaskExecutionError):
        repro.get(picky.remote("keyed", "KeyError"), timeout=30)
    assert FLAKES.counts["keyed"] == 3
    # ValueError is not in the allow-list: exactly one attempt.
    with pytest.raises(TaskExecutionError):
        repro.get(picky.remote("valued", "ValueError"), timeout=30)
    assert FLAKES.counts["valued"] == 1


def test_options_override_max_retries(runtime):
    with pytest.raises(TaskExecutionError):
        repro.get(
            flaky.options(max_retries=1).remote("opted", 99), timeout=30
        )
    assert FLAKES.counts["opted"] == 2  # 1 try + 1 retry


def test_zero_retries_is_default(runtime):
    @repro.remote
    def boom(key):
        FLAKES.bump(key)
        raise RuntimeError("no retries")

    with pytest.raises(TaskExecutionError):
        repro.get(boom.remote("zero"), timeout=30)
    assert FLAKES.counts["zero"] == 1


def test_retry_counter_metric(runtime):
    repro.get(flaky.remote("metric", 2), timeout=30)
    for family in runtime.metrics.families():
        if family.name == "task_retries_total":
            total = sum(m.value for m in family.series.values())
            assert total >= 2
            break
    else:
        pytest.fail("task_retries_total counter not registered")


def test_actor_method_retries(runtime):
    @repro.remote
    class Flaky:
        def __init__(self):
            self.calls = 0

        @repro.method(max_retries=3)
        def unstable(self, fail_until):
            self.calls += 1
            if self.calls <= fail_until:
                raise RuntimeError(f"call {self.calls}")
            return self.calls

        def call_count(self):
            return self.calls

    actor = Flaky.remote()
    # Retries are invisible to the method counter: one logical method,
    # several attempts mutating instance state each time.
    assert repro.get(actor.unstable.remote(2), timeout=30) == 3
    assert repro.get(actor.call_count.remote(), timeout=10) == 3


def test_actor_method_options_retries(runtime):
    @repro.remote
    class Sometimes:
        def __init__(self):
            self.calls = 0

        def shaky(self, fail_until):
            self.calls += 1
            if self.calls <= fail_until:
                raise KeyError(self.calls)
            return self.calls

    actor = Sometimes.remote()
    method = actor.shaky.options(max_retries=2, retry_exceptions=[KeyError])
    assert repro.get(method.remote(1), timeout=30) == 2
