"""Unit tests for the completion/notification layer (repro.common.events)."""

from __future__ import annotations

import threading
import time

from repro.common.events import (
    BACKSTOP_INTERVAL,
    Completion,
    WaitStats,
    wait_any,
)


class TestCompletion:
    def test_initially_unset(self):
        c = Completion()
        assert not c.is_set()
        assert not c.wait(timeout=0.01)

    def test_set_and_wait(self):
        c = Completion()
        assert c.set() is True
        assert c.is_set()
        assert c.wait(timeout=0)

    def test_set_is_idempotent(self):
        c = Completion()
        assert c.set() is True
        assert c.set() is False

    def test_clear_rearms(self):
        c = Completion()
        c.set()
        c.clear()
        assert not c.is_set()
        c.set()
        assert c.is_set()

    def test_callback_fires_on_set(self):
        c = Completion()
        seen = []
        c.add_callback(seen.append)
        assert seen == []
        c.set()
        assert seen == [c]

    def test_callback_fires_immediately_if_set(self):
        c = Completion()
        c.set()
        seen = []
        c.add_callback(seen.append)
        assert seen == [c]

    def test_callback_fires_once_across_rearm(self):
        c = Completion()
        seen = []
        c.add_callback(seen.append)
        c.set()
        c.clear()
        c.set()
        assert seen == [c]

    def test_remove_callback(self):
        c = Completion()
        seen = []
        c.add_callback(seen.append)
        c.remove_callback(seen.append)
        c.set()
        assert seen == []

    def test_cross_thread_wakeup_is_prompt(self):
        c = Completion()
        set_at = []

        def setter():
            time.sleep(0.02)
            set_at.append(time.monotonic())
            c.set()

        threading.Thread(target=setter).start()
        assert c.wait(timeout=5)
        woke_at = time.monotonic()
        assert woke_at - set_at[0] < 0.01  # notification, not a poll


class TestWaitAny:
    def test_returns_already_set(self):
        a, b = Completion(), Completion()
        a.set()
        assert wait_any([a, b], timeout=0) == [a]

    def test_empty_sequence(self):
        assert wait_any([], timeout=0.01) == []

    def test_timeout_returns_partial(self):
        a, b = Completion(), Completion()
        a.set()
        start = time.monotonic()
        ready = wait_any([a, b], timeout=0.05, count=2)
        assert ready == [a]
        assert time.monotonic() - start < 1.0

    def test_count_satisfied(self):
        a, b, c = Completion(), Completion(), Completion()
        a.set()
        c.set()
        ready = wait_any([a, b, c], timeout=0, count=2)
        assert set(ready) == {a, c}

    def test_wakes_on_any(self):
        a, b = Completion(), Completion()
        threading.Thread(target=lambda: (time.sleep(0.02), b.set())).start()
        start = time.monotonic()
        ready = wait_any([a, b], timeout=5)
        assert ready == [b]
        assert time.monotonic() - start < 1.0  # did not hit the backstop

    def test_no_leaked_callbacks_after_timeout(self):
        a = Completion()
        for _ in range(10):
            wait_any([a], timeout=0.001)
        assert a._callbacks == []  # noqa: SLF001 - leak regression check


class TestWaitStats:
    def test_notification_counters(self):
        stats = WaitStats()
        c = Completion(stats=stats)
        c.add_callback(lambda _c: None)
        c.set()
        snap = stats.snapshot()
        assert snap["notifications"] == 1
        assert snap["callbacks_fired"] == 1

    def test_wait_counters(self):
        stats = WaitStats()
        c = Completion(stats=stats)
        c.wait(timeout=0.001)  # times out
        c.set()
        c.wait(timeout=0.001)  # satisfied
        snap = stats.snapshot()
        assert snap["waits"] == 2
        assert snap["wakeups"] == 1
        assert snap["wait_timeouts"] == 1

    def test_backstop_counters(self):
        stats = WaitStats()
        stats.record_backstop()
        stats.record_backstop(recovered=True)
        snap = stats.snapshot()
        assert snap["backstop_timeouts"] == 2
        assert snap["backstop_recoveries"] == 1


def test_backstop_interval_is_not_a_poll():
    """The guarded backstop must stay >= 1s — anything shorter is a poll."""
    assert BACKSTOP_INTERVAL >= 1.0
