"""Lineage GC (Section 7 limitation) and read-only methods (Section 5.1
future work) — the paper's stated extensions, implemented."""

import pytest

import repro
from repro.core.gc import LineageGarbageCollector, free_objects


@repro.remote
def step(x):
    return x + 1


@repro.remote
class Vault:
    def __init__(self):
        self.value = 0
        self.peeks = 0

    def set(self, v):
        self.value = v
        return self.value

    @repro.method(read_only=True)
    def peek(self):
        # NOTE: mutating self.peeks here would be a bug in *user* code —
        # read_only is a promise to the system.
        return self.value


class TestFree:
    def test_free_drops_all_copies(self, runtime):
        ref = repro.put(b"x" * 1000)
        dropped = repro.free(ref)
        assert dropped >= 1
        assert not runtime.transfer.live_locations(ref.object_id)

    def test_freed_task_output_is_reconstructible(self, runtime):
        """free without delete_lineage: the object can come back."""
        ref = step.remote(1)
        assert repro.get(ref, timeout=10) == 2
        repro.free(ref)
        assert repro.get(ref, timeout=20) == 2  # lineage replay

    def test_free_with_lineage_is_permanent(self, runtime):
        ref = step.remote(1)
        repro.get(ref, timeout=10)
        repro.free(ref, delete_lineage=True)
        with pytest.raises(repro.ReproError):
            repro.get(ref, timeout=2)

    def test_free_list(self, runtime):
        refs = [repro.put(i) for i in range(3)]
        assert repro.free(refs) == 3


class TestLineageGC:
    def test_collect_keeps_live_closure(self, runtime):
        # Build two chains; keep a reference only to the first one's head.
        live = step.remote(0)
        for _ in range(4):
            live = step.remote(live)
        dead = step.remote(100)
        for _ in range(4):
            dead = step.remote(dead)
        assert repro.get(live, timeout=10) == 5
        assert repro.get(dead, timeout=10) == 105

        gc = LineageGarbageCollector(runtime)
        before = runtime.gcs.num_tasks()
        removed = gc.collect([live.object_id])
        assert removed >= 5  # the dead chain went away
        assert runtime.gcs.num_tasks() == before - removed

        # The live chain is still fully reconstructible after loss.
        repro.free(live)
        assert repro.get(live, timeout=20) == 5

    def test_collected_lineage_is_gone(self, runtime):
        ref = step.remote(7)
        assert repro.get(ref, timeout=10) == 8
        gc = LineageGarbageCollector(runtime)
        gc.collect([])  # nothing is live
        repro.free(ref)
        with pytest.raises(repro.ReproError):
            repro.get(ref, timeout=2)

    def test_inflight_tasks_never_collected(self, runtime):
        import time

        @repro.remote
        def slow():
            time.sleep(0.3)
            return 1

        ref = slow.remote()
        removed = LineageGarbageCollector(runtime).collect([])
        # The running task must survive collection.
        assert repro.get(ref, timeout=10) == 1
        del removed

    def test_actor_chains_are_retained(self, runtime):
        vault = Vault.remote()
        repro.get(vault.set.remote(3), timeout=10)
        LineageGarbageCollector(runtime).collect([])
        # Actor survives and its chain still replays after a crash.
        repro.kill(vault, restart=True)
        assert repro.get(vault.peek.remote(), timeout=20) == 3


class TestReadOnlyMethods:
    def test_read_only_methods_not_replayed(self, runtime):
        """Replay skips read-only methods whose outputs still exist."""
        vault = Vault.remote()
        repro.get(vault.set.remote(42), timeout=10)
        peeks = [vault.peek.remote() for _ in range(10)]
        assert repro.get(peeks, timeout=10) == [42] * 10
        repro.kill(vault, restart=True)
        # State is correct after replay...
        assert repro.get(vault.peek.remote(), timeout=20) == 42
        # ...but only the mutating method (set) was re-executed.
        assert runtime.actors.replayed_methods <= 2

    def test_mutating_methods_always_replayed(self, runtime):
        @repro.remote
        class Acc:
            def __init__(self):
                self.v = 0

            def add(self):
                self.v += 1
                return self.v

        acc = Acc.remote()
        repro.get([acc.add.remote() for _ in range(6)], timeout=10)
        repro.kill(acc, restart=True)
        assert repro.get(acc.add.remote(), timeout=20) == 7
        assert runtime.actors.replayed_methods >= 6

    def test_read_only_output_lost_is_recomputed(self, runtime):
        """If a read-only result was evicted, replay re-executes it (safe:
        it does not mutate state)."""
        vault = Vault.remote()
        repro.get(vault.set.remote(9), timeout=10)
        peek = vault.peek.remote()
        assert repro.get(peek, timeout=10) == 9
        repro.free(peek)  # lose the output
        repro.kill(vault, restart=True)
        assert repro.get(vault.peek.remote(), timeout=20) == 9
        # The lost peek is retrievable again via replay.
        assert repro.get(peek, timeout=20) == 9

    def test_decorator_preserves_function(self, runtime):
        assert getattr(Vault.__init__, "__repro_read_only__", False) is False
        # The decorator marks the underlying function on the user class.
        inner = runtime  # noqa: F841 - fixture keeps the cluster alive
        assert Vault._cls.peek.__repro_read_only__ is True
        assert not getattr(Vault._cls.set, "__repro_read_only__", False)
