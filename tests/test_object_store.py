"""Per-node object store: immutability, LRU eviction, pinning, events."""

import pytest

from repro.common.errors import ObjectStoreFullError
from repro.common.ids import NodeID, ObjectID
from repro.common.serialization import serialize
from repro.core.object_store import LocalObjectStore


def make_store(capacity=None, on_evict=None):
    return LocalObjectStore(
        NodeID.from_seed("n"), capacity_bytes=capacity, on_evict=on_evict
    )


def oid(name):
    return ObjectID.from_seed(name)


def blob(n):
    return serialize(bytes(n))


class TestBasics:
    def test_put_get(self):
        store = make_store()
        value = serialize({"x": 1})
        assert store.put(oid("a"), value)
        assert store.get(oid("a")) is value

    def test_duplicate_put_is_noop(self):
        """Objects are immutable: replayed tasks re-put idempotently."""
        store = make_store()
        first = serialize(1)
        second = serialize(2)
        assert store.put(oid("a"), first)
        assert not store.put(oid("a"), second)
        assert store.get(oid("a")) is first

    def test_contains_and_delete(self):
        store = make_store()
        store.put(oid("a"), serialize(0))
        assert store.contains(oid("a"))
        assert store.delete(oid("a"))
        assert not store.contains(oid("a"))
        assert not store.delete(oid("a"))

    def test_used_bytes_tracks_sizes(self):
        store = make_store()
        value = blob(1000)
        store.put(oid("a"), value)
        assert store.used_bytes == value.total_bytes
        store.delete(oid("a"))
        assert store.used_bytes == 0

    def test_drop_all_returns_lost_ids(self):
        store = make_store()
        store.put(oid("a"), serialize(1))
        store.put(oid("b"), serialize(2))
        lost = store.drop_all()
        assert set(lost) == {oid("a"), oid("b")}
        assert store.num_objects() == 0
        assert store.used_bytes == 0


class TestEviction:
    def test_lru_evicts_oldest_first(self):
        evicted = []
        store = make_store(capacity=3500, on_evict=evicted.append)
        store.put(oid("a"), blob(1000))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        store.put(oid("d"), blob(1000))  # must evict "a"
        assert evicted == [oid("a")]
        assert not store.contains(oid("a"))
        assert store.contains(oid("d"))

    def test_get_refreshes_lru_position(self):
        store = make_store(capacity=3500)
        store.put(oid("a"), blob(1000))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        store.get(oid("a"))  # touch: now "b" is the LRU
        store.put(oid("d"), blob(1000))
        assert store.contains(oid("a"))
        assert not store.contains(oid("b"))

    def test_pinned_objects_survive_eviction(self):
        store = make_store(capacity=3500)
        store.put(oid("a"), blob(1000))
        store.pin(oid("a"))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        store.put(oid("d"), blob(1000))
        assert store.contains(oid("a"))
        assert not store.contains(oid("b"))

    def test_unpin_allows_eviction(self):
        store = make_store(capacity=2500)
        store.put(oid("a"), blob(1000))
        store.pin(oid("a"))
        store.unpin(oid("a"))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        assert not store.contains(oid("a"))

    def test_pin_counts_nest(self):
        store = make_store(capacity=2500)
        store.put(oid("a"), blob(1000))
        store.pin(oid("a"))
        store.pin(oid("a"))
        store.unpin(oid("a"))
        assert store.is_pinned(oid("a"))
        store.unpin(oid("a"))
        assert not store.is_pinned(oid("a"))

    def test_object_larger_than_capacity_rejected(self):
        store = make_store(capacity=100)
        with pytest.raises(ObjectStoreFullError):
            store.put(oid("big"), blob(1000))

    def test_all_pinned_store_full(self):
        store = make_store(capacity=2500)
        store.put(oid("a"), blob(1000))
        store.put(oid("b"), blob(1000))
        store.pin(oid("a"))
        store.pin(oid("b"))
        with pytest.raises(ObjectStoreFullError):
            store.put(oid("c"), blob(1000))

    def test_eviction_counter(self):
        store = make_store(capacity=2500)
        store.put(oid("a"), blob(1000))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        assert store.eviction_count == 1


class TestAvailability:
    def test_event_set_when_present(self):
        store = make_store()
        store.put(oid("a"), serialize(1))
        assert store.availability_event(oid("a")).is_set()

    def test_event_fires_on_put(self):
        store = make_store()
        event = store.availability_event(oid("a"))
        assert not event.is_set()
        store.put(oid("a"), serialize(1))
        assert event.is_set()

    def test_event_cleared_on_eviction(self):
        store = make_store(capacity=2500)
        event = store.availability_event(oid("a"))
        store.put(oid("a"), blob(1000))
        assert event.is_set()
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))  # evicts "a"
        assert not event.is_set()

    def test_event_cleared_on_delete(self):
        store = make_store()
        store.put(oid("a"), serialize(1))
        event = store.availability_event(oid("a"))
        store.delete(oid("a"))
        assert not event.is_set()

    def test_listener_runs_immediately_if_present(self):
        store = make_store()
        store.put(oid("a"), serialize(1))
        seen = []
        store.on_available(oid("a"), seen.append)
        assert seen == [oid("a")]

    def test_listener_runs_on_put(self):
        store = make_store()
        seen = []
        store.on_available(oid("a"), seen.append)
        assert seen == []
        store.put(oid("a"), serialize(1))
        assert seen == [oid("a")]

    def test_listener_fires_once(self):
        store = make_store()
        seen = []
        store.on_available(oid("a"), seen.append)
        store.put(oid("a"), serialize(1))
        store.delete(oid("a"))
        store.put(oid("a"), serialize(2))
        assert seen == [oid("a")]
