"""A3C: asynchronous gradient application on the API."""

import numpy as np
import pytest

import repro
from repro.rl import A3CConfig, A3CTrainer, EnvSpec
from repro.rl.a3c import a3c_rollout_gradient


class TestWorkerTask:
    def test_gradient_shapes(self, runtime):
        env_spec = EnvSpec("cartpole", max_steps=50)
        from repro.rl.nn import MLP

        policy = MLP(4, 16, 2, seed=0)
        value = MLP(4, 16, 1, seed=1)
        ref = a3c_rollout_gradient.remote(
            policy.get_flat(), value.get_flat(), env_spec, 16, 20, 0.99, 7
        )
        policy_grad, value_grad, reward, steps = repro.get(ref, timeout=20)
        assert policy_grad.shape == (policy.num_params(),)
        assert value_grad.shape == (value.num_params(),)
        assert 1 <= steps <= 20
        assert reward == steps  # CartPole: +1 per step

    def test_gradient_is_deterministic_given_seed(self, runtime):
        env_spec = EnvSpec("cartpole", max_steps=50)
        from repro.rl.nn import MLP

        policy = MLP(4, 8, 2, seed=0)
        value = MLP(4, 8, 1, seed=1)
        args = (policy.get_flat(), value.get_flat(), env_spec, 8, 15, 0.99, 3)
        g1 = repro.get(a3c_rollout_gradient.remote(*args), timeout=20)
        g2 = repro.get(a3c_rollout_gradient.remote(*args), timeout=20)
        np.testing.assert_allclose(g1[0], g2[0])
        np.testing.assert_allclose(g1[1], g2[1])


class TestTrainer:
    def test_applies_requested_gradient_count(self, runtime):
        trainer = A3CTrainer(
            EnvSpec("cartpole", max_steps=60),
            A3CConfig(num_workers=3, rollout_steps=20, seed=0),
        )
        stats = trainer.train(total_gradient_steps=12)
        assert stats["gradients_applied"] == 12
        assert stats["env_steps"] > 0
        assert trainer.greedy_episode_reward() >= 1

    def test_learning_signal(self, runtime):
        """With enough asynchronous gradients, CartPole rewards improve."""
        trainer = A3CTrainer(
            EnvSpec("cartpole", max_steps=200),
            A3CConfig(num_workers=4, rollout_steps=80, policy_lr=0.02, seed=2),
        )
        trainer.train(total_gradient_steps=60)
        early = np.mean(trainer.episode_rewards[:10])
        late = np.mean(trainer.episode_rewards[-10:])
        assert late > early

    def test_continuous_env_rejected(self, runtime):
        with pytest.raises(ValueError):
            A3CTrainer(EnvSpec("pendulum"))
