"""Custom serializer registry (ray.register_serializer equivalent).

The paper's actors exist partly to "wrap third-party simulators and other
opaque handles that are hard to serialize" (Section 3.1); for values that
*must* cross the store anyway, the registry lets applications supply
their own encoding.
"""

import threading

import pytest

import repro
from repro.common.serialization import deserialize, serialize


class Unpicklable:
    """Holds a lock — plain pickle raises TypeError on it."""

    def __init__(self, value):
        self.value = value
        self.lock = threading.Lock()

    def __eq__(self, other):
        return isinstance(other, Unpicklable) and other.value == self.value


@pytest.fixture
def registered():
    repro.register_serializer(
        Unpicklable,
        serializer=lambda obj: obj.value,
        deserializer=lambda value: Unpicklable(value),
    )
    try:
        yield
    finally:
        repro.deregister_serializer(Unpicklable)


class TestRegistry:
    def test_unpicklable_fails_without_registration(self):
        with pytest.raises(TypeError):
            serialize(Unpicklable(1))

    def test_roundtrip_with_registration(self, registered):
        original = Unpicklable({"nested": [1, 2]})
        result = deserialize(serialize(original))
        assert result == original
        assert isinstance(result.lock, type(threading.Lock()))

    def test_nested_inside_containers(self, registered):
        value = {"items": [Unpicklable(1), Unpicklable(2)], "plain": 3}
        result = deserialize(serialize(value))
        assert result["items"] == [Unpicklable(1), Unpicklable(2)]
        assert result["plain"] == 3

    def test_deregistration_restores_failure(self, registered):
        repro.deregister_serializer(Unpicklable)
        with pytest.raises(TypeError):
            serialize(Unpicklable(1))
        # Re-register so the fixture teardown stays a no-op.
        repro.register_serializer(
            Unpicklable,
            serializer=lambda o: o.value,
            deserializer=Unpicklable,
        )

    def test_plain_values_unaffected(self, registered):
        assert deserialize(serialize([1, "two", 3.0])) == [1, "two", 3.0]


class TestThroughTheRuntime:
    def test_custom_type_through_tasks(self, runtime, registered):
        @repro.remote
        def bump(box):
            return Unpicklable(box.value + 1)

        result = repro.get(bump.remote(Unpicklable(41)), timeout=10)
        assert result == Unpicklable(42)

    def test_custom_type_through_put_get(self, runtime, registered):
        ref = repro.put(Unpicklable("state"))
        assert repro.get(ref) == Unpicklable("state")
