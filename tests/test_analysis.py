"""Tests for the concurrency lint engine (repro.tools.analysis).

Every rule gets at least one true-positive fixture (the rule fires on the
bad idiom) and one false-positive-avoidance fixture (the rule stays silent
on the clean sibling idiom).  The two RT-LOCK-GUARD sharpenings that came
out of triaging the real codebase — mutator calls only count as writes for
builtin-container attributes, and reads of rebind-only attributes are
exempt — get dedicated regression tests so they cannot silently regress.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.tools import analyze as analyze_cli
from repro.tools.analysis import (
    Baseline,
    analyze,
    run_rules,
    sarif_payload,
    scan_paths,
)


def _scan(tmp_path: Path, source: str, name: str = "mod.py"):
    """Write ``source`` into a scratch package and run every rule on it."""
    target = tmp_path / name
    target.write_text(textwrap.dedent(source))
    return run_rules(scan_paths([tmp_path]))


def _rule_hits(findings, rule_id: str):
    return [f for f in findings if f.rule_id == rule_id]


# ---------------------------------------------------------------------------
# RT-LOCK-GUARD
# ---------------------------------------------------------------------------


class TestLockGuard:
    def test_unguarded_write_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def sneak(self, key, value):
                    self._items[key] = value
            """,
        )
        hits = _rule_hits(findings, "RT-LOCK-GUARD")
        assert any(
            f.symbol == "Registry.sneak" and f.severity == "error" for f in hits
        ), [f.format() for f in findings]

    def test_unguarded_mutating_read_warns(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def peek(self):
                    return len(self._items)
            """,
        )
        hits = _rule_hits(findings, "RT-LOCK-GUARD")
        assert any(
            f.symbol == "Registry.peek" and f.severity == "warning" for f in hits
        ), [f.format() for f in findings]

    def test_consistent_guard_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def peek(self):
                    with self._lock:
                        return len(self._items)
            """,
        )
        assert not _rule_hits(findings, "RT-LOCK-GUARD")

    def test_locked_helper_method_is_clean(self, tmp_path):
        """Helpers whose every call site holds the lock inherit it."""
        findings = _scan(
            tmp_path,
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, key, value):
                    with self._lock:
                        self._insert(key, value)

                def _insert(self, key, value):
                    self._items[key] = value
            """,
        )
        assert not _rule_hits(findings, "RT-LOCK-GUARD")

    def test_rebind_only_attr_read_is_exempt(self, tmp_path):
        """Regression: reference loads of rebind-only attributes are atomic
        in CPython; reading one without the lock is not a finding."""
        findings = _scan(
            tmp_path,
            """
            import threading

            class Holder:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._current = None

                def swap(self, value):
                    with self._lock:
                        self._current = value

                def snapshot(self):
                    return self._current
            """,
        )
        assert not _rule_hits(findings, "RT-LOCK-GUARD")

    def test_mutator_on_non_container_not_a_write(self, tmp_path):
        """Regression: ``self.cache.clear()`` on a custom (self-locking)
        object is a method call, not a guarded write — it must not
        establish a guard that then flags plain reads elsewhere."""
        findings = _scan(
            tmp_path,
            """
            import threading

            class Cache:
                def clear(self):
                    pass

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.cache = Cache()

                def drop(self):
                    with self._lock:
                        self.cache.clear()

                def stats(self):
                    return self.cache
            """,
        )
        assert not _rule_hits(findings, "RT-LOCK-GUARD")

    def test_mutator_on_container_is_a_write(self, tmp_path):
        """The true-positive sibling: mutator calls on builtin-container
        attributes do count, so an unlocked append fires."""
        findings = _scan(
            tmp_path,
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._pending = []

                def push(self, item):
                    with self._lock:
                        self._pending.append(item)

                def push_unlocked(self, item):
                    self._pending.append(item)
            """,
        )
        hits = _rule_hits(findings, "RT-LOCK-GUARD")
        assert any(f.symbol == "Queue.push_unlocked" for f in hits), [
            f.format() for f in findings
        ]


# ---------------------------------------------------------------------------
# RT-BLOCKING-UNDER-LOCK
# ---------------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_sleep_under_lock_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading
            import time

            class Slow:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        time.sleep(0.5)
            """,
        )
        hits = _rule_hits(findings, "RT-BLOCKING-UNDER-LOCK")
        assert any(f.symbol == "Slow.work" and f.severity == "error" for f in hits)

    def test_wait_on_held_condition_is_clean(self, tmp_path):
        """Waiting on the condition you hold is the event-layer idiom, not
        a blocking hazard: wait() releases the lock."""
        findings = _scan(
            tmp_path,
            """
            import threading

            class Gate:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._open = False

                def block_until_open(self):
                    with self._cond:
                        while not self._open:
                            self._cond.wait(0.1)
            """,
        )
        assert not _rule_hits(findings, "RT-BLOCKING-UNDER-LOCK")

    def test_acquire_of_second_lock_flagged(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Nested:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._other = threading.Lock()

                def work(self):
                    with self._lock:
                        self._other.acquire()
            """,
        )
        assert _rule_hits(findings, "RT-BLOCKING-UNDER-LOCK")


# ---------------------------------------------------------------------------
# RT-LOCK-ORDER
# ---------------------------------------------------------------------------


class TestLockOrder:
    def test_ab_ba_cycle_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Deadlocky:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """,
        )
        hits = _rule_hits(findings, "RT-LOCK-ORDER")
        assert hits, [f.format() for f in findings]
        assert "Deadlocky._a_lock" in hits[0].message
        assert "Deadlocky._b_lock" in hits[0].message

    def test_consistent_order_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            class Ordered:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
            """,
        )
        assert not _rule_hits(findings, "RT-LOCK-ORDER")


# ---------------------------------------------------------------------------
# RT-POLL-LOOP
# ---------------------------------------------------------------------------


class TestPollLoop:
    def test_sleep_poll_loop_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import time

            def wait_ready(flagbox):
                while not flagbox.ready:
                    time.sleep(0.01)
            """,
        )
        hits = _rule_hits(findings, "RT-POLL-LOOP")
        assert any(f.symbol == "wait_ready" for f in hits)

    def test_condition_wait_loop_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def wait_ready(cond, flagbox):
                with cond:
                    while not flagbox.ready:
                        cond.wait(0.1)
            """,
        )
        assert not _rule_hits(findings, "RT-POLL-LOOP")

    def test_retry_backoff_sleep_in_handler_is_clean(self, tmp_path):
        """Sleeping in an except handler is retry backoff, not polling."""
        findings = _scan(
            tmp_path,
            """
            import time

            def fetch_with_retry(fetch):
                while True:
                    try:
                        return fetch()
                    except ConnectionError:
                        time.sleep(0.1)
            """,
        )
        assert not _rule_hits(findings, "RT-POLL-LOOP")


# ---------------------------------------------------------------------------
# RT-EXCEPT-SWALLOW
# ---------------------------------------------------------------------------


class TestExceptSwallow:
    def test_silent_broad_except_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def risky(op):
                try:
                    op()
                except Exception:
                    pass
            """,
        )
        assert _rule_hits(findings, "RT-EXCEPT-SWALLOW")

    def test_handled_broad_except_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import logging

            def risky(op):
                try:
                    op()
                except Exception:
                    logging.exception("op failed")
            """,
        )
        assert not _rule_hits(findings, "RT-EXCEPT-SWALLOW")

    def test_narrow_except_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            def risky(op):
                try:
                    op()
                except KeyError:
                    pass
            """,
        )
        assert not _rule_hits(findings, "RT-EXCEPT-SWALLOW")


# ---------------------------------------------------------------------------
# RT-THREAD-LEAK
# ---------------------------------------------------------------------------


class TestThreadLeak:
    def test_non_daemon_thread_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            def start(worker):
                t = threading.Thread(target=worker)
                t.start()
                return t
            """,
        )
        hits = _rule_hits(findings, "RT-THREAD-LEAK")
        assert any(f.severity == "error" for f in hits)

    def test_daemon_thread_is_clean(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import threading

            def start(worker):
                t = threading.Thread(target=worker, daemon=True)
                t.start()
                return t
            """,
        )
        assert not _rule_hits(findings, "RT-THREAD-LEAK")


# ---------------------------------------------------------------------------
# Engine mechanics: noqa, baseline, exit codes, CLI
# ---------------------------------------------------------------------------

_BAD_SOURCE = """
import threading

def start(worker):
    return threading.Thread(target=worker)
"""

_BAD_SOURCE_NOQA = """
import threading

def start(worker):
    return threading.Thread(target=worker)  # noqa: RT-THREAD-LEAK
"""


class TestEngine:
    def test_noqa_suppresses_finding(self, tmp_path):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE_NOQA)
        report = analyze([tmp_path])
        assert not report.new
        assert report.suppressed_inline == 1

    def test_baseline_roundtrip(self, tmp_path):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        report = analyze([tmp_path])
        assert report.new and report.exit_code == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, report.findings, justification="test")
        baseline = Baseline.load(baseline_path)
        again = analyze([tmp_path], baseline=baseline)
        assert not again.new
        assert again.baselined and again.exit_code == 0

    def test_baseline_fingerprint_survives_line_shift(self, tmp_path):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        report = analyze([tmp_path])
        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, report.findings, justification="test")
        # Shift every line down: the fingerprint has no line number, so the
        # baseline still matches.
        (tmp_path / "mod.py").write_text("# a comment\n# another\n" + _BAD_SOURCE)
        again = analyze([tmp_path], baseline=Baseline.load(baseline_path))
        assert not again.new

    def test_stale_baseline_entries_reported(self, tmp_path):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        report = analyze([tmp_path])
        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, report.findings, justification="test")
        (tmp_path / "mod.py").write_text("x = 1\n")  # finding is gone
        again = analyze([tmp_path], baseline=Baseline.load(baseline_path))
        assert again.stale_baseline

    def test_syntax_error_is_a_finding(self, tmp_path):
        (tmp_path / "mod.py").write_text("def broken(:\n")
        report = analyze([tmp_path])
        assert any(f.rule_id == "RT-PARSE" for f in report.new)

    def test_cli_strict_nonzero_on_bad_fixture(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        rc = analyze_cli.main([str(tmp_path), "--strict", "--no-baseline"])
        assert rc == 1
        assert "RT-THREAD-LEAK" in capsys.readouterr().out

    def test_cli_non_strict_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        rc = analyze_cli.main([str(tmp_path), "--no-baseline"])
        assert rc == 0

    def test_cli_json_output(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        rc = analyze_cli.main([str(tmp_path), "--no-baseline", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["findings"][0]["rule"] == "RT-THREAD-LEAK"

    def test_cli_rule_selection(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)
        rc = analyze_cli.main(
            [str(tmp_path), "--strict", "--no-baseline", "--rules", "RT-POLL-LOOP"]
        )
        assert rc == 0  # thread-leak rule not selected

    def test_cli_unknown_rule_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            analyze_cli.main([str(tmp_path), "--rules", "RT-NOPE"])
        assert exc.value.code == 2

    def test_cli_list_rules(self, capsys):
        assert analyze_cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "RT-LOCK-GUARD",
            "RT-BLOCKING-UNDER-LOCK",
            "RT-LOCK-ORDER",
            "RT-POLL-LOOP",
            "RT-EXCEPT-SWALLOW",
            "RT-THREAD-LEAK",
        ):
            assert rule_id in out


# ---------------------------------------------------------------------------
# DF-NESTED-GET
# ---------------------------------------------------------------------------


class TestDFNestedGet:
    def test_get_inside_remote_function_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def inner(x):
                return x * x

            @repro.remote
            def outer(xs):
                refs = [inner.remote(x) for x in xs]
                return sum(repro.get(refs))
            """,
        )
        hits = _rule_hits(findings, "DF-NESTED-GET")
        assert any(f.symbol == "outer" for f in hits), [f.format() for f in findings]

    def test_remote_context_propagates_through_local_helper(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def helper(xs):
                refs = [work.remote(x) for x in xs]
                return repro.get(refs)

            @repro.remote
            def outer(xs):
                return helper(xs)
            """,
        )
        hits = _rule_hits(findings, "DF-NESTED-GET")
        assert any(f.symbol == "helper" for f in hits), [f.format() for f in findings]

    def test_get_on_local_put_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def stage(x):
                ref = repro.put(x)
                return repro.get(ref)
            """,
        )
        assert not _rule_hits(findings, "DF-NESTED-GET")

    def test_driver_side_get_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(xs):
                refs = [work.remote(x) for x in xs]
                return repro.get(refs)
            """,
        )
        assert not _rule_hits(findings, "DF-NESTED-GET")


# ---------------------------------------------------------------------------
# DF-GET-IN-LOOP
# ---------------------------------------------------------------------------


class TestDFGetInLoop:
    def test_per_iteration_get_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(items):
                out = []
                for x in items:
                    ref = work.remote(x)
                    out.append(repro.get(ref))
                return out
            """,
        )
        hits = _rule_hits(findings, "DF-GET-IN-LOOP")
        assert any(f.symbol == "main" for f in hits), [f.format() for f in findings]

    def test_batched_container_get_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(waves):
                results = []
                for wave in waves:
                    refs = [work.remote(x) for x in wave]
                    results.extend(repro.get(refs))
                return results
            """,
        )
        assert not _rule_hits(findings, "DF-GET-IN-LOOP")

    def test_loop_carried_dependency_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def step(v):
                return v + 1

            def main(rounds):
                state = step.remote(0)
                for _ in range(rounds):
                    value = repro.get(state)
                    state = step.remote(value * 2)
                return repro.get(state)
            """,
        )
        assert not _rule_hits(findings, "DF-GET-IN-LOOP")

    def test_fresh_get_in_helper_called_from_loop_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def fetch(x):
                ref = work.remote(x)
                return repro.get(ref)

            def main(items):
                out = []
                for x in items:
                    out.append(fetch(x))
                return out
            """,
        )
        hits = _rule_hits(findings, "DF-GET-IN-LOOP")
        assert any(
            f.symbol == "fetch" and "'main'" in f.message for f in hits
        ), [f.format() for f in findings]

    def test_helper_get_outside_any_loop_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def fetch(x):
                ref = work.remote(x)
                return repro.get(ref)

            def main(x):
                return fetch(x)
            """,
        )
        assert not _rule_hits(findings, "DF-GET-IN-LOOP")


# ---------------------------------------------------------------------------
# DF-UNCONSUMED-REF
# ---------------------------------------------------------------------------


class TestDFUnconsumedRef:
    def test_discarded_ref_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(items):
                for x in items:
                    work.remote(x)
            """,
        )
        hits = _rule_hits(findings, "DF-UNCONSUMED-REF")
        assert any("discarded" in f.message for f in hits), [
            f.format() for f in findings
        ]

    def test_bound_but_never_consumed_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(x):
                ref = work.remote(x)
                return 0
            """,
        )
        hits = _rule_hits(findings, "DF-UNCONSUMED-REF")
        assert any("'ref'" in f.message for f in hits), [
            f.format() for f in findings
        ]

    def test_returned_refs_are_consumed(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def make(items):
                refs = [work.remote(x) for x in items]
                return refs
            """,
        )
        assert not _rule_hits(findings, "DF-UNCONSUMED-REF")

    def test_batched_drain_is_consumed(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(items):
                refs = []
                for x in items:
                    refs.append(work.remote(x))
                repro.get(refs)
            """,
        )
        assert not _rule_hits(findings, "DF-UNCONSUMED-REF")


# ---------------------------------------------------------------------------
# DF-LARGE-CAPTURE
# ---------------------------------------------------------------------------


class TestDFLargeCapture:
    def test_large_name_fanned_out_by_value_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(table, i):
                return table[i]

            def main():
                table = list(range(50_000))
                refs = [work.remote(table, i) for i in range(8)]
                return repro.get(refs)
            """,
        )
        hits = _rule_hits(findings, "DF-LARGE-CAPTURE")
        assert any("'table'" in f.message for f in hits), [
            f.format() for f in findings
        ]

    def test_worker_capturing_module_large_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            TABLE = list(range(100_000))

            @repro.remote
            def lookup(i):
                return TABLE[i]
            """,
        )
        hits = _rule_hits(findings, "DF-LARGE-CAPTURE")
        assert any("'TABLE'" in f.message for f in hits), [
            f.format() for f in findings
        ]

    def test_put_once_pass_ref_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(table_ref, i):
                return repro.get(table_ref)[i]  # noqa: DF-NESTED-GET

            def main():
                table_ref = repro.put(list(range(50_000)))
                refs = [work.remote(table_ref, i) for i in range(8)]
                return repro.get(refs)
            """,
        )
        assert not _rule_hits(findings, "DF-LARGE-CAPTURE")

    def test_single_unlooped_use_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(table):
                return sum(table)

            def main():
                table = list(range(50_000))
                return repro.get(work.remote(table))
            """,
        )
        assert not _rule_hits(findings, "DF-LARGE-CAPTURE")


# ---------------------------------------------------------------------------
# DF-UNBOUNDED-FANOUT
# ---------------------------------------------------------------------------


class TestDFUnboundedFanout:
    def test_while_loop_without_wait_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main():
                i = 0
                while i < 1000:
                    work.remote(i)
                    i += 1
            """,
        )
        hits = _rule_hits(findings, "DF-UNBOUNDED-FANOUT")
        assert any("'work'" in f.message for f in hits), [
            f.format() for f in findings
        ]

    def test_wait_window_is_backpressure(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main():
                pending = []
                i = 0
                while i < 1000:
                    pending.append(work.remote(i))
                    if len(pending) >= 8:
                        _ready, pending = repro.wait(pending, num_returns=1)
                    i += 1
                repro.get(pending)
            """,
        )
        assert not _rule_hits(findings, "DF-UNBOUNDED-FANOUT")

    def test_bounded_for_loop_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            def work(x):
                return x

            def main(items):
                refs = []
                for x in items:
                    refs.append(work.remote(x))
                return repro.get(refs)
            """,
        )
        assert not _rule_hits(findings, "DF-UNBOUNDED-FANOUT")


# ---------------------------------------------------------------------------
# DF-ACTOR-CREATE-IN-LOOP
# ---------------------------------------------------------------------------


class TestDFActorCreateInLoop:
    def test_leaked_per_iteration_actor_fires(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            class Worker:
                def ping(self):
                    return 1

            def main(n):
                out = []
                for _ in range(n):
                    w = Worker.remote()
                    ref = w.ping.remote()
                    out.append(repro.get(ref))
                return out
            """,
        )
        hits = _rule_hits(findings, "DF-ACTOR-CREATE-IN-LOOP")
        assert hits and hits[0].severity == "error", [
            f.format() for f in findings
        ]

    def test_comprehension_pool_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            class Worker:
                def ping(self):
                    return 1

            def main(n):
                pool = [Worker.remote() for _ in range(n)]
                return repro.get([w.ping.remote() for w in pool])
            """,
        )
        assert not _rule_hits(findings, "DF-ACTOR-CREATE-IN-LOOP")

    def test_killed_actor_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            class Worker:
                def ping(self):
                    return 1

            def main(n):
                out = []
                for _ in range(n):
                    w = Worker.remote()
                    ref = w.ping.remote()
                    out.append(repro.get(ref))
                    repro.kill(w)
                return out
            """,
        )
        assert not _rule_hits(findings, "DF-ACTOR-CREATE-IN-LOOP")

    def test_retained_in_pool_is_exempt(self, tmp_path):
        findings = _scan(
            tmp_path,
            """
            import repro

            @repro.remote
            class Worker:
                def ping(self):
                    return 1

            def main(n):
                pool = []
                for _ in range(n):
                    pool.append(Worker.remote())
                return pool
            """,
        )
        assert not _rule_hits(findings, "DF-ACTOR-CREATE-IN-LOOP")


# ---------------------------------------------------------------------------
# Engine extensions: rule globs, SARIF, parallel parse
# ---------------------------------------------------------------------------


_DF_BAD_SOURCE = textwrap.dedent(
    """
    import repro

    @repro.remote
    def work(x):
        return x

    def main(items):
        out = []
        for x in items:
            ref = work.remote(x)
            out.append(repro.get(ref))
        return out
    """
)


class TestEngineExtensions:
    def test_cli_rule_glob_selects_family(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_DF_BAD_SOURCE)
        rc = analyze_cli.main(
            [str(tmp_path), "--strict", "--no-baseline", "--rules", "DF-*"]
        )
        assert rc == 1
        assert "DF-GET-IN-LOOP" in capsys.readouterr().out

    def test_cli_rule_glob_excludes_other_family(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_BAD_SOURCE)  # RT-THREAD-LEAK only
        rc = analyze_cli.main(
            [str(tmp_path), "--strict", "--no-baseline", "--rules", "DF-*"]
        )
        assert rc == 0

    def test_cli_unknown_glob_is_usage_error(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(SystemExit) as exc:
            analyze_cli.main([str(tmp_path), "--rules", "ZZ-*"])
        assert exc.value.code == 2

    def test_sarif_output_schema(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_DF_BAD_SOURCE)
        sarif_path = tmp_path / "out.sarif"
        rc = analyze_cli.main(
            [str(tmp_path), "--no-baseline", "--sarif", str(sarif_path)]
        )
        assert rc == 0
        payload = json.loads(sarif_path.read_text())
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-analyze"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "DF-GET-IN-LOOP" in rule_ids
        result = next(
            r for r in run["results"] if r["ruleId"] == "DF-GET-IN-LOOP"
        )
        assert result["level"] == "warning"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("mod.py")
        assert location["region"]["startLine"] > 0
        assert "reproAnalyzeFingerprint/v1" in result["partialFingerprints"]
        assert result["fixes"][0]["description"]["text"]

    def test_sarif_marks_baselined_as_suppressed(self, tmp_path):
        (tmp_path / "mod.py").write_text(_DF_BAD_SOURCE)
        report = analyze([tmp_path])
        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, report.findings, justification="test")
        again = analyze([tmp_path], baseline=Baseline.load(baseline_path))
        payload = sarif_payload(again)
        suppressed = [
            r
            for r in payload["runs"][0]["results"]
            if any(s["kind"] == "external" for s in r.get("suppressions", []))
        ]
        assert suppressed

    def test_parallel_parse_matches_serial(self, tmp_path):
        (tmp_path / "a.py").write_text(_DF_BAD_SOURCE)
        (tmp_path / "b.py").write_text(_BAD_SOURCE)
        (tmp_path / "c.py").write_text("x = 1\n")
        serial = analyze([tmp_path], jobs=1)
        threaded = analyze([tmp_path], jobs=4)
        assert sorted(f.fingerprint() for f in serial.findings) == sorted(
            f.fingerprint() for f in threaded.findings
        )

    def test_fail_stale_gates_stale_entries(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(_DF_BAD_SOURCE)
        report = analyze([tmp_path])
        baseline_path = tmp_path / "baseline.json"
        Baseline.save(baseline_path, report.findings, justification="test")
        (tmp_path / "mod.py").write_text("x = 1\n")  # findings are gone
        args = [str(tmp_path), "--strict", "--baseline", str(baseline_path)]
        assert analyze_cli.main(args) == 0
        capsys.readouterr()
        assert analyze_cli.main(args + ["--fail-stale"]) == 1


class TestRepoIsClean:
    def test_strict_scan_of_the_repo_passes(self):
        """The acceptance gate: the shipped tree has no unbaselined
        findings, and the baseline carries at most 10 justified entries."""
        baseline = Baseline.load(analyze_cli.default_baseline_path())
        assert len(baseline.entries) <= 10
        for entry in baseline.entries:
            assert entry.get("justification"), entry
        report = analyze(
            analyze_cli.default_scan_paths(),
            baseline=baseline,
            base=analyze_cli.default_scan_base(),
        )
        assert not report.new, [f.format() for f in report.new]
        assert not report.stale_baseline
