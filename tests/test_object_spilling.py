"""Disk spilling: LRU eviction to disk with transparent restore."""

import os

import pytest

import repro
from repro.common.ids import NodeID, ObjectID
from repro.common.serialization import deserialize, serialize
from repro.core.object_store import LocalObjectStore


def make_store(tmp_path, capacity=3500):
    return LocalObjectStore(
        NodeID.from_seed("n"),
        capacity_bytes=capacity,
        spill_directory=str(tmp_path / "spill"),
    )


def oid(name):
    return ObjectID.from_seed(name)


def blob(n, fill=b"x"):
    return serialize(fill * n)


class TestStoreSpilling:
    def test_eviction_spills_instead_of_dropping(self, tmp_path):
        store = make_store(tmp_path)
        store.put(oid("a"), blob(1000))
        store.put(oid("b"), blob(1000))
        store.put(oid("c"), blob(1000))
        store.put(oid("d"), blob(1000))  # evicts "a" → disk
        assert store.spill_count == 1
        assert store.is_spilled(oid("a"))
        assert store.contains(oid("a"))  # still addressable

    def test_get_restores_spilled_object(self, tmp_path):
        store = make_store(tmp_path)
        original = blob(1000, b"z")
        store.put(oid("a"), original)
        for name in ("b", "c", "d"):
            store.put(oid(name), blob(1000))
        assert store.is_spilled(oid("a"))
        value = store.get(oid("a"))
        assert deserialize(value) == b"z" * 1000
        assert not store.is_spilled(oid("a"))
        assert store.restore_count == 1

    def test_restore_may_spill_others(self, tmp_path):
        store = make_store(tmp_path)
        for name in ("a", "b", "c", "d"):
            store.put(oid(name), blob(1000))
        spills_before = store.spill_count
        store.get(oid("a"))  # restoring "a" must push something else out
        assert store.spill_count > spills_before

    def test_spill_files_on_disk_and_cleaned(self, tmp_path):
        store = make_store(tmp_path)
        for name in ("a", "b", "c", "d"):
            store.put(oid(name), blob(1000))
        spill_dir = tmp_path / "spill"
        assert len(os.listdir(spill_dir)) == 1
        store.delete(oid("a"))
        assert os.listdir(spill_dir) == []

    def test_availability_event_stays_set_for_spilled(self, tmp_path):
        store = make_store(tmp_path)
        event = store.availability_event(oid("a"))
        store.put(oid("a"), blob(1000))
        for name in ("b", "c", "d"):
            store.put(oid(name), blob(1000))
        assert store.is_spilled(oid("a"))
        assert event.is_set()  # spilled objects are still available

    def test_duplicate_put_of_spilled_object_is_noop(self, tmp_path):
        store = make_store(tmp_path)
        for name in ("a", "b", "c", "d"):
            store.put(oid(name), blob(1000))
        assert not store.put(oid("a"), blob(1000, b"q"))

    def test_drop_all_removes_spill_files(self, tmp_path):
        store = make_store(tmp_path)
        for name in ("a", "b", "c", "d"):
            store.put(oid(name), blob(1000))
        lost = store.drop_all()
        assert oid("a") in lost  # the spilled one is lost too
        assert os.listdir(tmp_path / "spill") == []


class TestRuntimeSpilling:
    def test_no_reconstruction_needed_with_spilling(self, tmp_path):
        """With disk spilling the Figure-11a replay path is never taken
        for eviction — objects come back from disk."""
        rt = repro.init(
            num_nodes=1,
            num_cpus_per_node=2,
            object_store_capacity_bytes=45_000,
            object_spill_directory=str(tmp_path / "spill"),
        )
        try:

            @repro.remote
            def block(i):
                return bytes([i % 256]) * 10_000

            refs = [block.remote(i) for i in range(10)]
            for ref in refs:
                repro.get(ref, timeout=20)
            store = rt.nodes()[0].store
            assert store.spill_count > 0
            # Everything still retrievable — from disk, not via replay.
            before = rt.reconstruction.reconstructed_tasks
            for i, ref in enumerate(refs):
                assert repro.get(ref, timeout=20)[0] == i % 256
            assert rt.reconstruction.reconstructed_tasks == before
        finally:
            repro.shutdown()

    def test_locations_not_retracted_for_spilled(self, tmp_path):
        rt = repro.init(
            num_nodes=1,
            object_store_capacity_bytes=30_000,
            object_spill_directory=str(tmp_path / "spill"),
        )
        try:
            refs = [repro.put(bytes([i]) * 10_000) for i in range(5)]
            store = rt.nodes()[0].store
            assert store.spill_count > 0
            for ref in refs:
                # Every object still has its location in the GCS.
                assert rt.gcs.get_object_locations(ref.object_id)
                assert repro.get(ref, timeout=10)[0:1] == bytes([refs.index(ref)])
        finally:
            repro.shutdown()
