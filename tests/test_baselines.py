"""Baseline system models: BSP, centralized scheduler, ES/PPO/SGD scaling."""

import math
import random

import pytest
from hypothesis import given, strategies as st

from repro.baselines import (
    CentralizedSchedulerModel,
    ClipperLikeServer,
    async_makespan,
    bsp_makespan,
    distributed_tf_images_per_second,
    horovod_images_per_second,
    mpi_ppo_time_to_solve,
    ray_es_time_to_solve,
    ray_ppo_time_to_solve,
    ray_sgd_images_per_second,
    reference_es_time_to_solve,
    simulate_bsp_rounds,
)
from repro.baselines.bsp import bsp_efficiency_ratio


class TestBSP:
    def test_bsp_rounds_sum_of_maxima(self):
        durations = [1, 2, 3, 4, 5, 6]
        assert bsp_makespan(durations, num_workers=3) == 3 + 6

    def test_barrier_cost_added_per_round(self):
        durations = [1.0] * 6
        assert bsp_makespan(durations, 3, barrier_cost=0.5) == pytest.approx(3.0)

    def test_async_packs_greedily(self):
        # 3,3,1,1,1,1 on two workers: async packs to 5; BSP takes 3+1+1... no:
        # rounds [3,3],[1,1],[1,1] = 3+1+1 = 5 too; use a skewed case.
        durations = [4, 1, 1, 1, 1]
        assert async_makespan(durations, 2) == 4.0
        assert bsp_makespan(durations, 2) == 4 + 1 + 1

    def test_async_per_task_overhead(self):
        assert async_makespan([1.0] * 4, 2, per_task_overhead=0.5) == pytest.approx(3.0)

    def test_simulate_bsp_rounds(self):
        assert simulate_bsp_rounds([[1, 2], [3]], barrier_cost=1) == 2 + 1 + 3 + 1

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            bsp_makespan([1], 0)
        with pytest.raises(ValueError):
            async_makespan([1], 0)

    @given(
        st.lists(st.floats(min_value=0.01, max_value=10), min_size=1, max_size=64),
        st.integers(min_value=1, max_value=16),
    )
    def test_bsp_never_faster_than_async(self, durations, workers):
        """The structural claim behind Table 4."""
        assert (
            bsp_makespan(durations, workers)
            >= async_makespan(durations, workers) - 1e-9
        )

    def test_heterogeneity_widens_the_gap(self):
        """Table 4: uniform tasks ≈ equal; heterogeneous tasks favour async."""
        rng = random.Random(0)
        uniform = [1.0] * 256
        skewed = [rng.uniform(0.01, 2.0) for _ in range(256)]
        assert bsp_efficiency_ratio(uniform, 64) == pytest.approx(1.0)
        assert bsp_efficiency_ratio(skewed, 64) > 1.3


class TestCentralizedScheduler:
    def test_throughput_cap(self):
        model = CentralizedSchedulerModel(service_time=1 / 1000)
        assert model.max_tasks_per_second == pytest.approx(1000)

    def test_dispatch_bound_dominates_many_tiny_tasks(self):
        model = CentralizedSchedulerModel(service_time=1 / 1000, decision_latency=0)
        tiny = [1e-6] * 10_000
        assert model.makespan(tiny, num_cores=1024) >= 10.0

    def test_compute_bound_dominates_few_long_tasks(self):
        model = CentralizedSchedulerModel()
        assert model.makespan([10.0], num_cores=4) >= 10.0

    def test_allreduce_round_penalty(self):
        model = CentralizedSchedulerModel(service_time=1 / 3000, decision_latency=0)
        # The Related-Work arithmetic: 16 tasks ≈ 5 ms of scheduling delay.
        assert model.allreduce_round_penalty(16) == pytest.approx(16 / 3000)

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            CentralizedSchedulerModel().makespan([1.0], 0)


class TestESModels:
    def test_reference_fails_beyond_saturation(self):
        """Fig 14a: the reference system fails at ≥2048 cores."""
        assert math.isfinite(reference_es_time_to_solve(1024))
        assert math.isinf(reference_es_time_to_solve(2048))
        assert math.isinf(reference_es_time_to_solve(8192))

    def test_ray_scales_to_8192(self):
        t8192 = ray_es_time_to_solve(8192)
        assert math.isfinite(t8192)
        assert t8192 / 60 == pytest.approx(3.7, rel=0.2)  # paper: 3.7 min

    def test_doubling_speedup_about_1_6(self):
        """Paper: each doubling of cores ⇒ ~1.6× faster (sub-linear)."""
        ratios = [
            ray_es_time_to_solve(c) / ray_es_time_to_solve(2 * c)
            for c in (256, 512, 1024)
        ]
        for ratio in ratios:
            assert 1.2 <= ratio <= 2.0

    def test_ray_at_least_matches_reference_where_both_run(self):
        for cores in (256, 512, 1024):
            assert ray_es_time_to_solve(cores) <= reference_es_time_to_solve(cores) * 1.05

    def test_flat_ray_also_saturates(self):
        assert math.isinf(ray_es_time_to_solve(8192, hierarchical=False))

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            reference_es_time_to_solve(0)


class TestPPOModels:
    @pytest.mark.parametrize("cpus,gpus", [(8, 1), (64, 8), (512, 64)])
    def test_ray_beats_mpi_at_every_config(self, cpus, gpus):
        """Fig 14b: Ray wins at each paper configuration."""
        assert ray_ppo_time_to_solve(cpus, gpus) < mpi_ppo_time_to_solve(cpus, gpus)

    def test_ray_needs_at_most_8_gpus(self):
        assert ray_ppo_time_to_solve(512, 64) == pytest.approx(
            ray_ppo_time_to_solve(512, 8)
        )

    def test_scaling_reduces_time(self):
        assert mpi_ppo_time_to_solve(512, 64) < mpi_ppo_time_to_solve(8, 1)
        assert ray_ppo_time_to_solve(512, 8) < ray_ppo_time_to_solve(8, 1)


class TestSGDModels:
    @pytest.mark.parametrize("gpus", [4, 8, 16, 32, 64])
    def test_ray_within_10_percent_of_distributed_tf(self, gpus):
        """Fig 13: Ray matches Horovod, within 10% of Distributed TF."""
        ray = ray_sgd_images_per_second(gpus)
        dtf = distributed_tf_images_per_second(gpus)
        hvd = horovod_images_per_second(gpus)
        assert ray >= 0.9 * dtf
        assert abs(ray - hvd) / hvd < 0.1

    def test_near_linear_scaling(self):
        assert ray_sgd_images_per_second(64) > 10 * ray_sgd_images_per_second(4)

    def test_unpipelined_ablation_is_slower(self):
        assert ray_sgd_images_per_second(64, pipelined=False) < ray_sgd_images_per_second(64)


class TestClipperBaseline:
    def test_rest_roundtrip_correctness(self):
        server = ClipperLikeServer(lambda states: [float(len(s)) for s in states],
                                   http_overhead=0.0)
        out = server.query([b"ab", b"xyz"])
        assert out == [2.0, 3.0]
        assert server.requests == 1

    def test_encode_decode_identity(self):
        payload = ClipperLikeServer._encode_request([b"\x00\xff" * 10])
        assert ClipperLikeServer._decode_request(payload) == [b"\x00\xff" * 10]

    def test_large_inputs_slower_than_small(self):
        server = ClipperLikeServer(lambda s: [0.0] * len(s), http_overhead=0.0)
        small = server.measure_throughput([b"x" * 4096] * 64, duration_seconds=0.2)
        large = server.measure_throughput([b"x" * 102_400] * 64, duration_seconds=0.2)
        assert large < small
