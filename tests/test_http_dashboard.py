"""The HTTP dashboard (Figure 5's "Web UI" riding on the GCS)."""

import json
import urllib.request

import pytest

import repro
from repro.tools.http_dashboard import DashboardServer, _json_dumps


def strict_loads(body):
    """json.loads that rejects the bare Infinity/NaN tokens Python's
    encoder emits by default — the strictness real JSON parsers have."""

    def reject(token):
        raise ValueError(f"non-JSON constant in body: {token}")

    return json.loads(body, parse_constant=reject)


@repro.remote
def work(x):
    return x * 2


@pytest.fixture
def dashboard(runtime):
    server = DashboardServer(runtime).start()
    try:
        yield server
    finally:
        server.stop()


def fetch(server, path):
    with urllib.request.urlopen(server.address + path, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestDashboard:
    def test_index_renders_html(self, dashboard):
        status, body = fetch(dashboard, "/")
        assert status == 200
        assert "<html>" in body
        assert "repro cluster" in body

    def test_snapshot_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(4)])
        status, body = fetch(dashboard, "/snapshot")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["live_nodes"] == 2
        assert snapshot["tasks_by_status"].get("finished", 0) >= 4

    def test_profile_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(3)])
        _status, body = fetch(dashboard, "/profile")
        profile = json.loads(body)
        assert profile["work"]["calls"] == 3
        assert profile["work"]["failures"] == 0

    def test_trace_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/trace")
        trace = json.loads(body)
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_tasks_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/tasks")
        assert json.loads(body).get("finished", 0) >= 1

    def test_metrics_endpoint_is_prometheus_text(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(3)])
        status, body = fetch(dashboard, "/metrics")
        assert status == 200
        assert "# TYPE tasks_submitted_total counter" in body
        assert "# TYPE scheduler_dispatch_seconds histogram" in body
        # Exposition shape: every non-comment line is "name{labels} value".
        for line in body.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)  # must parse

    def test_metrics_json_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/metrics.json")
        flat = strict_loads(body)
        assert flat["tasks_submitted_total"]["type"] == "counter"
        assert flat["wait_latency_seconds"]["type"] == "histogram"

    def test_critical_path_endpoint(self, runtime, dashboard):
        repro.get(work.remote(work.remote(1)))
        _status, body = fetch(dashboard, "/critical_path")
        report = strict_loads(body)
        assert len(report["steps"]) == 2
        assert report["coverage"] >= 0.9
        assert report["dominant_phase"] in ("scheduling", "transfer", "execution")

    def test_profile_json_valid_with_zero_call_function(self, runtime, dashboard):
        """Regression: FunctionProfile.min_seconds defaults to inf; the
        profile endpoint must still emit strictly valid JSON."""
        from repro.tools import profiler

        class InfProfiler(profiler.Profiler):
            def profiles(self):
                return {"ghost": profiler.FunctionProfile("ghost")}

        real = profiler.Profiler
        profiler.Profiler = InfProfiler
        try:
            from repro.tools import http_dashboard

            http_dashboard.Profiler = InfProfiler
            _status, body = fetch(dashboard, "/profile")
            profile = strict_loads(body)
            assert profile["ghost"]["min_seconds"] is None
        finally:
            profiler.Profiler = real
            http_dashboard.Profiler = real

    def test_all_json_endpoints_are_strict_json(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(2)])
        for path in (
            "/snapshot",
            "/profile",
            "/trace",
            "/timeline_trace",
            "/tasks",
            "/waits",
            "/metrics.json",
            "/critical_path",
            "/nodes",
            "/cluster_load",
            "/events",
        ):
            _status, body = fetch(dashboard, path)
            strict_loads(body)

    def test_sanitizer_maps_nonfinite_to_none(self):
        raw = {
            "inf": float("inf"),
            "ninf": float("-inf"),
            "nan": float("nan"),
            "nested": [1.0, {"x": float("inf")}],
        }
        out = strict_loads(_json_dumps(raw))
        assert out["inf"] is None
        assert out["ninf"] is None
        assert out["nan"] is None
        assert out["nested"] == [1.0, {"x": None}]

    def test_unknown_path_404(self, dashboard):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(dashboard, "/nope")
        assert info.value.code == 404

    def test_stop_is_clean(self, runtime):
        server = DashboardServer(runtime).start()
        server.stop()  # no exception; port released

    def test_index_links_every_endpoint(self, dashboard):
        from repro.tools.http_dashboard import ENDPOINTS

        _status, body = fetch(dashboard, "/")
        for path in ENDPOINTS:
            assert f'href="{path}"' in body, path


class TestNodesEndpoint:
    def test_nodes_fallback_without_reporters(self, runtime, dashboard):
        """Reporters are off by default; /nodes must still answer from
        Runtime.nodes_info()."""
        _status, body = fetch(dashboard, "/nodes")
        summary = strict_loads(body)
        assert summary["source"] == "runtime"
        assert summary["num_nodes"] == 2
        assert summary["num_alive"] == 2
        for node in summary["nodes"]:
            assert node["alive"] is True
            assert "resources" in node
            assert "report" not in node

    def test_nodes_with_reporters_carries_rows(self):
        rt = repro.init(num_nodes=2, reporters_enabled=True)
        server = DashboardServer(rt).start()
        try:
            _status, body = fetch(server, "/nodes")
            summary = strict_loads(body)
            assert summary["source"] == "reporters"
            for node in summary["nodes"]:
                assert node["report"]["node_id"] == node["node_id"]
                assert "backlog" in node["report"]
        finally:
            server.stop()
            repro.shutdown()

    def test_node_detail_by_prefix(self, runtime, dashboard):
        node_hex = runtime.nodes()[0].node_id.hex()
        _status, body = fetch(dashboard, f"/nodes/{node_hex[:8]}")
        assert strict_loads(body)["node_id"] == node_hex

    def test_node_detail_unknown_404(self, dashboard):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(dashboard, "/nodes/ffffffffffff")
        assert info.value.code == 404

    def test_cluster_load_shape(self, runtime, dashboard):
        _status, body = fetch(dashboard, "/cluster_load")
        load = strict_loads(body)
        assert load["num_live_nodes"] == 2
        assert load["backlog_per_node"] >= 0.0


class TestEventsEndpoint:
    def test_events_are_seq_ordered(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(4)])
        _status, body = fetch(dashboard, "/events")
        page = strict_loads(body)
        seqs = [e["seq"] for e in page["events"]]
        assert seqs == sorted(seqs)
        assert page["next_cursor"] == (seqs[-1] if seqs else 0)
        assert "task_finished" in page["categories"]

    def test_cursor_pagination_covers_the_stream_without_overlap(
        self, runtime, dashboard
    ):
        repro.get([work.remote(i) for i in range(4)])
        _status, body = fetch(dashboard, "/events")
        full = strict_loads(body)["events"]
        assert full
        cursor, paged = 0, []
        for _ in range(1000):
            _status, body = fetch(dashboard, f"/events?since={cursor}&limit=3")
            page = strict_loads(body)
            if not page["events"]:
                break
            paged.extend(page["events"])
            cursor = page["next_cursor"]
        assert [e["seq"] for e in paged] == [e["seq"] for e in full]

    def test_cursor_returns_only_new_events(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/events")
        cursor = strict_loads(body)["next_cursor"]
        _status, body = fetch(dashboard, f"/events?since={cursor}")
        assert strict_loads(body)["events"] == []
        repro.get(work.remote(2))
        _status, body = fetch(dashboard, f"/events?since={cursor}")
        fresh = strict_loads(body)["events"]
        assert fresh and all(e["seq"] > cursor for e in fresh)

    def test_category_filter(self, runtime, dashboard):
        repro.get(work.remote(1))
        runtime.kill_node(runtime.nodes()[1].node_id)
        _status, body = fetch(dashboard, "/events?category=node_death")
        page = strict_loads(body)
        assert page["events"]
        assert all(e["category"] == "node_death" for e in page["events"])

    def test_node_lifecycle_interleaves_with_task_events(
        self, runtime, dashboard
    ):
        repro.get(work.remote(1))
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        runtime.restart_node(victim.node_id)
        _status, body = fetch(dashboard, "/events")
        events = strict_loads(body)["events"]
        categories = [e["category"] for e in events]
        death, restart = categories.index("node_death"), categories.index(
            "node_restart"
        )
        assert death < restart
        assert "task_finished" in categories


class TestLifecycleHygiene:
    def test_double_stop_is_idempotent(self, runtime):
        server = DashboardServer(runtime).start()
        server.stop()
        server.stop()  # regression: second server_close used to be a hazard

    def test_stop_without_start_does_not_hang(self, runtime):
        DashboardServer(runtime).stop()

    def test_runtime_shutdown_stops_registered_server(self):
        rt = repro.init(num_nodes=1)
        server = rt.register_ops(DashboardServer(rt).start())
        repro.shutdown()
        # The serving thread is down and a second stop stays a no-op.
        assert server._thread is None or not server._thread.is_alive()
        server.stop()
