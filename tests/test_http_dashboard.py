"""The HTTP dashboard (Figure 5's "Web UI" riding on the GCS)."""

import json
import urllib.request

import pytest

import repro
from repro.tools.http_dashboard import DashboardServer


@repro.remote
def work(x):
    return x * 2


@pytest.fixture
def dashboard(runtime):
    server = DashboardServer(runtime).start()
    try:
        yield server
    finally:
        server.stop()


def fetch(server, path):
    with urllib.request.urlopen(server.address + path, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestDashboard:
    def test_index_renders_html(self, dashboard):
        status, body = fetch(dashboard, "/")
        assert status == 200
        assert "<html>" in body
        assert "repro cluster" in body

    def test_snapshot_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(4)])
        status, body = fetch(dashboard, "/snapshot")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["live_nodes"] == 2
        assert snapshot["tasks_by_status"].get("finished", 0) >= 4

    def test_profile_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(3)])
        _status, body = fetch(dashboard, "/profile")
        profile = json.loads(body)
        assert profile["work"]["calls"] == 3
        assert profile["work"]["failures"] == 0

    def test_trace_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/trace")
        trace = json.loads(body)
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_tasks_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/tasks")
        assert json.loads(body).get("finished", 0) >= 1

    def test_unknown_path_404(self, dashboard):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(dashboard, "/nope")
        assert info.value.code == 404

    def test_stop_is_clean(self, runtime):
        server = DashboardServer(runtime).start()
        server.stop()  # no exception; port released
