"""The HTTP dashboard (Figure 5's "Web UI" riding on the GCS)."""

import json
import urllib.request

import pytest

import repro
from repro.tools.http_dashboard import DashboardServer, _json_dumps


def strict_loads(body):
    """json.loads that rejects the bare Infinity/NaN tokens Python's
    encoder emits by default — the strictness real JSON parsers have."""

    def reject(token):
        raise ValueError(f"non-JSON constant in body: {token}")

    return json.loads(body, parse_constant=reject)


@repro.remote
def work(x):
    return x * 2


@pytest.fixture
def dashboard(runtime):
    server = DashboardServer(runtime).start()
    try:
        yield server
    finally:
        server.stop()


def fetch(server, path):
    with urllib.request.urlopen(server.address + path, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestDashboard:
    def test_index_renders_html(self, dashboard):
        status, body = fetch(dashboard, "/")
        assert status == 200
        assert "<html>" in body
        assert "repro cluster" in body

    def test_snapshot_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(4)])
        status, body = fetch(dashboard, "/snapshot")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["live_nodes"] == 2
        assert snapshot["tasks_by_status"].get("finished", 0) >= 4

    def test_profile_endpoint(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(3)])
        _status, body = fetch(dashboard, "/profile")
        profile = json.loads(body)
        assert profile["work"]["calls"] == 3
        assert profile["work"]["failures"] == 0

    def test_trace_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/trace")
        trace = json.loads(body)
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_tasks_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/tasks")
        assert json.loads(body).get("finished", 0) >= 1

    def test_metrics_endpoint_is_prometheus_text(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(3)])
        status, body = fetch(dashboard, "/metrics")
        assert status == 200
        assert "# TYPE tasks_submitted_total counter" in body
        assert "# TYPE scheduler_dispatch_seconds histogram" in body
        # Exposition shape: every non-comment line is "name{labels} value".
        for line in body.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)  # must parse

    def test_metrics_json_endpoint(self, runtime, dashboard):
        repro.get(work.remote(1))
        _status, body = fetch(dashboard, "/metrics.json")
        flat = strict_loads(body)
        assert flat["tasks_submitted_total"]["type"] == "counter"
        assert flat["wait_latency_seconds"]["type"] == "histogram"

    def test_critical_path_endpoint(self, runtime, dashboard):
        repro.get(work.remote(work.remote(1)))
        _status, body = fetch(dashboard, "/critical_path")
        report = strict_loads(body)
        assert len(report["steps"]) == 2
        assert report["coverage"] >= 0.9
        assert report["dominant_phase"] in ("scheduling", "transfer", "execution")

    def test_profile_json_valid_with_zero_call_function(self, runtime, dashboard):
        """Regression: FunctionProfile.min_seconds defaults to inf; the
        profile endpoint must still emit strictly valid JSON."""
        from repro.tools import profiler

        class InfProfiler(profiler.Profiler):
            def profiles(self):
                return {"ghost": profiler.FunctionProfile("ghost")}

        real = profiler.Profiler
        profiler.Profiler = InfProfiler
        try:
            from repro.tools import http_dashboard

            http_dashboard.Profiler = InfProfiler
            _status, body = fetch(dashboard, "/profile")
            profile = strict_loads(body)
            assert profile["ghost"]["min_seconds"] is None
        finally:
            profiler.Profiler = real
            http_dashboard.Profiler = real

    def test_all_json_endpoints_are_strict_json(self, runtime, dashboard):
        repro.get([work.remote(i) for i in range(2)])
        for path in (
            "/snapshot",
            "/profile",
            "/trace",
            "/tasks",
            "/waits",
            "/metrics.json",
            "/critical_path",
        ):
            _status, body = fetch(dashboard, path)
            strict_loads(body)

    def test_sanitizer_maps_nonfinite_to_none(self):
        raw = {
            "inf": float("inf"),
            "ninf": float("-inf"),
            "nan": float("nan"),
            "nested": [1.0, {"x": float("inf")}],
        }
        out = strict_loads(_json_dumps(raw))
        assert out["inf"] is None
        assert out["ninf"] is None
        assert out["nan"] is None
        assert out["nested"] == [1.0, {"x": None}]

    def test_unknown_path_404(self, dashboard):
        with pytest.raises(urllib.error.HTTPError) as info:
            fetch(dashboard, "/nope")
        assert info.value.code == 404

    def test_stop_is_clean(self, runtime):
        server = DashboardServer(runtime).start()
        server.stop()  # no exception; port released
