"""Public API: remote functions, futures, get/put/wait (paper Table 1)."""

import time

import numpy as np
import pytest

import repro
from repro.common.errors import GetTimeoutError


@repro.remote
def add(a, b):
    return a + b


@repro.remote
def identity(x):
    return x


@repro.remote(num_returns=3)
def three():
    return 1, 2, 3


@repro.remote
def failing():
    raise RuntimeError("intentional")


@repro.remote
def spawn_children(n):
    """Nested remote functions (Section 3.1)."""
    refs = [add.remote(i, i) for i in range(n)]
    return sum(repro.get(refs))


@repro.remote
def slow(seconds, value):
    time.sleep(seconds)
    return value


class TestRemoteFunctions:
    def test_remote_returns_future_immediately(self, runtime):
        ref = slow.remote(0.2, 1)
        assert isinstance(ref, repro.ObjectRef)  # non-blocking

    def test_get_single(self, runtime):
        assert repro.get(add.remote(1, 2)) == 3

    def test_get_list_preserves_order(self, runtime):
        refs = [add.remote(i, 1) for i in range(10)]
        assert repro.get(refs) == list(range(1, 11))

    def test_kwargs(self, runtime):
        assert repro.get(add.remote(a=2, b=3)) == 5

    def test_futures_as_arguments(self, runtime):
        """Futures pass into other remote functions without blocking."""
        ref = add.remote(add.remote(1, 1), add.remote(2, 2))
        assert repro.get(ref) == 6

    def test_multiple_returns(self, runtime):
        a, b, c = three.remote()
        assert repro.get([a, b, c]) == [1, 2, 3]

    def test_nested_tasks(self, runtime):
        assert repro.get(spawn_children.remote(5)) == sum(2 * i for i in range(5))

    def test_numpy_payloads(self, runtime):
        array = np.arange(10_000, dtype=np.float64)
        result = repro.get(identity.remote(array))
        np.testing.assert_array_equal(result, array)

    def test_direct_call_rejected(self, runtime):
        with pytest.raises(TypeError):
            add(1, 2)

    def test_options_num_returns(self, runtime):
        @repro.remote
        def pair():
            return (1, 2)

        a, b = pair.options(num_returns=2).remote()
        assert repro.get([a, b]) == [1, 2]

    def test_wrong_return_arity_is_error(self, runtime):
        @repro.remote(num_returns=2)
        def just_one():
            return 1

        ref, _ = just_one.remote()
        with pytest.raises(repro.TaskExecutionError):
            repro.get(ref)


class TestErrors:
    def test_exception_reraised_at_get(self, runtime):
        with pytest.raises(repro.TaskExecutionError) as info:
            repro.get(failing.remote())
        assert isinstance(info.value.cause, RuntimeError)

    def test_errors_propagate_through_dependencies(self, runtime):
        ref = identity.remote(failing.remote())
        with pytest.raises(repro.TaskExecutionError):
            repro.get(ref)

    def test_error_does_not_poison_other_tasks(self, runtime):
        bad = failing.remote()
        good = add.remote(1, 1)
        assert repro.get(good) == 2
        with pytest.raises(repro.TaskExecutionError):
            repro.get(bad)


class TestPutGet:
    def test_put_roundtrip(self, runtime):
        ref = repro.put({"k": [1, 2]})
        assert repro.get(ref) == {"k": [1, 2]}

    def test_put_as_task_argument(self, runtime):
        x = repro.put(41)
        assert repro.get(add.remote(x, 1)) == 42

    def test_puts_are_distinct(self, runtime):
        a, b = repro.put(1), repro.put(2)
        assert a != b
        assert repro.get([a, b]) == [1, 2]

    def test_get_timeout(self, runtime):
        ref = slow.remote(5, 1)
        with pytest.raises(GetTimeoutError):
            repro.get(ref, timeout=0.1)


class TestWait:
    def test_wait_returns_completed_first(self, runtime):
        fast = slow.remote(0.01, "fast")
        slow_ref = slow.remote(2.0, "slow")
        ready, pending = repro.wait([slow_ref, fast], num_returns=1, timeout=5)
        assert ready == [fast]
        assert pending == [slow_ref]

    def test_wait_timeout_returns_partial(self, runtime):
        refs = [slow.remote(5.0, i) for i in range(2)]
        ready, pending = repro.wait(refs, num_returns=2, timeout=0.1)
        assert ready == []
        assert len(pending) == 2

    def test_wait_all(self, runtime):
        refs = [add.remote(i, i) for i in range(5)]
        ready, pending = repro.wait(refs, num_returns=5, timeout=10)
        assert len(ready) == 5
        assert pending == []

    def test_wait_num_returns_validation(self, runtime):
        with pytest.raises(ValueError):
            repro.wait([add.remote(1, 1)], num_returns=2)

    def test_wait_returns_exactly_num_returns(self, runtime):
        """Even when more futures are ready, extras stay pending."""
        refs = [add.remote(i, i) for i in range(6)]
        repro.get(refs)  # all complete
        ready, pending = repro.wait(refs, num_returns=2)
        assert len(ready) == 2
        assert len(pending) == 4
        # Consume the rest incrementally with no loss or duplication.
        seen = set(ready)
        while pending:
            ready, pending = repro.wait(pending, num_returns=1)
            assert not (seen & set(ready))
            seen.update(ready)
        assert len(seen) == 6


class TestLifecycle:
    def test_double_init_rejected(self, runtime):
        with pytest.raises(RuntimeError):
            repro.init()

    def test_api_without_init_raises(self):
        from repro.common.errors import RuntimeNotInitializedError

        with pytest.raises(RuntimeNotInitializedError):
            repro.get_runtime()

    def test_shutdown_idempotent(self):
        repro.init(num_nodes=1)
        repro.shutdown()
        repro.shutdown()

    def test_is_initialized(self):
        assert not repro.is_initialized()
        repro.init(num_nodes=1)
        assert repro.is_initialized()
        repro.shutdown()
        assert not repro.is_initialized()
