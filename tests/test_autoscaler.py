"""The closed-loop autoscaler: watermarks, hysteresis, cooldown, hooks."""

import pytest

import repro
from repro.tools.autoscaler import Autoscaler, AutoscalerConfig
from repro.tools.dashboard_head import DashboardHead


class FakeHead:
    """A DashboardHead stand-in returning scripted load observations."""

    def __init__(self, loads):
        self.loads = list(loads)

    def cluster_load(self, _default=None):
        load = self.loads.pop(0) if len(self.loads) > 1 else self.loads[0]
        return load


def load(backlog_per_node=0.0, store=0.0, num_live=2):
    return {
        "source": "fake",
        "num_live_nodes": num_live,
        "backlog_total": backlog_per_node * num_live,
        "backlog_per_node": backlog_per_node,
        "queue_total": 0,
        "store_utilization_max": store,
        "transfers_inflight": 0,
    }


def make_autoscaler(runtime, head, **cfg):
    defaults = dict(
        high_watermark=4.0,
        low_watermark=0.5,
        hysteresis=2,
        cooldown_seconds=0.0,
        min_nodes=1,
        max_nodes=4,
    )
    defaults.update(cfg)
    return Autoscaler(runtime, AutoscalerConfig(**defaults), head=head)


class TestPolicy:
    def test_hysteresis_gates_a_single_spike(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(10.0), load(0.0)]))
        assert scaler.tick() is None  # one observation is not a trend
        assert scaler.tick() is None  # spike ended; streak reset

    def test_sustained_pressure_scales_up(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(10.0)]))
        assert scaler.tick() is None
        decision = scaler.tick()
        assert decision["action"] == "scale_up"
        assert decision["backlog_per_node"] == 10.0
        assert len(runtime.live_nodes()) == 3

    def test_store_pressure_alone_scales_up(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(0.0, store=0.95)]))
        scaler.tick()
        decision = scaler.tick()
        assert decision["action"] == "scale_up"
        assert decision["store_utilization_max"] == 0.95

    def test_sustained_idleness_scales_down(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(0.0)]))
        scaler.tick()
        decision = scaler.tick()
        assert decision["action"] == "scale_down"
        assert len(runtime.live_nodes()) == 1

    def test_scale_down_never_kills_the_driver_node(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(0.0)]), min_nodes=1)
        for _ in range(6):
            scaler.tick()
        assert runtime.driver_node.alive
        assert len(runtime.live_nodes()) == 1  # floored at min_nodes

    def test_max_nodes_caps_growth(self, runtime):
        class LiveCountHead:
            """Constant pressure, but honest live-node counts — the cap is
            evaluated against the observed cluster size."""

            def cluster_load(self):
                return load(10.0, num_live=len(runtime.live_nodes()))

        scaler = make_autoscaler(
            runtime, LiveCountHead(), max_nodes=3, hysteresis=1
        )
        for _ in range(5):
            scaler.tick()
        assert len(runtime.live_nodes()) == 3

    def test_cooldown_spaces_actions(self, runtime):
        scaler = make_autoscaler(
            runtime, FakeHead([load(10.0)]), hysteresis=1,
            cooldown_seconds=60.0, max_nodes=8,
        )
        assert scaler.tick()["action"] == "scale_up"
        assert scaler.tick() is None  # inside the cooldown window
        assert len(runtime.live_nodes()) == 3

    def test_scale_up_prefers_restarting_a_dead_node(self, runtime):
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        scaler = make_autoscaler(runtime, FakeHead([load(10.0)]), hysteresis=1)
        decision = scaler.tick()
        assert decision["action"] == "scale_up"
        assert runtime.node(victim.node_id).alive  # rejoined, not grown
        assert len(runtime.nodes()) == 2

    def test_decisions_land_in_the_event_timeline(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(10.0)]), hysteresis=1)
        scaler.tick()
        head = DashboardHead(runtime)
        events = head.events(categories=["autoscaler_decision"])["events"]
        assert len(events) == 1
        event = events[0]
        assert event["action"] == "scale_up"
        assert event["seq"] > 0
        assert event["backlog_per_node"] == 10.0
        assert event["high_watermark"] == 4.0

    def test_injected_hooks_override_node_lifecycle(self, runtime):
        actions = []

        def add():
            actions.append("add")
            return "cafe1234"

        scaler = Autoscaler(
            runtime,
            AutoscalerConfig(hysteresis=1, cooldown_seconds=0.0),
            head=FakeHead([load(10.0)]),
            add_hook=add,
        )
        decision = scaler.tick()
        assert decision["node"] == "cafe1234"
        assert actions == ["add"]
        assert len(runtime.nodes()) == 2  # runtime untouched

    def test_vetoing_hook_records_nothing(self, runtime):
        scaler = Autoscaler(
            runtime,
            AutoscalerConfig(hysteresis=1, cooldown_seconds=0.0),
            head=FakeHead([load(10.0)]),
            add_hook=lambda: None,
        )
        assert scaler.tick() is None
        assert scaler.decisions == 0


class TestLifecycle:
    def test_thread_start_stop_idempotent(self, runtime):
        scaler = make_autoscaler(runtime, FakeHead([load(1.0)]))
        scaler.start()
        scaler.start()  # second start is a no-op
        scaler.stop()
        scaler.stop()

    def test_runtime_shutdown_stops_registered_autoscaler(self):
        rt = repro.init(num_nodes=2)
        scaler = rt.register_ops(
            Autoscaler(rt, AutoscalerConfig(interval=0.05))
        )
        scaler.start()
        repro.shutdown()
        assert scaler._thread is None or not scaler._thread.is_alive()

    def test_real_head_closes_the_loop_without_reporters(self, runtime):
        """With reporters disabled the head samples the runtime directly,
        so the policy loop still sees real load numbers."""
        scaler = make_autoscaler(runtime, DashboardHead(runtime))
        assert scaler.tick() is None  # idle streak 1 of 2
        decision = scaler.tick()  # idle cluster: scales down to min+...
        assert decision is not None and decision["action"] == "scale_down"
