"""Bottom-up scheduling: spillback, feasibility, locality, heterogeneity."""

import collections
import time

import pytest

import repro
from repro.common.errors import ResourceRequestError


@repro.remote
def where():
    from repro.core import context

    return context.current_node().node_id


@repro.remote
def where_slowly():
    from repro.core import context

    time.sleep(0.05)
    return context.current_node().node_id


@repro.remote(num_gpus=1)
def gpu_task():
    from repro.core import context

    return context.current_node().node_id


@repro.remote
def consume(payload):
    from repro.core import context

    return context.current_node().node_id


class TestSpillback:
    def test_small_load_stays_local(self, runtime):
        """Below the spillback threshold, tasks run on the submitting node."""
        driver_node = runtime.driver_node.node_id
        assert repro.get(where.remote()) == driver_node
        assert runtime.driver_node.local_scheduler.scheduled_locally >= 1

    def test_overload_spills_to_other_nodes(self, runtime):
        """Enough concurrent slow tasks must spread across the cluster."""
        refs = [where_slowly.remote() for _ in range(64)]
        nodes = collections.Counter(repro.get(refs))
        assert len(nodes) == 2, f"expected both nodes used, got {nodes}"
        assert runtime.driver_node.local_scheduler.forwarded > 0


class TestResourceAwareness:
    def test_gpu_task_lands_on_gpu_node(self, gpu_runtime):
        gpu_nodes = {
            n.node_id
            for n in gpu_runtime.nodes()
            if n.resources.total.get("GPU", 0) > 0
        }
        assert repro.get(gpu_task.remote()) in gpu_nodes

    def test_infeasible_request_raises(self, runtime):
        with pytest.raises(ResourceRequestError):
            gpu_task.remote()  # no GPU node anywhere in this cluster

    def test_custom_resources(self):
        rt = repro.init(num_nodes=1, num_cpus_per_node=2)
        special = rt.add_node({"CPU": 2, "accelerator": 1})
        try:

            @repro.remote(resources={"accelerator": 1})
            def on_special():
                from repro.core import context

                return context.current_node().node_id

            assert repro.get(on_special.remote()) == special.node_id
        finally:
            repro.shutdown()

    def test_fractional_cpus_pack_more_tasks(self):
        rt = repro.init(num_nodes=1, num_cpus_per_node=1)
        try:

            @repro.remote(num_cpus=0.25)
            def tiny():
                time.sleep(0.1)
                return 1

            start = time.perf_counter()
            assert sum(repro.get([tiny.remote() for _ in range(4)])) == 4
            elapsed = time.perf_counter() - start
            # 4 quarter-CPU tasks co-run on one core: ~1 round, not 4.
            assert elapsed < 0.35
        finally:
            repro.shutdown()


class TestLocality:
    def test_large_input_attracts_task(self):
        """Locality-aware placement: the task goes to the data (Fig 8a)."""
        rt = repro.init(num_nodes=3, num_cpus_per_node=2, spillback_threshold=0)
        try:
            payload = repro.put(b"x" * 5_000_000)  # on the driver node
            holder = rt.driver_node.node_id
            results = repro.get([consume.remote(payload) for _ in range(4)])
            hits = sum(1 for node_id in results if node_id == holder)
            assert hits >= 3, f"only {hits}/4 tasks placed with the data"
        finally:
            repro.shutdown()

    def test_transferred_input_registers_new_location(self, runtime):
        payload = repro.put(b"y" * 100_000)
        repro.get([consume.remote(payload) for _ in range(8)])
        locations = runtime.gcs.get_object_locations(payload.object_id)
        assert len(locations) >= 1


class TestGlobalSchedulerEstimates:
    def test_ewma_updates(self, runtime):
        scheduler = runtime.global_schedulers[0]
        initial = scheduler.avg_task_duration.get()
        scheduler.report_task_duration(1.0)
        assert scheduler.avg_task_duration.get() > initial

    def test_estimated_wait_includes_transfer_when_aware(self, runtime):
        import numpy as np
        from repro.core.task_spec import ArgRef, TaskSpec
        from repro.common.ids import FunctionID, TaskID

        payload = repro.put(np.zeros(1_000_000))
        holder = runtime.driver_node
        other = [n for n in runtime.nodes() if n is not holder][0]
        spec = TaskSpec(
            task_id=TaskID.from_seed("probe"),
            function_id=FunctionID.from_seed("probe"),
            function_name="probe",
            args=(ArgRef(payload.object_id),),
            kwargs=(),
            num_returns=1,
        )
        scheduler = runtime.global_schedulers[0]
        assert scheduler.estimated_wait(other, spec) > scheduler.estimated_wait(
            holder, spec
        )
