"""GCS-backed tooling: inspector, timeline, profiler (paper Section 7)."""

import json
import time

import pytest

import repro
from repro.tools import ClusterInspector, Profiler, Timeline


@repro.remote
def work(ms):
    time.sleep(ms / 1000.0)
    return ms


@repro.remote
def fail():
    raise ValueError("nope")


@repro.remote
class Keeper:
    def __init__(self):
        self.v = 0

    def bump(self):
        self.v += 1
        return self.v


class TestClusterInspector:
    def test_snapshot_counts_everything(self, runtime):
        keeper = Keeper.remote()
        repro.get([work.remote(1) for _ in range(5)])
        repro.get(keeper.bump.remote())
        inspector = ClusterInspector(runtime)
        snapshot = inspector.snapshot()
        assert snapshot.live_nodes == 2
        assert snapshot.tasks_by_status.get("finished", 0) >= 6
        assert snapshot.num_objects >= 6
        assert snapshot.actors_alive == 1
        assert "alive" in snapshot.format()

    def test_pending_tasks_visible(self, runtime):
        ref = work.remote(300)
        inspector = ClusterInspector(runtime)
        # The slow task should appear as pending/scheduled/running.
        assert len(inspector.pending_tasks()) >= 1
        repro.get(ref)
        assert inspector.pending_tasks() == []

    def test_objects_without_live_copies(self, runtime):
        ref = repro.put(123)
        inspector = ClusterInspector(runtime)
        assert ref.object_id not in inspector.objects_without_live_copies()
        repro.free(ref)
        assert ref.object_id in inspector.objects_without_live_copies()

    def test_dead_actor_counted(self, runtime):
        keeper = Keeper.remote()
        repro.get(keeper.bump.remote())
        repro.kill(keeper)
        # kill() marks the actor dead in the GCS actor table.
        inspector = ClusterInspector(runtime)
        deadline = time.time() + 5
        while time.time() < deadline:
            _alive, dead = inspector.actor_summary()
            if dead == 1:
                break
            time.sleep(0.02)
        assert inspector.actor_summary()[1] == 1


class TestTimeline:
    def test_spans_cover_executed_tasks(self, runtime):
        repro.get([work.remote(5) for _ in range(4)])
        timeline = Timeline(runtime)
        spans = timeline.spans()
        assert len(spans) == 4
        assert all(s.duration >= 0.004 for s in spans)
        assert timeline.makespan() > 0

    def test_actor_methods_appear_with_kind(self, runtime):
        keeper = Keeper.remote()
        repro.get(keeper.bump.remote())
        kinds = {s.kind for s in Timeline(runtime).spans()}
        assert "actor_method" in kinds

    def test_chrome_trace_is_valid_json(self, runtime, tmp_path):
        repro.get([work.remote(2) for _ in range(3)])
        timeline = Timeline(runtime)
        trace = json.loads(timeline.to_chrome_trace())
        task_events = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(task_events) == 3
        assert all(e["dur"] > 0 for e in task_events)
        path = tmp_path / "trace.json"
        timeline.save_chrome_trace(str(path))
        assert json.loads(path.read_text())["traceEvents"]

    def test_empty_timeline(self, runtime):
        timeline = Timeline(runtime)
        assert timeline.spans() == []
        assert timeline.makespan() == 0.0
        assert json.loads(timeline.to_chrome_trace()) == {"traceEvents": []}
        assert "(no spans)" in timeline.render_ascii()

    def test_ascii_render_has_node_lanes(self, runtime):
        repro.get([work.remote(2) for _ in range(3)])
        art = Timeline(runtime).render_ascii(width=40)
        assert "node" in art
        assert "#" in art

    def test_failed_task_span_carries_status(self, runtime):
        with pytest.raises(repro.TaskExecutionError):
            repro.get(fail.remote())
        spans = Timeline(runtime).spans()
        assert [s.status for s in spans] == ["failed"]


@repro.remote
def blob(i):
    return bytes(10_000) + bytes([i % 256])


class TestToolsUnderReconstruction:
    """The tools must stay truthful when tasks run more than once."""

    def _force_replay(self):
        """Tiny store: early results get evicted, re-`get` replays lineage."""
        rt = repro.init(
            num_nodes=1, num_cpus_per_node=2, object_store_capacity_bytes=45_000
        )
        refs = [blob.remote(i) for i in range(10)]
        for ref in refs:
            repro.get(ref, timeout=20)
        repro.get(refs[0], timeout=20)  # evicted by now: triggers replay
        assert rt.reconstruction.reconstructed_tasks > 0
        return rt, refs

    def test_reexecuted_task_yields_two_spans(self):
        rt, refs = self._force_replay()
        try:
            replayed = rt.graph.producer_of(refs[0].object_id).hex()[:8]
            spans = [s for s in Timeline(rt).spans() if s.task == replayed]
            # One original execution plus at least one replay (eviction
            # churn may replay more than once) — one span per execution.
            assert len(spans) >= 2
            lifecycles = [
                lc for lc in Timeline(rt).lifecycles() if lc.task == replayed
            ]
            assert len(lifecycles) == len(spans)
            # Execution #1 was a fresh submit; the replay reuses the task
            # and is re-placed without a second submit event.
            assert lifecycles[0].submitted is not None
            assert lifecycles[1].scheduled is not None
            assert lifecycles[1].finished is not None
        finally:
            repro.shutdown()

    def test_profiler_counts_each_execution_and_failure_once(self):
        rt, _refs = self._force_replay()
        try:
            with pytest.raises(repro.TaskExecutionError):
                repro.get(fail.remote())
            profiles = Profiler(rt).profiles()
            # 10 originals + at least one replay, every execution counted.
            assert profiles["blob"].calls >= 11
            assert profiles["blob"].failures == 0
            assert profiles["fail"].calls == 1
            assert profiles["fail"].failures == 1
        finally:
            repro.shutdown()


class TestProfiler:
    def test_aggregates_by_function(self, runtime):
        repro.get([work.remote(2) for _ in range(6)])
        with pytest.raises(repro.TaskExecutionError):
            repro.get(fail.remote())
        profiles = Profiler(runtime).profiles()
        assert profiles["work"].calls == 6
        assert profiles["work"].mean_seconds >= 0.002
        assert profiles["work"].max_seconds >= profiles["work"].min_seconds
        assert profiles["fail"].failures == 1

    def test_top_by_total_time(self, runtime):
        repro.get([work.remote(20) for _ in range(2)])
        repro.get([work.remote(1) for _ in range(2)])
        top = Profiler(runtime).top_by_total_time(limit=1)
        assert top[0].name == "work"
        report = Profiler(runtime).format()
        assert "work" in report
