"""Chain replication: linearizable ops, failure reconfiguration, joins."""

import pytest

from repro.common.errors import ChainUnavailableError
from repro.gcs.chain import ChainReplica, ReplicatedChain


class TestBasicReplication:
    def test_write_reaches_all_members(self):
        chain = ReplicatedChain(num_replicas=3)
        chain.put("k", 1)
        for replica in chain.members:
            assert replica.store.get("k") == 1

    def test_read_from_tail(self):
        chain = ReplicatedChain(num_replicas=2)
        chain.put("k", "v")
        assert chain.get("k") == "v"

    def test_append_log_replicated(self):
        chain = ReplicatedChain(num_replicas=2)
        chain.append("log", 1)
        chain.append("log", 2)
        assert chain.log("log") == [1, 2]
        for replica in chain.members:
            assert replica.store.log("log") == [1, 2]

    def test_single_replica_chain(self):
        chain = ReplicatedChain(num_replicas=1)
        chain.put("k", 1)
        assert chain.get("k") == 1

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedChain(num_replicas=0)


class TestFailureHandling:
    def test_head_failure_reconfigures_and_retries(self):
        chain = ReplicatedChain(num_replicas=3)
        chain.put("before", 1)
        chain.kill_member(0)
        chain.put("after", 2)  # client retries; master drops dead head
        assert chain.get("after") == 2
        assert chain.chain_length() == 2
        assert chain.reconfigurations == 1
        assert chain.failed_writes >= 1

    def test_tail_failure_on_read(self):
        chain = ReplicatedChain(num_replicas=3)
        chain.put("k", 1)
        chain.kill_member(2)
        assert chain.get("k") == 1  # retried against new tail
        assert chain.chain_length() == 2

    def test_middle_failure(self):
        chain = ReplicatedChain(num_replicas=3)
        chain.kill_member(1)
        chain.put("k", 9)
        assert chain.get("k") == 9

    def test_all_members_dead_raises(self):
        chain = ReplicatedChain(num_replicas=1)
        chain.kill_member(0)
        with pytest.raises(ChainUnavailableError):
            chain.put("k", 1)

    def test_data_survives_single_failure(self):
        chain = ReplicatedChain(num_replicas=2)
        for i in range(50):
            chain.put(f"k{i}", i)
        chain.kill_member(0)
        for i in range(50):
            assert chain.get(f"k{i}") == i


class TestMembership:
    def test_join_receives_state_transfer(self):
        chain = ReplicatedChain(num_replicas=2)
        chain.put("k", 1)
        chain.append("log", "entry")
        new = chain.add_member()
        assert new.store.get("k") == 1
        assert new.store.log("log") == ["entry"]
        assert chain.chain_length() == 3

    def test_kill_then_rejoin_restores_replication(self):
        """The Figure 10a scenario: kill a member, a new one joins."""
        chain = ReplicatedChain(num_replicas=2)
        chain.put("a", 1)
        chain.kill_member(0)
        chain.put("b", 2)  # triggers reconfiguration to 1 member
        chain.add_member()
        assert chain.chain_length() == 2
        chain.put("c", 3)
        for replica in chain.members:
            assert replica.store.get("c") == 3

    def test_new_member_serves_reads(self):
        chain = ReplicatedChain(num_replicas=1)
        chain.put("k", "v")
        chain.add_member()  # becomes the new tail
        assert chain.get("k") == "v"


class TestPubSub:
    def test_publish_on_successful_write(self):
        chain = ReplicatedChain(num_replicas=2)
        seen = []
        chain.subscribe("k", lambda key, value: seen.append(value))
        chain.put("k", 5)
        assert seen == [5]

    def test_subscription_survives_reconfiguration(self):
        chain = ReplicatedChain(num_replicas=2)
        seen = []
        chain.subscribe("k", lambda _k, v: seen.append(v))
        chain.kill_member(0)
        chain.put("k", 1)
        assert seen == [1]

    def test_unsubscribe(self):
        chain = ReplicatedChain(num_replicas=1)
        seen = []
        unsub = chain.subscribe("k", lambda _k, v: seen.append(v))
        unsub()
        chain.put("k", 1)
        assert seen == []


class TestReplicaPrimitives:
    def test_dead_replica_raises(self):
        replica = ChainReplica()
        replica.kill()
        from repro.gcs.chain import ReplicaDeadError

        with pytest.raises(ReplicaDeadError):
            replica.apply_put("k", 1)
        with pytest.raises(ReplicaDeadError):
            replica.read("k")
