"""End-to-end property test: random task DAGs compute correct values.

Hypothesis generates random arithmetic DAGs; each node becomes a remote
task whose inputs are the futures of its children.  Whatever the shapes —
diamonds, wide fan-outs, deep chains — the distributed evaluation must
equal the local one.  This exercises scheduling, transfer, and dependency
resolution under arbitrary structure.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro


@repro.remote
def combine(op, *operands):
    if op == "add":
        return sum(operands)
    if op == "mul":
        result = 1
        for value in operands:
            result *= value
        return result
    if op == "max":
        return max(operands)
    raise ValueError(op)


def local_combine(op, operands):
    if op == "add":
        return sum(operands)
    if op == "mul":
        result = 1
        for value in operands:
            result *= value
        return result
    return max(operands)


# A DAG spec: list of nodes; node i is either a leaf int or
# (op, [indices < i]) — indices reference earlier nodes.
@st.composite
def dag_specs(draw):
    num_nodes = draw(st.integers(min_value=1, max_value=12))
    nodes = []
    for index in range(num_nodes):
        if index == 0 or draw(st.booleans()):
            nodes.append(draw(st.integers(min_value=-50, max_value=50)))
        else:
            op = draw(st.sampled_from(["add", "mul", "max"]))
            arity = draw(st.integers(min_value=1, max_value=min(3, index)))
            children = draw(
                st.lists(
                    st.integers(min_value=0, max_value=index - 1),
                    min_size=arity,
                    max_size=arity,
                )
            )
            nodes.append((op, children))
    return nodes


def evaluate_locally(nodes):
    values = []
    for node in nodes:
        if isinstance(node, tuple):
            op, children = node
            values.append(local_combine(op, [values[c] for c in children]))
        else:
            values.append(node)
    return values


def evaluate_distributed(nodes):
    refs = []
    for node in nodes:
        if isinstance(node, tuple):
            op, children = node
            refs.append(combine.remote(op, *[refs[c] for c in children]))
        else:
            refs.append(repro.put(node))
    return repro.get(refs, timeout=60)


class TestRandomDags:
    @given(dag_specs())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_distributed_equals_local(self, runtime, nodes):
        assert evaluate_distributed(nodes) == evaluate_locally(nodes)

    def test_diamond(self, runtime):
        nodes = [3, ("add", [0, 0]), ("mul", [0, 1]), ("max", [1, 2])]
        assert evaluate_distributed(nodes) == evaluate_locally(nodes)

    def test_wide_fanout(self, runtime):
        nodes = [2] + [("mul", [0])] * 10 + [("add", list(range(1, 11)))]
        assert evaluate_distributed(nodes) == evaluate_locally(nodes)

    def test_deep_chain(self, runtime):
        nodes = [1] + [("add", [i]) for i in range(15)]
        assert evaluate_distributed(nodes) == evaluate_locally(nodes)
