"""Single-shard KV store: operations, logs, pub-sub."""

import threading

from repro.gcs.kv import KVStore


class TestBasicOps:
    def test_put_get(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.get("k") == 1

    def test_get_default(self):
        assert KVStore().get("missing", "d") == "d"

    def test_overwrite(self):
        kv = KVStore()
        kv.put("k", 1)
        kv.put("k", 2)
        assert kv.get("k") == 2

    def test_delete(self):
        kv = KVStore()
        kv.put("k", 1)
        assert kv.delete("k")
        assert not kv.delete("k")
        assert kv.get("k") is None

    def test_contains(self):
        kv = KVStore()
        assert not kv.contains("k")
        kv.put("k", 0)
        assert kv.contains("k")

    def test_put_count(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.append("b", 1)
        assert kv.put_count == 2


class TestLogs:
    def test_append_preserves_order(self):
        kv = KVStore()
        for i in range(5):
            kv.append("log", i)
        assert kv.log("log") == [0, 1, 2, 3, 4]

    def test_log_missing_key_empty(self):
        assert KVStore().log("nope") == []

    def test_contains_sees_logs(self):
        kv = KVStore()
        kv.append("log", 1)
        assert kv.contains("log")

    def test_num_entries_counts_data_and_logs(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.append("b", 1)
        kv.append("b", 2)
        assert kv.num_entries() == 3


class TestPubSub:
    def test_subscribe_fires_on_put(self):
        kv = KVStore()
        seen = []
        kv.subscribe("k", lambda key, value: seen.append((key, value)))
        kv.put("k", 7)
        assert seen == [("k", 7)]

    def test_subscribe_fires_on_append(self):
        kv = KVStore()
        seen = []
        kv.subscribe("log", lambda _k, entry: seen.append(entry))
        kv.append("log", "x")
        assert seen == ["x"]

    def test_other_keys_do_not_fire(self):
        kv = KVStore()
        seen = []
        kv.subscribe("a", lambda *args: seen.append(args))
        kv.put("b", 1)
        assert seen == []

    def test_unsubscribe(self):
        kv = KVStore()
        seen = []
        unsubscribe = kv.subscribe("k", lambda *args: seen.append(args))
        unsubscribe()
        kv.put("k", 1)
        assert seen == []

    def test_unsubscribe_idempotent(self):
        kv = KVStore()
        unsubscribe = kv.subscribe("k", lambda *a: None)
        unsubscribe()
        unsubscribe()  # no error

    def test_multiple_subscribers(self):
        kv = KVStore()
        seen = []
        kv.subscribe("k", lambda *_: seen.append("a"))
        kv.subscribe("k", lambda *_: seen.append("b"))
        kv.put("k", 1)
        assert sorted(seen) == ["a", "b"]


class TestSnapshot:
    def test_snapshot_roundtrip(self):
        kv = KVStore()
        kv.put("a", 1)
        kv.append("log", "x")
        data, logs = kv.snapshot()
        restored = KVStore()
        restored.load_snapshot(data, logs)
        assert restored.get("a") == 1
        assert restored.log("log") == ["x"]

    def test_snapshot_is_a_copy(self):
        kv = KVStore()
        kv.append("log", 1)
        data, logs = kv.snapshot()
        logs["log"].append(2)
        assert kv.log("log") == [1]


class TestConcurrency:
    def test_concurrent_appends_all_recorded(self):
        kv = KVStore()

        def writer(offset):
            for i in range(100):
                kv.append("log", offset + i)

        threads = [threading.Thread(target=writer, args=(k * 100,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(kv.log("log")) == 400
