"""Execution context: deterministic IDs, blocked-resource release."""

import threading
import time

import pytest

import repro
from repro.core import context


@repro.remote
def child(x):
    return x + 1


@repro.remote
def parent_spawns(n):
    """Children get deterministic IDs from (parent task, submission index)."""
    refs = [child.remote(i) for i in range(n)]
    return [r.object_id.hex() for r in refs]


@repro.remote
def blocking_parent():
    """A parent that blocks on its child; must not deadlock the node."""
    return repro.get(child.remote(10))


class TestDeterministicSubmission:
    def test_child_ids_unique(self, runtime):
        ids = repro.get(parent_spawns.remote(8), timeout=20)
        assert len(set(ids)) == 8

    def test_driver_submissions_monotonic(self, runtime):
        a = child.remote(1)
        b = child.remote(1)
        assert a != b  # distinct submission indices → distinct tasks

    def test_replay_regenerates_same_child_ids(self, runtime):
        """Kill the result and force re-execution: children get identical
        object IDs, so their results are reused/idempotently rewritten."""
        ref = parent_spawns.remote(4)
        first = repro.get(ref, timeout=20)
        repro.free(ref)  # drop the output; lineage remains
        second = repro.get(ref, timeout=30)  # replays parent_spawns
        assert first == second


class TestBlockedRelease:
    def test_nested_get_on_saturated_node_completes(self):
        """Every CPU runs a blocking parent; children still execute because
        blocked workers release their resources (no deadlock)."""
        repro.init(num_nodes=1, num_cpus_per_node=2)
        try:
            refs = [blocking_parent.remote() for _ in range(4)]
            assert repro.get(refs, timeout=30) == [11, 11, 11, 11]
        finally:
            repro.shutdown()

    def test_deep_nesting(self):
        repro.init(num_nodes=1, num_cpus_per_node=1)
        try:

            @repro.remote
            def recurse(depth):
                if depth == 0:
                    return 0
                return repro.get(recurse.remote(depth - 1)) + 1

            # Depth 5 on a single CPU requires 5 simultaneous blocked
            # parents — impossible without blocked-release.
            assert repro.get(recurse.remote(5), timeout=30) == 5
        finally:
            repro.shutdown()

    def test_blocked_context_manager_releases(self, runtime):
        node = runtime.driver_node
        released = {}

        def worker():
            with context.execution_scope(runtime, node, runtime.driver_task_id,
                                         {"CPU": 1.0}):
                node.resources.try_acquire({"CPU": 1.0})
                with context.blocked():
                    released["during"] = node.resources.available()["CPU"]
                released["after"] = node.resources.available()["CPU"]
                node.resources.release({"CPU": 1.0})

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10)
        assert released["during"] == released["after"] + 1


class TestContextIsolation:
    def test_driver_has_no_task_context(self, runtime):
        assert context.current_task_id() is None
        assert context.current_node() is None

    def test_task_sees_its_own_context(self, runtime):
        @repro.remote
        def introspect():
            return (
                context.current_task_id() is not None,
                context.current_node() is not None,
                context.current_runtime() is not None,
            )

        assert repro.get(introspect.remote(), timeout=10) == (True, True, True)

    def test_put_index_isolated_per_task(self, runtime):
        @repro.remote
        def do_puts():
            a = repro.put(1)
            b = repro.put(2)
            return a.object_id != b.object_id

        results = repro.get([do_puts.remote() for _ in range(3)], timeout=20)
        assert all(results)
