"""Mechanistic synchronous SGD on the simulated cluster."""

import pytest

from repro.baselines.sgd_baselines import SGDWorkloadModel, ray_sgd_images_per_second
from repro.sim.sgd_sim import simulate_sync_sgd


class TestMechanisticSgd:
    def test_task_count_per_iteration(self):
        result = simulate_sync_sgd(num_gpus=8, iterations=2)
        # Per iteration: 8 gradient tasks + 2 shard updates (2 nodes).
        assert result.tasks_executed == 2 * (8 + 2)

    def test_throughput_scales_with_gpus(self):
        small = simulate_sync_sgd(num_gpus=4)
        large = simulate_sync_sgd(num_gpus=16)
        assert large.images_per_second > 2.5 * small.images_per_second

    def test_tracks_unpipelined_model(self):
        """The mechanism prices the same structure as the cost model's
        unpipelined variant (within NIC-contention tolerance)."""
        for gpus in (4, 16, 64):
            mech = simulate_sync_sgd(gpus).images_per_second
            model = ray_sgd_images_per_second(gpus, pipelined=False)
            assert mech == pytest.approx(model, rel=0.3), f"{gpus} GPUs"

    def test_pipelining_is_the_remaining_gap(self):
        """The paper's pipelined implementation beats the bare structure —
        the optimization's value is visible as mechanism < pipelined model."""
        mech = simulate_sync_sgd(32).images_per_second
        pipelined = ray_sgd_images_per_second(32, pipelined=True)
        assert mech < pipelined

    def test_single_node_uses_no_network(self):
        model = SGDWorkloadModel()
        result = simulate_sync_sgd(num_gpus=4, model=model)
        # 4 GPUs = 1 node: iteration ≈ compute + update, no NIC terms.
        assert result.iteration_seconds == pytest.approx(
            model.compute_seconds + 2e-3, rel=0.1
        )
