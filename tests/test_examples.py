"""Smoke tests: every example script runs to completion.

Each example is executed in a subprocess (its own interpreter, like a
user would run it) with a generous timeout.  The slowest training demos
are exercised with reduced work via environment knobs where they expose
them; otherwise they simply run as shipped.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "parameter_server_sgd.py",
    "fault_tolerance_demo.py",
    "cluster_scaling_sim.py",
    "dashboard.py",
]

TRAINING_EXAMPLES = [
    "rl_training_es.py",
    "train_serve_simulate.py",
]

SLOW_EXAMPLES = [
    "multi_policy_training.py",
    "apex_dqn.py",
]


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
    )
    assert result.returncode == 0, (
        f"{name} failed (rc={result.returncode}):\n"
        f"stdout:\n{result.stdout[-2000:]}\nstderr:\n{result.stderr[-2000:]}"
    )
    return result.stdout


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


@pytest.mark.parametrize("name", TRAINING_EXAMPLES)
def test_training_example_runs(name):
    output = run_example(name)
    assert "iteration" in output.lower()


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    output = run_example(name, timeout=300)
    assert output.strip()


def test_quickstart_output_content():
    output = run_example("quickstart.py")
    assert "square(7) = 49" in output
    assert "sum of squares 0..9 = 285" in output
    assert "first finisher: hare" in output


def test_fault_tolerance_demo_recovers():
    output = run_example("fault_tolerance_demo.py")
    assert "chain result after failure:  11" in output
    assert "actor total after restart:  13" in output


def test_dashboard_writes_trace():
    output = run_example("dashboard.py")
    assert "Chrome trace written" in output
    assert "cluster snapshot" in output
