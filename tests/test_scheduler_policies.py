"""The pluggable scheduler policy layer.

Covers the four contract points of the refactor:

* **golden trace** — the extracted ``lowest_wait`` policy reproduces the
  pre-refactor ``GlobalScheduler`` placements byte-for-byte over the
  160-decision recorded scenario (``tests/golden/``);
* **policy zoo units** — each registered policy honours its documented
  behaviour against hand-built views (locality picks the co-located node,
  power-of-two probes exactly two, round-robin cycles, central-queue takes
  the emptiest);
* **spillback hook** — the local scheduler delegates the forward/local
  decision to the configured ``SpillbackPolicy``;
* **integration + determinism** — every registry policy drives a live
  runtime end-to-end via ``repro.init(scheduler_policy=...)``, and
  same-seed simulator league runs are row-identical.
"""

from __future__ import annotations

import json
import pathlib

import pytest

import repro
from repro.core.global_scheduler import GlobalScheduler
from repro.core.scheduling import (
    AlwaysSpillback,
    ClusterView,
    LocalityPolicy,
    NeverSpillback,
    NodeView,
    Placement,
    PowerOfTwoPolicy,
    SchedulerPolicy,
    ThresholdSpillback,
    available_policies,
    available_spillbacks,
    make_policy,
    make_spillback,
    register_policy,
)
from repro.core.scheduling.view import DepInfo, TaskView

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


# ---------------------------------------------------------------------------
# Hand-built view fixtures
# ---------------------------------------------------------------------------


class StubNode(NodeView):
    """A NodeView with fixed state that counts how often it is observed."""

    def __init__(self, key, index, backlog=0, free=True):
        super().__init__(key, index)
        self._backlog = backlog
        self._free = free
        self.backlog_calls = 0

    def backlog(self):
        self.backlog_calls += 1
        return self._backlog

    def can_run_now(self, resources):
        return self._free


def make_view(nodes, deps=None, avg=0.01, bandwidth=1e9):
    return ClusterView(nodes, deps or {}, avg, bandwidth)


def make_task(deps=(), resources=None):
    return TaskView(
        key="t", name="t", resources=resources or {"CPU": 1.0}, deps=tuple(deps)
    )


# ---------------------------------------------------------------------------
# Golden trace: the refactored stack replays the pre-refactor placements
# ---------------------------------------------------------------------------


class TestGoldenTrace:
    def test_refactored_scheduler_matches_recorded_trace(self):
        from tests.golden import scenario

        recorded = json.loads((GOLDEN_DIR / "scheduler_trace.json").read_text())
        replayed = scenario.run_trace(
            lambda gcs, get_nodes: GlobalScheduler(gcs, get_nodes=get_nodes)
        )
        assert replayed == recorded["placements"]

    def test_trace_exercises_every_node_and_the_death(self):
        # Guard the scenario itself: a trace that collapsed onto one node
        # would make the equivalence test vacuous.
        recorded = json.loads((GOLDEN_DIR / "scheduler_trace.json").read_text())
        placements = recorded["placements"]
        assert len(placements) == 160
        assert set(placements) == set(range(6))
        # Node 3 dies at decision 106; nothing lands there afterwards.
        assert 3 not in placements[107:]


# ---------------------------------------------------------------------------
# Policy zoo units
# ---------------------------------------------------------------------------


class TestLowestWaitPolicy:
    def test_prefers_shorter_queue(self):
        busy = StubNode("a", 0, backlog=50)
        idle = StubNode("b", 1, backlog=0)
        policy = make_policy("lowest_wait")
        assert policy.place(make_task(), make_view([busy, idle])).node is idle

    def test_saturated_node_penalized(self):
        # Equal backlog, but node "a" cannot start the task right now
        # (e.g. lifetime actor reservations invisible to the backlog).
        saturated = StubNode("a", 0, backlog=1, free=False)
        free = StubNode("b", 1, backlog=1)
        policy = make_policy("lowest_wait")
        assert policy.place(make_task(), make_view([saturated, free])).node is free

    def test_locality_term_pulls_toward_data(self):
        far = StubNode("a", 0)
        near = StubNode("b", 1)
        deps = {"obj": DepInfo(10_000_000, frozenset(["b"]))}
        policy = make_policy("lowest_wait")
        view = make_view([far, near], deps=deps, bandwidth=1e6)
        placement = policy.place(make_task(deps=["obj"]), view)
        assert placement.node is near
        assert placement.estimated_wait == pytest.approx(0.0)

    def test_ties_round_robin(self):
        nodes = [StubNode(k, i) for i, k in enumerate("abc")]
        policy = make_policy("lowest_wait")
        chosen = [policy.place(make_task(), make_view(nodes)).node.key for _ in range(6)]
        assert chosen == ["a", "b", "c", "a", "b", "c"]


class TestLocalityPolicy:
    def test_picks_colocated_node_despite_backlog(self):
        busy_with_data = StubNode("a", 0, backlog=100)
        idle_without = StubNode("b", 1, backlog=0)
        deps = {"obj": DepInfo(1_000_000, frozenset(["a"]))}
        policy = LocalityPolicy()
        view = make_view([busy_with_data, idle_without], deps=deps)
        assert policy.place(make_task(deps=["obj"]), view).node is busy_with_data

    def test_no_data_degenerates_to_least_backlog(self):
        nodes = [StubNode("a", 0, backlog=5), StubNode("b", 1, backlog=2)]
        policy = LocalityPolicy()
        assert policy.place(make_task(), make_view(nodes)).node.key == "b"


class TestPowerOfTwoPolicy:
    def test_never_scans_all_nodes(self):
        nodes = [StubNode(i, i, backlog=i) for i in range(64)]
        policy = PowerOfTwoPolicy()
        for _ in range(50):
            placement = policy.place(make_task(), make_view(nodes))
            assert placement.node in nodes
        # 50 decisions over 64 nodes probe at most 2 each — a scanning
        # policy would have touched every node's backlog 50 times.
        assert sum(n.backlog_calls for n in nodes) == 100
        assert max(n.backlog_calls for n in nodes) < 50

    def test_takes_less_loaded_probe(self):
        # With exactly two candidates both are probed; the emptier wins.
        nodes = [StubNode("a", 0, backlog=9), StubNode("b", 1, backlog=1)]
        policy = PowerOfTwoPolicy()
        for _ in range(10):
            assert policy.place(make_task(), make_view(nodes)).node.key == "b"

    def test_seeded_rng_is_replayable(self):
        nodes1 = [StubNode(i, i, backlog=i % 7) for i in range(32)]
        nodes2 = [StubNode(i, i, backlog=i % 7) for i in range(32)]
        # Same seed, fresh policy and views: identical choice sequence.
        p1, p2 = PowerOfTwoPolicy(seed=7), PowerOfTwoPolicy(seed=7)
        seq1 = [p1.place(make_task(), make_view(nodes1)).node.key for _ in range(20)]
        seq2 = [p2.place(make_task(), make_view(nodes2)).node.key for _ in range(20)]
        assert seq1 == seq2


class TestRoundRobinAndCentralQueue:
    def test_round_robin_cycles(self):
        nodes = [StubNode(k, i) for i, k in enumerate("abcd")]
        policy = make_policy("round_robin")
        chosen = [policy.place(make_task(), make_view(nodes)).node.key for _ in range(8)]
        assert chosen == list("abcdabcd")

    def test_central_queue_takes_emptiest(self):
        nodes = [
            StubNode("a", 0, backlog=3),
            StubNode("b", 1, backlog=1),
            StubNode("c", 2, backlog=2),
        ]
        policy = make_policy("central_queue")
        assert policy.place(make_task(), make_view(nodes)).node.key == "b"

    def test_central_queue_ties_round_robin(self):
        nodes = [StubNode(k, i) for i, k in enumerate("ab")]
        policy = make_policy("central_queue")
        chosen = [policy.place(make_task(), make_view(nodes)).node.key for _ in range(4)]
        assert chosen == ["a", "b", "a", "b"]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_zoo_is_registered(self):
        assert set(available_policies()) >= {
            "lowest_wait",
            "locality",
            "power_of_two",
            "round_robin",
            "central_queue",
        }
        assert set(available_spillbacks()) >= {"threshold", "always", "never"}

    def test_unknown_policy_lists_known(self):
        with pytest.raises(ValueError, match="lowest_wait"):
            make_policy("no_such_policy")
        with pytest.raises(ValueError, match="threshold"):
            make_spillback("no_such_spillback")

    def test_string_lookup_returns_fresh_instances(self):
        assert make_policy("round_robin") is not make_policy("round_robin")
        instance = LocalityPolicy()
        assert make_policy(instance) is instance
        assert isinstance(make_policy(LocalityPolicy), LocalityPolicy)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("lowest_wait")(SchedulerPolicy)

    def test_threshold_parameter_forwarded(self):
        spill = make_spillback(None, threshold=3)
        assert isinstance(spill, ThresholdSpillback)
        assert spill.threshold == 3


# ---------------------------------------------------------------------------
# Spillback hook in the local scheduler
# ---------------------------------------------------------------------------


class TestSpillbackHook:
    def test_always_spillback_forwards_every_task(self):
        rt = repro.init(num_nodes=2, num_cpus_per_node=4, spillback_policy="always")
        try:
            @repro.remote
            def f(x):
                return x + 1

            assert repro.get([f.remote(i) for i in range(8)]) == list(range(1, 9))
            node = rt.nodes()[0]
            assert node.local_scheduler.forwarded > 0
            assert isinstance(node.local_scheduler._spillback, AlwaysSpillback)
        finally:
            repro.shutdown()

    def test_never_spillback_keeps_feasible_tasks_local(self):
        rt = repro.init(num_nodes=2, num_cpus_per_node=4, spillback_policy="never")
        try:
            @repro.remote
            def f(x):
                return x * 2

            assert repro.get([f.remote(i) for i in range(8)]) == [
                i * 2 for i in range(8)
            ]
            # Driver tasks submit on node 0; "never" pins them there.
            assert rt.nodes()[0].local_scheduler.forwarded == 0
        finally:
            repro.shutdown()

    def test_custom_spillback_instance_is_consulted(self):
        calls = []

        class Recording(ThresholdSpillback):
            def should_forward(self, task, node):
                calls.append(task.name)
                return False

        rt = repro.init(
            num_nodes=1, num_cpus_per_node=4, spillback_policy=Recording()
        )
        try:
            @repro.remote
            def g():
                return 1

            assert repro.get(g.remote()) == 1
            assert any("g" in name for name in calls)
        finally:
            repro.shutdown()


# ---------------------------------------------------------------------------
# Live runtime integration
# ---------------------------------------------------------------------------


class TestRuntimeIntegration:
    @pytest.mark.parametrize("policy", sorted(
        {"lowest_wait", "locality", "power_of_two", "round_robin", "central_queue"}
    ))
    def test_every_policy_drives_the_runtime(self, policy):
        rt = repro.init(num_nodes=3, num_cpus_per_node=2, scheduler_policy=policy)
        try:
            @repro.remote
            def add(a, b):
                return a + b

            refs = [add.remote(i, i) for i in range(20)]
            assert repro.get(refs) == [2 * i for i in range(20)]
            assert rt.global_schedulers[0].policy.name == policy
        finally:
            repro.shutdown()

    def test_decisions_metric_labeled_with_policy(self):
        rt = repro.init(
            num_nodes=2, num_cpus_per_node=2,
            scheduler_policy="round_robin", spillback_policy="always",
        )
        try:
            @repro.remote
            def f():
                return 0

            repro.get([f.remote() for _ in range(6)])
            labelled = 0.0
            for family in rt.metrics.families():
                if family.name == "global_scheduler_decisions_total":
                    for key, metric in family.series.items():
                        if ("policy", "round_robin") in key:
                            labelled += metric.value
            assert labelled > 0
        finally:
            repro.shutdown()

    def test_placement_histogram_observed(self):
        rt = repro.init(
            num_nodes=2, num_cpus_per_node=2, spillback_policy="always"
        )
        try:
            @repro.remote
            def f():
                return 0

            repro.get([f.remote() for _ in range(4)])
            names = {family.name for family in rt.metrics.families()}
            assert "scheduler_placement_seconds" in names
        finally:
            repro.shutdown()

    def test_custom_policy_class_end_to_end(self):
        class FirstNode(SchedulerPolicy):
            name = "first_node"

            def place(self, task, view):
                return Placement(view.nodes[0])

        rt = repro.init(
            num_nodes=2, num_cpus_per_node=2, scheduler_policy=FirstNode
        )
        try:
            @repro.remote
            def f(x):
                return -x

            assert repro.get([f.remote(i) for i in range(5)]) == [
                -i for i in range(5)
            ]
            assert rt.global_schedulers[0].policy.name == "first_node"
        finally:
            repro.shutdown()

    def test_unknown_policy_name_raises_at_init(self):
        with pytest.raises(ValueError, match="registered"):
            repro.init(num_nodes=1, scheduler_policy="definitely_not_a_policy")
        if repro.is_initialized():
            repro.shutdown()


# ---------------------------------------------------------------------------
# Simulator determinism
# ---------------------------------------------------------------------------


class TestLeagueDeterminism:
    def test_same_seed_same_rows(self):
        from repro.sim.league import race

        kwargs = dict(
            policies=["lowest_wait", "power_of_two", "central_queue"],
            workloads=("ep_noop", "skewed_actors"),
            tasks=400,
            num_nodes=8,
            seed=11,
        )
        rows1 = race(**kwargs)
        rows2 = race(**kwargs)
        for row in rows1 + rows2:
            row.pop("placement_us")  # wall-clock: outside the contract
        assert rows1 == rows2

    def test_policies_actually_differ(self):
        from repro.sim.league import race_one

        locality = race_one("locality", "locality_fanin", 600, num_nodes=8, seed=3)
        blind = race_one("round_robin", "locality_fanin", 600, num_nodes=8, seed=3)
        # The point of the league: locality transfers nothing on the fan-in
        # shape while blind placement pays; makespans must separate.
        assert locality["makespan_s"] < blind["makespan_s"]

    def test_sim_and_runtime_share_policy_classes(self):
        from repro.sim.cluster import SimCluster, SimConfig

        policy = PowerOfTwoPolicy()
        cluster = SimCluster(SimConfig(num_nodes=4, scheduler_policy=policy))
        assert cluster.policy is policy
        rt = repro.init(num_nodes=2, scheduler_policy="power_of_two")
        try:
            assert type(rt.global_schedulers[0].policy) is type(policy)
        finally:
            repro.shutdown()
