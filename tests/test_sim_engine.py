"""The discrete-event engine: events, processes, resources, determinism."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine, SimResource


class TestTimeouts:
    def test_time_advances_to_events(self):
        engine = Engine()
        fired = []
        engine.timeout(1.5).add_callback(lambda e: fired.append(engine.now))
        engine.timeout(0.5).add_callback(lambda e: fired.append(engine.now))
        engine.run()
        assert fired == [0.5, 1.5]

    def test_run_until_stops_clock(self):
        engine = Engine()
        engine.timeout(10.0)
        assert engine.run(until=3.0) == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine()._schedule(-1, lambda: None)

    def test_same_time_fifo_order(self):
        engine = Engine()
        order = []
        for i in range(5):
            engine.timeout(1.0, value=i).add_callback(lambda e: order.append(e.value))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_timeout_value(self):
        engine = Engine()
        seen = []
        engine.timeout(1.0, value="v").add_callback(lambda e: seen.append(e.value))
        engine.run()
        assert seen == ["v"]


class TestEvents:
    def test_succeed_once(self):
        engine = Engine()
        event = engine.event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_callback_after_trigger_still_fires(self):
        engine = Engine()
        event = engine.event()
        event.succeed("x")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        engine.run()
        assert seen == ["x"]


class TestProcesses:
    def test_process_sequencing(self):
        engine = Engine()
        trace = []

        def proc():
            trace.append(("start", engine.now))
            yield engine.timeout(1.0)
            trace.append(("mid", engine.now))
            yield engine.timeout(2.0)
            trace.append(("end", engine.now))

        engine.process(proc())
        engine.run()
        assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_process_return_value(self):
        engine = Engine()

        def proc():
            yield engine.timeout(1.0)
            return 42

        process = engine.process(proc())
        engine.run()
        assert process.triggered
        assert process.value == 42

    def test_process_waits_on_process(self):
        engine = Engine()
        results = []

        def child():
            yield engine.timeout(2.0)
            return "child-done"

        def parent():
            value = yield engine.process(child())
            results.append((value, engine.now))

        engine.process(parent())
        engine.run()
        assert results == [("child-done", 2.0)]

    def test_yielding_non_event_raises(self):
        engine = Engine()

        def bad():
            yield 42

        engine.process(bad())
        with pytest.raises(TypeError):
            engine.run()

    def test_all_of_waits_for_every_event(self):
        engine = Engine()
        times = []

        def proc():
            yield engine.all_of([engine.timeout(1), engine.timeout(3), engine.timeout(2)])
            times.append(engine.now)

        engine.process(proc())
        engine.run()
        assert times == [3.0]

    def test_any_of_fires_on_first(self):
        engine = Engine()
        times = []

        def proc():
            yield engine.any_of([engine.timeout(5), engine.timeout(1)])
            times.append(engine.now)

        engine.process(proc())
        engine.run()
        assert times == [1.0]

    def test_all_of_empty(self):
        engine = Engine()
        done = []

        def proc():
            yield engine.all_of([])
            done.append(True)

        engine.process(proc())
        engine.run()
        assert done == [True]


class TestResources:
    def test_capacity_limits_concurrency(self):
        engine = Engine()
        resource = SimResource(engine, 2)
        finish_times = []

        def worker():
            yield resource.acquire()
            yield engine.timeout(1.0)
            resource.release()
            finish_times.append(engine.now)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_granting(self):
        engine = Engine()
        resource = SimResource(engine, 1)
        order = []

        def worker(idx):
            yield resource.acquire()
            order.append(idx)
            yield engine.timeout(1.0)
            resource.release()

        for i in range(3):
            engine.process(worker(i))
        engine.run()
        assert order == [0, 1, 2]

    def test_release_without_acquire_raises(self):
        engine = Engine()
        resource = SimResource(engine, 1)
        with pytest.raises(RuntimeError):
            resource.release()

    def test_queue_length_and_utilization(self):
        engine = Engine()
        resource = SimResource(engine, 1)
        resource.acquire()
        resource.acquire()  # queued
        engine.run()
        assert resource.queue_length == 1
        assert resource.utilization() == 1.0

    @given(st.lists(st.floats(min_value=0.01, max_value=5), min_size=1, max_size=12))
    def test_makespan_bounds(self, durations):
        """Simulated makespan is bounded by serial and ideal-parallel time."""
        engine = Engine()
        resource = SimResource(engine, 2)

        def worker(duration):
            yield resource.acquire()
            yield engine.timeout(duration)
            resource.release()

        for duration in durations:
            engine.process(worker(duration))
        engine.run()
        assert engine.now <= sum(durations) + 1e-9
        assert engine.now >= max(durations) - 1e-9
        assert engine.now >= sum(durations) / 2 - 1e-9
