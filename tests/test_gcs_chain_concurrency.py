"""Chain replication under concurrent clients and mid-write failures."""

import threading

import pytest

from repro.gcs.chain import ReplicatedChain
from repro.gcs.shard import ShardedKV


class TestConcurrentClients:
    def test_parallel_writers_all_land(self):
        chain = ReplicatedChain(num_replicas=2)

        def writer(offset):
            for i in range(200):
                chain.put(f"k{offset + i}", offset + i)

        threads = [threading.Thread(target=writer, args=(t * 1000,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for t in range(4):
            for i in range(200):
                assert chain.get(f"k{t * 1000 + i}") == t * 1000 + i

    def test_parallel_appends_preserve_count(self):
        chain = ReplicatedChain(num_replicas=2)

        def appender():
            for i in range(150):
                chain.append("log", i)

        threads = [threading.Thread(target=appender) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(chain.log("log")) == 450
        # Both replicas agree.
        members = chain.members
        assert len(members[0].store.log("log")) == 450
        assert len(members[-1].store.log("log")) == 450

    def test_writers_survive_concurrent_member_kill(self):
        # A small hop delay keeps the writers in flight when the kill hits.
        chain = ReplicatedChain(num_replicas=3, hop_delay=5e-5)
        errors = []

        def writer(offset):
            try:
                for i in range(300):
                    chain.put(f"w{offset + i}", i)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t * 1000,)) for t in range(3)]
        for thread in threads:
            thread.start()
        chain.kill_member(1)  # mid-flight failure
        for thread in threads:
            thread.join()
        assert errors == []
        # Failures are discovered lazily; one more op guarantees the dead
        # member has been reported and dropped.
        chain.put("final", 1)
        assert chain.chain_length() == 2
        # Spot-check durability across the reconfiguration.
        for t in range(3):
            assert chain.get(f"w{t * 1000 + 299}") == 299

    def test_sharded_kv_parallel_entity_traffic(self):
        from repro.common.ids import ObjectID

        kv = ShardedKV(num_shards=4, num_replicas=2)

        def worker(base):
            for i in range(100):
                key = ("object", ObjectID.from_seed(f"{base}-{i}"))
                kv.put(key, i)
                assert kv.get(key) == i

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert kv.num_entries() == 400
