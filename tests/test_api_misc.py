"""API surface details: decorator forms, options, handles, pickling."""

import pickle

import pytest

import repro
from repro.api import ActorClass, RemoteFunction, _function_id_for


class TestDecoratorForms:
    def test_bare_decorator_on_function(self, runtime):
        @repro.remote
        def f():
            return 1

        assert isinstance(f, RemoteFunction)
        assert repro.get(f.remote()) == 1

    def test_decorator_with_options_on_function(self, runtime):
        @repro.remote(num_returns=2)
        def g():
            return 1, 2

        assert isinstance(g, RemoteFunction)
        a, b = g.remote()
        assert repro.get([a, b]) == [1, 2]

    def test_bare_decorator_on_class(self, runtime):
        @repro.remote
        class A:
            def m(self):
                return "ok"

        assert isinstance(A, ActorClass)
        assert repro.get(A.remote().m.remote()) == "ok"

    def test_unknown_task_option_rejected(self):
        with pytest.raises(TypeError):

            @repro.remote(bogus=1)
            def f():  # pragma: no cover - decoration fails
                pass

    def test_unknown_actor_option_rejected(self):
        with pytest.raises(TypeError):

            @repro.remote(num_returns=2)  # not valid for classes
            class A:  # pragma: no cover - decoration fails
                pass

    def test_positional_options_rejected(self):
        with pytest.raises(TypeError):
            repro.remote(1, 2)

    def test_docstring_preserved(self):
        @repro.remote
        def documented():
            """The docs."""

        assert documented.__doc__ == "The docs."
        assert documented.__name__ == "documented"


class TestFunctionIdentity:
    def test_same_function_same_id(self):
        def f(x):
            return x

        assert _function_id_for(f) == _function_id_for(f)

    def test_same_name_different_code_different_id(self):
        def make(version):
            if version == 1:

                def f(x):
                    return x + 1

            else:

                def f(x):
                    return x + 2

            return f

        assert _function_id_for(make(1)) != _function_id_for(make(2))


class TestObjectRefSemantics:
    def test_hashable_and_equal_by_id(self, runtime):
        ref = repro.put(1)
        same = repro.ObjectRef(ref.object_id)
        assert ref == same
        assert hash(ref) == hash(same)
        assert len({ref, same}) == 1

    def test_pickles(self, runtime):
        ref = repro.put(5)
        clone = pickle.loads(pickle.dumps(ref))
        assert repro.get(clone) == 5

    def test_repr_is_short(self, runtime):
        assert len(repr(repro.put(1))) < 40


class TestActorHandleSemantics:
    def test_pickles_and_still_works(self, runtime):
        @repro.remote
        class Box:
            def __init__(self):
                self.v = 0

            def set(self, v):
                self.v = v
                return v

            def get(self):
                return self.v

        box = Box.remote()
        repro.get(box.set.remote(7))
        clone = pickle.loads(pickle.dumps(box))
        assert repro.get(clone.get.remote()) == 7

    def test_method_options_num_returns(self, runtime):
        @repro.remote
        class Splitter:
            def split(self):
                return 1, 2

        splitter = Splitter.remote()
        a, b = splitter.split.options(num_returns=2).remote()
        assert repro.get([a, b]) == [1, 2]


class TestRemoteFunctionOptions:
    def test_options_do_not_mutate_original(self, runtime):
        @repro.remote
        def f():
            return 0

        g = f.options(num_cpus=2)
        assert g is not f
        assert f._resources == {"CPU": 1.0}
        assert g._resources == {"CPU": 2.0}

    def test_fractional_gpu_request(self, gpu_runtime):
        @repro.remote(num_gpus=0.5)
        def half_gpu():
            return "ran"

        assert repro.get(half_gpu.remote(), timeout=10) == "ran"
