"""Fault tolerance: lineage reconstruction, eviction recovery, actor replay.

These tests exercise the *real* recovery code paths of the runtime — the
behaviours Figures 11a/11b measure at cluster scale.
"""

import pytest

import repro
from repro.common.errors import ObjectLostError


@repro.remote
def step(x):
    return x + 1


@repro.remote
def blob(i):
    return bytes(10_000) + bytes([i % 256])


@repro.remote
class Accumulator:
    def __init__(self):
        self.total = 0

    def add(self, amount):
        self.total += amount
        return self.total


class TestTaskReconstruction:
    def test_chain_survives_node_death(self, runtime):
        ref = step.remote(0)
        for _ in range(6):
            ref = step.remote(ref)
        assert repro.get(ref, timeout=20) == 7
        victim = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        runtime.kill_node(victim.node_id)
        # New dependent work — any lost ancestors must be replayed.
        ref2 = step.remote(ref)
        assert repro.get(ref2, timeout=30) == 8

    def test_result_on_dead_node_is_reexecuted(self, runtime):
        refs = [step.remote(i) for i in range(16)]
        repro.get(refs, timeout=20)
        victim = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        held_here = victim.store.num_objects()
        runtime.kill_node(victim.node_id)
        # All values still retrievable (transfer from survivors or replay).
        assert repro.get(refs, timeout=30) == [i + 1 for i in range(16)]
        assert held_here == 0 or runtime.reconstruction.reconstructed_tasks >= 0

    def test_eviction_triggers_lineage_replay(self):
        rt = repro.init(
            num_nodes=1, num_cpus_per_node=2, object_store_capacity_bytes=45_000
        )
        try:
            refs = [blob.remote(i) for i in range(10)]
            for ref in refs:
                repro.get(ref, timeout=20)
            assert rt.nodes()[0].store.eviction_count > 0
            # The earliest results were evicted; get must replay lineage.
            value = repro.get(refs[0], timeout=20)
            assert value[-1] == 0
            assert rt.reconstruction.reconstructed_tasks > 0
        finally:
            repro.shutdown()

    def test_put_object_loss_is_permanent(self, runtime):
        """Objects created by put have no lineage: loss is unrecoverable."""
        ref = repro.put(123)
        for node in runtime.nodes():
            node.store.delete(ref.object_id)
            runtime.gcs.remove_object_location(ref.object_id, node.node_id)
        with pytest.raises(ObjectLostError):
            repro.get(ref, timeout=5)

    def test_queued_tasks_rerouted_on_node_death(self, runtime):
        import time

        @repro.remote
        def slow_inc(x):
            time.sleep(0.05)
            return x + 1

        refs = [slow_inc.remote(i) for i in range(24)]
        victim = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        runtime.kill_node(victim.node_id)
        assert sorted(repro.get(refs, timeout=60)) == sorted(
            i + 1 for i in range(24)
        )


class TestActorReconstruction:
    def test_actor_replays_after_node_death(self, runtime):
        actor = Accumulator.remote()
        refs = [actor.add.remote(1) for _ in range(8)]
        assert repro.get(refs[-1], timeout=20) == 8
        state = runtime.actors.get_state(actor.actor_id)
        runtime.kill_node(state.node.node_id)
        # Full replay (no checkpoint): state must be identical.
        assert repro.get(actor.add.remote(1), timeout=30) == 9
        assert runtime.actors.replayed_methods >= 8

    def test_checkpoint_bounds_replay(self, runtime):
        """Figure 11b: with checkpointing only post-checkpoint methods
        are re-executed."""
        actor = Accumulator.options(checkpoint_interval=5).remote()
        refs = [actor.add.remote(1) for _ in range(12)]
        assert repro.get(refs[-1], timeout=20) == 12
        state = runtime.actors.get_state(actor.actor_id)
        runtime.kill_node(state.node.node_id)
        assert repro.get(actor.add.remote(1), timeout=30) == 13
        # Checkpoint at 10; methods 11..12 replay (2), not all 12.
        assert runtime.actors.replayed_methods <= 4

    def test_custom_checkpoint_hooks(self, runtime):
        @repro.remote(checkpoint_interval=2)
        class Custom:
            def __init__(self):
                self.state = []
                self.restored = False

            def push(self, x):
                self.state.append(x)
                return len(self.state)

            def was_restored(self):
                return self.restored

            def save_checkpoint(self):
                return list(self.state)

            def restore_checkpoint(self, saved):
                self.state = list(saved)
                self.restored = True

        actor = Custom.remote()
        repro.get([actor.push.remote(i) for i in range(4)], timeout=20)
        repro.kill(actor, restart=True)
        assert repro.get(actor.push.remote(99), timeout=30) == 5
        assert repro.get(actor.was_restored.remote(), timeout=20)

    def test_max_restarts_exhausted(self, runtime):
        actor = Accumulator.options(max_restarts=0).remote()
        assert repro.get(actor.add.remote(1), timeout=20) == 1
        repro.kill(actor, restart=True)  # exceeds max_restarts=0
        with pytest.raises(repro.TaskExecutionError):
            repro.get(actor.add.remote(1), timeout=20)


class TestClusterElasticity:
    def test_add_node_expands_capacity(self, runtime):
        new_node = runtime.add_node({"CPU": 4})
        assert new_node.node_id in {n.node_id for n in runtime.live_nodes()}
        refs = [step.remote(i) for i in range(12)]
        assert repro.get(refs, timeout=20) == [i + 1 for i in range(12)]

    def test_kill_node_idempotent(self, runtime):
        victim = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
        runtime.kill_node(victim.node_id)
        runtime.kill_node(victim.node_id)  # no error
        assert len(runtime.live_nodes()) == 1
