"""Blocking-path semantics: get/wait/fetch are notification-driven.

These tests pin down the contracts the event-driven refactor must keep:
``wait`` returns exactly ``num_returns``; ``get(timeout=...)`` raises
promptly (at the deadline, not deadline + a poll interval); the
evicted-between-availability-and-read window retries; lost objects raise
``ObjectLostError`` by notification; and wakeups after availability are
sub-poll-interval (< 10 ms, where the old poll loop floored at 20 ms).
"""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.common.errors import GetTimeoutError, ObjectLostError


@repro.remote
def finish_after(delay):
    time.sleep(delay)
    return time.monotonic()


@repro.remote
def sleepy(delay):
    time.sleep(delay)
    return delay


@repro.remote
class Echo:
    def echo(self, x):
        return x


class TestWaitSemantics:
    def test_wait_returns_exactly_num_returns(self, runtime):
        refs = [repro.put(i) for i in range(4)]
        ready, pending = repro.wait(refs, num_returns=2)
        assert len(ready) == 2
        assert len(pending) == 2
        # The extras stay pending even though they are ready; a second call
        # picks them up.
        ready2, pending2 = repro.wait(pending, num_returns=2)
        assert len(ready2) == 2 and not pending2

    def test_wait_num_returns_exceeding_futures_raises(self, runtime):
        with pytest.raises(ValueError):
            repro.wait([repro.put(1)], num_returns=2)

    def test_wait_timeout_returns_partial(self, runtime):
        ref = sleepy.remote(5.0)
        start = time.monotonic()
        ready, pending = repro.wait([ref], timeout=0.1)
        elapsed = time.monotonic() - start
        assert not ready and pending == [ref]
        assert 0.1 <= elapsed < 0.4  # wakes at the deadline, no extra poll

    def test_wait_wakes_on_concurrent_completion_within_10ms(self, runtime):
        ref = finish_after.remote(0.05)
        ready, pending = repro.wait([ref], timeout=5.0)
        woke_at = time.monotonic()
        assert ready and not pending
        finished_at = repro.get(ref)
        # Wakeup must ride the availability notification, not a poll tick:
        # the old loop slept in fixed intervals, flooring this latency.
        assert woke_at - finished_at < 0.010


class TestGetSemantics:
    def test_get_available_object_is_subpoll(self, runtime):
        oid = repro.put(123)
        start = time.monotonic()
        assert repro.get(oid) == 123
        assert time.monotonic() - start < 0.010

    def test_get_wakes_on_task_completion_within_10ms(self, runtime):
        ref = finish_after.remote(0.05)
        finished_at = repro.get(ref)
        woke_at = time.monotonic()
        assert woke_at - finished_at < 0.010

    def test_get_timeout_is_prompt(self, runtime):
        ref = sleepy.remote(5.0)
        start = time.monotonic()
        with pytest.raises(GetTimeoutError):
            repro.get(ref, timeout=0.2)
        elapsed = time.monotonic() - start
        # Raises at the deadline: not deadline + poll interval, and far
        # under the 1 s missed-wakeup backstop.
        assert 0.2 <= elapsed < 0.45

    def test_get_retries_when_evicted_between_availability_and_read(self, runtime):
        oid = runtime.put(42)
        node = runtime.driver_node
        real_get = node.store.get
        calls = {"n": 0}

        def flaky_get(object_id):
            # First read misses, as if the object was evicted between the
            # availability signal and the store read.
            calls["n"] += 1
            if calls["n"] == 1:
                return None
            return real_get(object_id)

        node.store.get = flaky_get
        try:
            assert runtime.get(oid) == 42
        finally:
            node.store.get = real_get
        assert calls["n"] >= 2

    def test_lost_object_raises_object_lost_promptly(self):
        rt = repro.init(
            num_nodes=1, num_cpus_per_node=2, object_store_capacity_bytes=3000
        )
        try:
            victim = repro.put(b"x" * 2000)
            repro.put(b"y" * 2000)  # evicts the victim; no lineage to replay
            start = time.monotonic()
            with pytest.raises(ObjectLostError):
                repro.get(victim, timeout=5.0)
            # Verdict arrives by lost-notification, not after the timeout.
            assert time.monotonic() - start < 0.5
        finally:
            repro.shutdown()

    def test_lost_during_blocked_fetch_wakes_by_notification(self, runtime):
        from repro.common.ids import ObjectID

        node = runtime.driver_node
        oid = ObjectID.from_random()
        runtime.gcs.add_object(oid, 10, None)  # put-root: no lineage
        # A stale location: registered in the GCS but never actually stored,
        # so the fetch blocks waiting for a copy to materialize.
        runtime.gcs.add_object_location(oid, node.node_id)
        removed_at = []

        def retract():
            time.sleep(0.05)
            removed_at.append(time.monotonic())
            runtime.gcs.remove_object_location(oid, node.node_id)

        threading.Thread(target=retract).start()
        with pytest.raises(ObjectLostError):
            runtime.fetch_to_node(oid, node, timeout=5.0)
        raised_at = time.monotonic()
        # The lost verdict rides the location-retraction notification: it
        # lands sub-poll-interval, not at the next backstop or timeout.
        assert raised_at - removed_at[0] < 0.010


class TestActorPathLatency:
    def test_actor_round_trip_is_notification_driven(self, runtime):
        actor = Echo.remote()
        repro.get(actor.echo.remote(0))  # construction + warm-up
        start = time.monotonic()
        assert repro.get(actor.echo.remote(41)) == 41
        # submit -> mailbox notify -> execute -> output put -> get wakeup;
        # every hop is a notification, so the round trip stays well under
        # the old 100 ms mailbox poll and the 1 s backstop.
        assert time.monotonic() - start < 0.05


class TestWaitStatsSurface:
    def test_runtime_counts_notifications_and_no_missed_wakeups(self, runtime):
        refs = [sleepy.remote(0.0) for _ in range(5)]
        repro.get(refs)
        snap = runtime.wait_stats.snapshot()
        assert snap["notifications"] > 0
        assert snap["backstop_recoveries"] == 0  # nothing was missed

    def test_inspector_snapshot_includes_wait_stats(self, runtime):
        from repro.tools.inspect import ClusterInspector

        repro.get(repro.put(1))
        snapshot = ClusterInspector(runtime).snapshot()
        assert "notifications" in snapshot.wait_stats
        assert "gcs_subscriptions" in snapshot.wait_stats
        assert any(
            line.startswith("waits:") for line in snapshot.format().split("\n")
        )


class TestShutdownQuiescence:
    def test_repeated_init_shutdown_does_not_leak_threads(self):
        baseline = threading.active_count()

        def settled_thread_count(limit=2.0):
            deadline = time.monotonic() + limit
            count = threading.active_count()
            while time.monotonic() < deadline:
                count = threading.active_count()
                if count <= baseline + 1:
                    break
                time.sleep(0.01)
            return count

        for _ in range(5):
            repro.init(num_nodes=2, num_cpus_per_node=2)
            actor = Echo.remote()
            assert repro.get(actor.echo.remote(7)) == 7
            assert repro.get(sleepy.remote(0.0)) == 0.0
            repro.shutdown()
        # Dispatchers and actor loops are joined by shutdown; transient
        # worker threads drain within the settle window.
        assert settled_thread_count() <= baseline + 1
