"""End-to-end integration: the paper's Figure 2/3 training program.

Reproduces the exact structure of Figure 3 — a ``train_policy`` driver that
creates a policy, instantiates Simulator actors, alternates per-actor
``rollout`` method calls with ``update_policy`` tasks that consume the
rollout futures — and checks both the training result and the resulting
task-graph structure (Figure 4: data, control, and stateful edges).
"""

import numpy as np
import pytest

import repro
from repro.core.task_graph import EdgeType
from repro.rl import EnvSpec, PolicySpec
from repro.rl.rollout import SimulatorActor


@repro.remote
def create_policy(policy_spec):
    # Initialize the policy (randomly, per the paper's sketch).
    return policy_spec.build(seed=1).get_flat()


@repro.remote
def update_policy(policy_spec, params, *rollouts):
    """Move the policy toward the best-performing rollout's direction.

    A miniature stand-in for the paper's SGD update: enough to make the
    training loop's data dependencies real.
    """
    rewards = np.array([reward for reward, _length in rollouts])
    step = 0.01 * (rewards.max() - rewards.mean())
    return np.asarray(params) + step


@repro.remote
def train_policy(policy_spec, env_spec, num_simulators, num_iterations):
    """The Figure 3 driver, itself a remote (nested) task."""
    policy_id = create_policy.remote(policy_spec)
    simulators = [
        SimulatorActor.remote(env_spec, policy_spec) for _ in range(num_simulators)
    ]
    for _ in range(num_iterations):
        rollout_ids = [s.rollout.remote(policy_id, 15) for s in simulators]
        policy_id = update_policy.remote(policy_spec, policy_id, *rollout_ids)
    return repro.get(policy_id)


class TestFigure3Program:
    def test_end_to_end(self, runtime):
        env_spec = EnvSpec("pendulum", max_steps=30)
        policy_spec = PolicySpec.for_env(env_spec)
        final = repro.get(
            train_policy.remote(policy_spec, env_spec, 2, 3), timeout=60
        )
        expected_size = policy_spec.build().num_params()
        assert np.asarray(final).shape == (expected_size,)

    def test_task_graph_has_all_three_edge_types(self, runtime):
        """Figure 4: the program induces data, control, AND stateful edges."""
        env_spec = EnvSpec("pendulum", max_steps=20)
        policy_spec = PolicySpec.for_env(env_spec)
        repro.get(train_policy.remote(policy_spec, env_spec, 2, 2), timeout=60)
        graph = runtime.graph
        assert graph.edges(EdgeType.DATA)
        assert graph.edges(EdgeType.CONTROL)
        assert graph.edges(EdgeType.STATEFUL)
        # Each simulator contributes a stateful chain of length ≥ 2.
        stateful = graph.edges(EdgeType.STATEFUL)
        assert len(stateful) >= 4

    def test_gcs_holds_full_lineage(self, runtime):
        """Every task of the program is durably recorded (debuggability —
        the Section 7 claim that tools simply read the GCS)."""
        env_spec = EnvSpec("pendulum", max_steps=20)
        policy_spec = PolicySpec.for_env(env_spec)
        repro.get(train_policy.remote(policy_spec, env_spec, 2, 2), timeout=60)
        assert runtime.gcs.num_tasks() == runtime.graph.num_tasks()
        events = runtime.gcs.events("task_finished")
        assert len(events) >= 5

    def test_to_dot_renders(self, runtime):
        env_spec = EnvSpec("pendulum", max_steps=10)
        policy_spec = PolicySpec.for_env(env_spec)
        repro.get(train_policy.remote(policy_spec, env_spec, 1, 1), timeout=60)
        dot = runtime.graph.to_dot()
        assert dot.startswith("digraph")
        assert "train_policy" in dot
