"""Mechanistic BSP-vs-async on the simulated cluster (Table 4's claim)."""

import random

import pytest

from repro.baselines.bsp import async_makespan, bsp_makespan
from repro.sim.bsp_sim import simulate_async, simulate_bsp, throughput_comparison


class TestMechanisticBsp:
    def test_bsp_rounds_counted(self):
        result = simulate_bsp([0.1] * 12, num_cpus=4)
        assert result.rounds == 3
        assert result.tasks == 12

    def test_uniform_tasks_equal_disciplines(self):
        durations = [0.1] * 16
        bsp = simulate_bsp(durations, num_cpus=4)
        asynchronous = simulate_async(durations, num_cpus=4)
        assert bsp.makespan == pytest.approx(asynchronous.makespan, rel=0.1)

    def test_heterogeneous_tasks_favour_async(self):
        rng = random.Random(0)
        durations = [rng.uniform(0.01, 0.5) for _ in range(48)]
        comparison = throughput_comparison(
            durations, [int(d * 1000) for d in durations], num_cpus=8
        )
        assert comparison["speedup"] > 1.2
        assert (
            comparison["async_steps_per_second"]
            > comparison["bsp_steps_per_second"]
        )

    def test_mechanism_agrees_with_model(self):
        """The simulated makespans track the closed-form scheduling models
        (which have no scheduler overhead) within a modest margin."""
        rng = random.Random(1)
        durations = [rng.uniform(0.05, 1.0) for _ in range(32)]
        mech_bsp = simulate_bsp(durations, num_cpus=8).makespan
        mech_async = simulate_async(durations, num_cpus=8).makespan
        model_bsp = bsp_makespan(durations, 8)
        model_async = async_makespan(durations, 8)
        assert mech_bsp == pytest.approx(model_bsp, rel=0.15)
        assert mech_async == pytest.approx(model_async, rel=0.25)
