"""Shared fixtures: a fresh in-process cluster per test."""

from __future__ import annotations

import pytest

import repro


@pytest.fixture
def runtime():
    """A 2-node, 4-CPU-per-node cluster, shut down after the test."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        yield rt
    finally:
        repro.shutdown()


@pytest.fixture
def single_node_runtime():
    rt = repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        yield rt
    finally:
        repro.shutdown()


@pytest.fixture
def gpu_runtime():
    """Two CPU nodes plus one GPU node."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4)
    rt.add_node({"CPU": 4, "GPU": 2})
    try:
        yield rt
    finally:
        repro.shutdown()


@pytest.fixture(autouse=True)
def _ensure_shutdown():
    """Safety net: never leak a global runtime between tests."""
    yield
    if repro.is_initialized():
        repro.shutdown()


def pytest_sessionfinish(session, exitstatus):
    """When the suite runs under ``REPRO_LOCKWATCH=1``, a lock-order
    inversion observed anywhere in the run fails the whole session — the
    dynamic complement to the static RT-LOCK-ORDER rule."""
    from repro.common import lockwatch

    watch = lockwatch.active()
    if watch is None:
        return
    inversions = watch.inversions()
    if inversions:
        print("\nlockwatch: lock-order inversions observed during the run:")
        for record in inversions:
            print(f"  cycle: {' -> '.join(record['cycle'])}")
        session.exitstatus = 3
