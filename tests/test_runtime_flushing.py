"""GCS flushing wired into the runtime: bounded memory, durable lineage."""

import pytest

import repro


@repro.remote
def produce(i):
    return bytes([i % 256]) * 1000


class TestRuntimeFlushing:
    def test_flusher_bounds_task_table(self, tmp_path):
        rt = repro.init(
            num_nodes=1,
            num_cpus_per_node=4,
            gcs_flush_path=str(tmp_path / "lineage.bin"),
            gcs_flush_threshold=80,
        )
        try:
            for batch in range(4):
                refs = [produce.remote(batch * 100 + i) for i in range(100)]
                repro.get(refs, timeout=60)
            # Flushing ran (triggered every 100 completions).
            assert rt.flusher.flushed_entries > 0
            # Way fewer than 400 task rows remain in memory.
            assert rt.gcs.num_tasks() < 300
        finally:
            repro.shutdown()

    def test_reconstruction_from_flushed_lineage(self, tmp_path):
        """The Fig 10b snapshot is not write-only: a lost object whose
        lineage was flushed to disk is still reconstructible."""
        rt = repro.init(
            num_nodes=1,
            num_cpus_per_node=4,
            gcs_flush_path=str(tmp_path / "lineage.bin"),
            gcs_flush_threshold=10,
        )
        try:
            ref = produce.remote(7)
            expected = repro.get(ref, timeout=20)
            # Push the finished record out to disk.
            flushed = rt.flusher.flush()
            assert flushed >= 1
            assert rt.gcs.get_task(rt.gcs.creating_task(ref.object_id)) is None
            # Lose the object, then get it back via disk lineage.
            repro.free(ref)
            assert repro.get(ref, timeout=30) == expected
        finally:
            repro.shutdown()

    def test_lookup_task_readmits_record(self, tmp_path):
        rt = repro.init(
            num_nodes=1,
            gcs_flush_path=str(tmp_path / "lineage.bin"),
        )
        try:
            ref = produce.remote(1)
            repro.get(ref, timeout=20)
            task_id = rt.gcs.creating_task(ref.object_id)
            rt.flusher.flush()
            assert rt.gcs.get_task(task_id) is None
            entry = rt.lookup_task(task_id)
            assert entry is not None
            assert rt.gcs.get_task(task_id) is not None  # re-admitted
        finally:
            repro.shutdown()

    def test_no_flusher_by_default(self, runtime):
        assert runtime.flusher is None
        assert runtime.lookup_task(runtime.driver_task_id) is None
