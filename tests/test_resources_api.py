"""Cluster/available resource introspection APIs."""

import time

import repro


@repro.remote
def hold(seconds):
    time.sleep(seconds)
    return True


class TestClusterResources:
    def test_totals_sum_across_nodes(self, runtime):
        assert repro.cluster_resources() == {"CPU": 8.0}

    def test_gpu_nodes_included(self, gpu_runtime):
        totals = repro.cluster_resources()
        assert totals["CPU"] == 12.0
        assert totals["GPU"] == 2.0

    def test_dead_nodes_excluded(self, runtime):
        victim = runtime.nodes()[1]
        runtime.kill_node(victim.node_id)
        assert repro.cluster_resources() == {"CPU": 4.0}

    def test_available_drops_while_running(self, runtime):
        idle = repro.available_resources()["CPU"]
        refs = [hold.remote(0.4) for _ in range(4)]
        time.sleep(0.15)  # let them dispatch
        busy = repro.available_resources()["CPU"]
        assert busy < idle
        repro.get(refs, timeout=10)
        time.sleep(0.1)
        assert repro.available_resources()["CPU"] == idle

    def test_actor_reservation_counted(self, runtime):
        @repro.remote(num_cpus=2)
        class Heavy:
            def ping(self):
                return "pong"

        idle = repro.available_resources()["CPU"]
        actor = Heavy.remote()
        assert repro.get(actor.ping.remote(), timeout=10) == "pong"
        held = repro.available_resources()["CPU"]
        assert held == idle - 2
        repro.kill(actor)
        deadline = time.time() + 5
        while time.time() < deadline:
            if repro.available_resources()["CPU"] == idle:
                break
            time.sleep(0.02)
        assert repro.available_resources()["CPU"] == idle
