"""Task specifications: dependencies, return IDs, validation."""

import pytest

from repro.common.ids import ActorID, FunctionID, ObjectID, TaskID
from repro.core.task_spec import ArgRef, TaskSpec


def make_spec(**overrides):
    defaults = dict(
        task_id=TaskID.from_seed("t"),
        function_id=FunctionID.from_seed("f"),
        function_name="f",
        args=(),
        kwargs=(),
        num_returns=1,
    )
    defaults.update(overrides)
    return TaskSpec(**defaults)


class TestDependencies:
    def test_no_refs_no_deps(self):
        assert make_spec(args=(1, "x")).dependencies() == ()

    def test_positional_refs(self):
        a, b = ObjectID.from_seed("a"), ObjectID.from_seed("b")
        spec = make_spec(args=(ArgRef(a), 5, ArgRef(b)))
        assert spec.dependencies() == (a, b)

    def test_kwarg_refs(self):
        a = ObjectID.from_seed("a")
        spec = make_spec(kwargs=(("x", ArgRef(a)), ("y", 2)))
        assert spec.dependencies() == (a,)

    def test_mixed(self):
        a, b = ObjectID.from_seed("a"), ObjectID.from_seed("b")
        spec = make_spec(args=(ArgRef(a),), kwargs=(("k", ArgRef(b)),))
        assert set(spec.dependencies()) == {a, b}


class TestReturnIDs:
    def test_count_matches_num_returns(self):
        assert len(make_spec(num_returns=3).return_ids) == 3
        assert make_spec(num_returns=0).return_ids == ()

    def test_deterministic_across_replay(self):
        """Identical spec ⇒ identical output IDs: the lineage invariant."""
        assert make_spec().return_ids == make_spec().return_ids

    def test_distinct_per_task(self):
        a = make_spec(task_id=TaskID.from_seed("t1"))
        b = make_spec(task_id=TaskID.from_seed("t2"))
        assert set(a.return_ids).isdisjoint(b.return_ids)


class TestValidation:
    def test_negative_returns_rejected(self):
        with pytest.raises(ValueError):
            make_spec(num_returns=-1)

    def test_actor_method_requires_actor_id(self):
        with pytest.raises(ValueError):
            make_spec(actor_method="m")

    def test_spec_is_frozen(self):
        spec = make_spec()
        with pytest.raises(Exception):
            spec.num_returns = 5


class TestDescribe:
    def test_kinds(self):
        assert make_spec().describe().startswith("task:")
        actor_id = ActorID.from_seed("a")
        assert (
            make_spec(actor_id=actor_id, is_actor_creation=True)
            .describe()
            .startswith("actor_creation:")
        )
        assert (
            make_spec(actor_id=actor_id, actor_method="m", actor_counter=0)
            .describe()
            .startswith("actor_method:")
        )

    def test_is_actor_method(self):
        actor_id = ActorID.from_seed("a")
        assert make_spec(actor_id=actor_id, actor_method="m").is_actor_method
        assert not make_spec().is_actor_method
