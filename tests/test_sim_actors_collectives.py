"""Simulated actors (Fig 11b) and the allreduce cost models (Fig 12)."""

import pytest

from repro.baselines.mpi_allreduce import OpenMPIConfig, openmpi_allreduce_time
from repro.sim.actors import ActorFailureSimulation, ActorSimConfig
from repro.sim.collectives import (
    RingAllreduceConfig,
    ring_allreduce_tasks,
    ring_allreduce_time,
)
from repro.sim.metrics import LatencyStats, ThroughputTimeline
from repro.sim.network import Network, NetworkConfig
from repro.sim.engine import Engine


class TestActorFailureSim:
    def _run(self, checkpoint_interval):
        sim = ActorFailureSimulation(
            ActorSimConfig(
                num_nodes=5,
                cores_per_node=8,
                num_actors=50,
                method_duration=0.5,
                checkpoint_interval=checkpoint_interval,
                timeline_bucket=5.0,
            )
        )
        sim.run(horizon=200.0, kill_at=100.0, kill_nodes=1)
        return sim

    def test_checkpointing_bounds_replay(self):
        """The Figure 11b headline: checkpoints cap re-execution."""
        with_ckpt = self._run(checkpoint_interval=10)
        without = self._run(checkpoint_interval=None)
        assert with_ckpt.total_replayed < without.total_replayed / 3
        assert with_ckpt.total_checkpoints > 0
        assert without.total_checkpoints == 0

    def test_displaced_actors_counted(self):
        sim = ActorFailureSimulation(
            ActorSimConfig(num_nodes=10, num_actors=100, cores_per_node=4)
        )
        displaced = sim.kill_nodes([0, 1])
        assert displaced == 20  # 2 of 10 nodes → 20% of actors (paper: 400/2000)

    def test_throughput_recovers_after_failure(self):
        sim = self._run(checkpoint_interval=10)
        series = sim.timeline.series("original")
        rates = dict(series)
        before = rates.get(90.0, 0)
        after = rates.get(190.0, 0)
        assert after >= before * 0.6  # recovered on the surviving nodes

    def test_no_survivors_raises(self):
        sim = ActorFailureSimulation(ActorSimConfig(num_nodes=2, num_actors=4))
        with pytest.raises(RuntimeError):
            sim.kill_nodes([0, 1])


class TestRingAllreduceModel:
    def test_monotonic_in_size(self):
        config = RingAllreduceConfig()
        times = [ring_allreduce_time(s, config) for s in (1e6, 1e7, 1e8, 1e9)]
        assert times == sorted(times)

    def test_striping_helps_large_objects(self):
        """Ray vs Ray* (Fig 12a): multi-stream wins at 100 MB+."""
        ray = ring_allreduce_time(10**9, RingAllreduceConfig(streams=8))
        ray_star = ring_allreduce_time(10**9, RingAllreduceConfig(streams=1))
        assert ray_star > 1.5 * ray

    def test_scheduler_delay_dominates(self):
        """Fig 12b: a few ms of scheduler latency ~doubles completion."""
        base = ring_allreduce_time(10**8, RingAllreduceConfig())
        delayed = ring_allreduce_time(
            10**8, RingAllreduceConfig(scheduler_delay=10e-3)
        )
        assert delayed > 1.8 * base

    def test_coupled_dispatch_adds_rtt(self):
        base = ring_allreduce_time(10**8, RingAllreduceConfig())
        coupled = ring_allreduce_time(
            10**8, RingAllreduceConfig(coupled_dispatch=True)
        )
        assert coupled > base

    def test_task_count_quadratic(self):
        assert ring_allreduce_tasks(16) == 2 * 15 * 16
        assert ring_allreduce_tasks(32) / ring_allreduce_tasks(16) > 2

    def test_single_node_trivial(self):
        assert ring_allreduce_time(10**9, RingAllreduceConfig(num_nodes=1)) == 0.0


class TestOpenMPIModel:
    def test_ray_beats_openmpi_at_large_sizes(self):
        """The Fig 12a crossover: OpenMPI wins small, Ray wins ≥100 MB."""
        ray_cfg = RingAllreduceConfig()
        mpi_cfg = OpenMPIConfig()
        assert openmpi_allreduce_time(10**7, mpi_cfg) < ring_allreduce_time(
            10**7, ray_cfg
        )
        for size in (10**8, 10**9):
            ray = ring_allreduce_time(size, ray_cfg)
            mpi = openmpi_allreduce_time(size, mpi_cfg)
            assert 1.3 <= mpi / ray <= 3.5, f"size {size}: ratio {mpi / ray}"

    def test_small_message_algorithm_switch(self):
        config = OpenMPIConfig()
        small = openmpi_allreduce_time(10**6, config)
        from repro.baselines.mpi_allreduce import _ring_time

        assert small <= _ring_time(10**6, config)


class TestNetworkModel:
    def test_striping_caps_at_nic(self):
        network = Network(Engine(), NetworkConfig())
        assert network.effective_bandwidth(100) == NetworkConfig().nic_bandwidth
        assert network.effective_bandwidth(1) == NetworkConfig().per_stream_bandwidth

    def test_duration_includes_latency(self):
        network = Network(Engine(), NetworkConfig(latency=0.01))
        assert network.transfer_duration(0) == pytest.approx(0.01)

    def test_negative_size_rejected(self):
        network = Network(Engine(), NetworkConfig())
        with pytest.raises(ValueError):
            network.transfer_duration(-1)

    def test_transfer_event_fires(self):
        engine = Engine()
        network = Network(engine, NetworkConfig())
        event = network.transfer(10**6)
        engine.run()
        assert event.triggered
        assert network.bytes_moved == 10**6


class TestMetrics:
    def test_timeline_buckets_rates(self):
        timeline = ThroughputTimeline(bucket_seconds=1.0)
        for t in (0.1, 0.2, 1.5):
            timeline.record(t, "a")
        assert dict(timeline.series("a"))[0.0] == 2.0
        assert timeline.rate_at(1.7, "a") == 1.0
        assert timeline.total["a"] == 3

    def test_latency_stats(self):
        stats = LatencyStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.record(v)
        assert stats.mean == pytest.approx(2.5)
        assert stats.max == 4.0
        assert stats.min == 1.0
        assert stats.percentile(50) in (2.0, 3.0)

    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(bucket_seconds=0)
