"""Failure-plan schedules for the simulator."""

from repro.sim import SimCluster, SimConfig
from repro.sim.failures import FailurePlan, remove_and_restore
from repro.sim.workloads import dependency_chains


class TestFailurePlan:
    def test_kills_fire_at_scheduled_times(self):
        cluster = SimCluster(SimConfig(num_nodes=3, cpus_per_node=2))
        FailurePlan().kill(1.0, 1).kill(2.0, 2).apply(cluster)
        cluster.engine.run(until=0.5)
        assert cluster.nodes[1].alive
        cluster.engine.run(until=1.5)
        assert not cluster.nodes[1].alive
        assert cluster.nodes[2].alive
        cluster.engine.run(until=2.5)
        assert not cluster.nodes[2].alive

    def test_additions_expand_cluster(self):
        cluster = SimCluster(SimConfig(num_nodes=2))
        FailurePlan().add_node(1.0).add_node(1.0).apply(cluster)
        cluster.engine.run(until=2.0)
        assert len(cluster.nodes) == 4

    def test_remove_and_restore_shape(self):
        plan = remove_and_restore([2.0, 4.0], restore_time=8.0)
        assert plan.total_kills == 2
        assert plan.kills == [(2.0, 1), (4.0, 2)]
        assert plan.additions == [8.0, 8.0]

    def test_workload_survives_plan(self):
        cluster = SimCluster(SimConfig(num_nodes=4, cpus_per_node=4))
        chains = dependency_chains(num_chains=12, chain_length=8, task_duration=0.05)
        events = [cluster.submit(t, origin=0) for chain in chains for t in chain]
        remove_and_restore([0.15], restore_time=0.6).apply(cluster)
        cluster.engine.run()
        assert all(e.triggered for e in events)
