"""Tests for the runtime lock-order witness (repro.common.lockwatch)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.common import lockwatch
from repro.common.lockwatch import LockWatch
from repro.common.metrics import MetricsRegistry


@pytest.fixture
def watch():
    """Install a fresh watch for the test, restoring whatever was active."""
    previous = lockwatch.active()
    w = lockwatch.install(LockWatch(long_hold_seconds=0.05))
    try:
        yield w
    finally:
        if previous is not None:
            lockwatch.install(previous)
        else:
            lockwatch.uninstall()


class TestDisabledNullObject:
    def test_factories_return_raw_primitives(self):
        previous = lockwatch.active()
        lockwatch.uninstall()
        try:
            assert isinstance(lockwatch.make_lock("x"), type(threading.Lock()))
            assert isinstance(lockwatch.make_rlock("x"), type(threading.RLock()))
            assert isinstance(lockwatch.make_condition("x"), threading.Condition)
        finally:
            if previous is not None:
                lockwatch.install(previous)

    def test_active_reflects_install_state(self):
        previous = lockwatch.active()
        lockwatch.uninstall()
        try:
            assert lockwatch.active() is None
            w = lockwatch.install(LockWatch())
            assert lockwatch.active() is w
        finally:
            if previous is not None:
                lockwatch.install(previous)
            else:
                lockwatch.uninstall()


class TestInversionDetection:
    def test_ab_ba_inversion_detected(self, watch):
        a = lockwatch.make_lock("A")
        b = lockwatch.make_lock("B")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=forward, daemon=True)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward, daemon=True)
        t2.start()
        t2.join()

        inversions = watch.inversions()
        assert inversions, watch.report()
        cycle = inversions[0]["cycle"]
        assert set(cycle) >= {"A", "B"}

    def test_inversions_deduplicated(self, watch):
        a = lockwatch.make_lock("A")
        b = lockwatch.make_lock("B")
        for _ in range(5):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(watch.inversions()) == 1

    def test_consistent_order_records_no_inversion(self, watch):
        a = lockwatch.make_lock("A")
        b = lockwatch.make_lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert not watch.inversions()
        assert "A->B" in watch.report()["order_edges"]

    def test_three_way_cycle_detected(self, watch):
        a = lockwatch.make_lock("A")
        b = lockwatch.make_lock("B")
        c = lockwatch.make_lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass
        inversions = watch.inversions()
        assert inversions
        assert set(inversions[0]["cycle"]) == {"A", "B", "C"}


class TestHoldAndContention:
    def test_long_hold_recorded(self, watch):
        lock = lockwatch.make_lock("slowpoke")
        with lock:
            time.sleep(0.08)
        holds = watch.long_holds()
        assert any(record["lock"] == "slowpoke" for record in holds)

    def test_contention_counted(self, watch):
        lock = lockwatch.make_lock("contended")
        held = threading.Event()
        release = threading.Event()

        def holder():
            with lock:
                held.set()
                release.wait(2)

        t = threading.Thread(target=holder, daemon=True)
        t.start()
        held.wait(2)
        acquired = lock.acquire(timeout=0.05)
        if acquired:  # pragma: no cover - only on a pathological scheduler
            lock.release()
        release.set()
        t.join(2)
        assert watch.contention().get("contended", 0) >= 1

    def test_condition_wait_not_counted_as_hold(self, watch):
        cond = lockwatch.make_condition("gate")
        poker = threading.Thread(
            target=lambda: (time.sleep(0.1), cond.__enter__(), cond.notify_all(), cond.__exit__(None, None, None)),
            daemon=True,
        )
        poker.start()
        with cond:
            cond.wait(1.0)
        poker.join(2)
        # The wait released the lock; the recorded hold must be well under
        # the wall time spent inside the with-block.
        total = watch.report()["hold_seconds_total"].get("gate", 0.0)
        assert total < 0.09, total
        assert not [r for r in watch.long_holds() if r["lock"] == "gate"]

    def test_condition_wait_for_wakes(self, watch):
        cond = lockwatch.make_condition("wake")
        box = {"ready": False}

        def setter():
            with cond:
                box["ready"] = True
                cond.notify_all()

        t = threading.Thread(target=setter, daemon=True)
        with cond:
            t.start()
            assert cond.wait_for(lambda: box["ready"], timeout=2)
        t.join(2)

    def test_rlock_reentry_is_one_hold(self, watch):
        rlock = lockwatch.make_rlock("reentrant")
        with rlock:
            with rlock:
                pass
        assert not watch.inversions()


class TestMetricsExport:
    def test_bind_metrics_exports_series(self, watch):
        registry = MetricsRegistry(enabled=True)
        watch.bind_metrics(registry)
        lock = lockwatch.make_lock("measured")
        with lock:
            pass
        names = registry.series_names()
        assert "lock_hold_seconds" in names
        assert "lock_contention_total" in names


class TestRuntimeIntegration:
    def test_cluster_workload_has_no_inversions(self, watch):
        """A small end-to-end workload under the witness: every runtime
        lock is created through the factories, and the observed acquisition
        graph must stay acyclic."""
        import repro

        repro.init(num_nodes=2, num_cpus_per_node=2)
        try:
            @repro.remote
            def square(x):
                return x * x

            @repro.remote
            class Counter:
                def __init__(self):
                    self.total = 0

                def add(self, amount):
                    self.total += amount
                    return self.total

            refs = [square.remote(i) for i in range(16)]
            counter = Counter.remote()
            for value in repro.get(refs):
                counter.add.remote(value)
            assert repro.get(counter.add.remote(0)) == sum(i * i for i in range(16))
        finally:
            repro.shutdown()

        report = watch.report()
        assert report["inversions"] == [], report["inversions"]
        # The workload exercised real runtime locks, not just test locks.
        assert any("Runtime" in name for name in report["hold_seconds_total"])
