"""Table 4 — simulation throughput: Ray async tasks vs MPI bulk-synchronous.

Paper setup: Pendulum-v0 steps; the MPI program submits 3n simulations on
n cores in 3 barrier-separated rounds; Ray issues the same tasks
asynchronously, gathering results as they finish.  Timesteps/second:

    CPUs:   1        16       256
    MPI:    22.6K    208K     2.16M
    Ray:    22.3K    290K     4.03M

Regenerated in three parts: (1) the *real* per-step cost of our Pendulum
implementation calibrates the task durations; (2) the BSP-vs-async
makespans come from the executable scheduling models over heterogeneous
rollout lengths (10–1000 steps, as in the paper's ES/PPO workloads);
(3) a real-runtime spot check at small scale.
"""

import time

import pytest

import repro
from benchmarks.conftest import print_table
from repro.baselines.bsp import async_makespan, bsp_makespan
from repro.rl.envs import PendulumEnv
from repro.rl.specs import EnvSpec, PolicySpec
from repro.rl.rollout import SimulatorActor
from repro.sim.workloads import heterogeneous_rollouts

CPU_COUNTS = [1, 16, 256]
PAPER = {1: (22.6e3, 22.3e3), 16: (208e3, 290e3), 256: (2.16e6, 4.03e6)}
# Calibrated to the paper's single-core Pendulum rate (22.6K steps/s).
PER_STEP_SECONDS = 1.0 / 22_600
DRIVER_DISPATCH_RATE = 16_000  # Ray driver-side submissions/s at scale
RAY_PER_TASK_OVERHEAD = 0.3e-3
MPI_BARRIER_BASE = 1e-3


def measured_real_step_rate() -> float:
    """Steps/second of the actual Pendulum implementation (1 core)."""
    env = PendulumEnv(seed=0, max_steps=10_000_000)
    env.reset()
    steps = 20_000
    start = time.perf_counter()
    for _ in range(steps):
        env.step(0.5)
    return steps / (time.perf_counter() - start)


def run_table4():
    import math

    results = {}
    rows = []
    for cpus in CPU_COUNTS:
        pairs = heterogeneous_rollouts(
            3 * cpus * 8, per_step_seconds=PER_STEP_SECONDS, seed=cpus
        )
        durations = [task.duration for task, _steps in pairs]
        total_steps = sum(steps for _task, steps in pairs)
        barrier = MPI_BARRIER_BASE * math.log2(max(2, cpus))
        mpi_time = bsp_makespan(durations, cpus, barrier_cost=barrier)
        ray_time = max(
            async_makespan(durations, cpus, per_task_overhead=RAY_PER_TASK_OVERHEAD),
            len(durations) / DRIVER_DISPATCH_RATE,
        )
        results[cpus] = (total_steps / mpi_time, total_steps / ray_time)
        paper_mpi, paper_ray = PAPER[cpus]
        rows.append(
            (
                cpus,
                f"{results[cpus][0] / 1e3:.0f}K (paper {paper_mpi / 1e3:.0f}K)",
                f"{results[cpus][1] / 1e3:.0f}K (paper {paper_ray / 1e3:.0f}K)",
            )
        )
    print_table(
        "Table 4: Pendulum timesteps/second",
        ["CPUs", "MPI bulk-synchronous", "Ray asynchronous tasks"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="table4")
def test_table4_async_beats_bsp(benchmark):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    mpi_1, ray_1 = results[1]
    # At 1 CPU the two are equivalent (paper: 22.6K vs 22.3K).
    assert ray_1 == pytest.approx(mpi_1, rel=0.15)
    # At scale, Ray's async tasks win, and the gap grows with parallelism.
    mpi_16, ray_16 = results[16]
    mpi_256, ray_256 = results[256]
    assert ray_16 > 1.15 * mpi_16  # paper: 1.39x
    assert ray_256 > 1.4 * mpi_256  # paper: 1.87x
    assert (ray_256 / mpi_256) > (ray_16 / mpi_16) * 0.95
    # Magnitudes within ~2x of the paper's report.
    for cpus in CPU_COUNTS:
        paper_mpi, paper_ray = PAPER[cpus]
        assert results[cpus][0] == pytest.approx(paper_mpi, rel=1.0)
        assert results[cpus][1] == pytest.approx(paper_ray, rel=1.0)


@pytest.mark.benchmark(group="table4")
def test_table4_mechanistic_cross_check(benchmark):
    """BSP vs async run *through the simulated cluster* (barrier driver vs
    immediate submission) must reproduce the model's verdict."""
    from repro.sim.bsp_sim import throughput_comparison

    def run():
        pairs = heterogeneous_rollouts(
            3 * 16 * 6, per_step_seconds=PER_STEP_SECONDS, seed=99
        )
        durations = [task.duration for task, _s in pairs]
        steps = [s for _t, s in pairs]
        return throughput_comparison(durations, steps, num_cpus=16)

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table 4 (mechanistic, 16 CPUs)",
        ["discipline", "steps/s"],
        [
            ("MPI-style barriers", f"{comparison['bsp_steps_per_second'] / 1e3:.0f}K"),
            ("Ray-style async", f"{comparison['async_steps_per_second'] / 1e3:.0f}K"),
        ],
    )
    assert comparison["speedup"] > 1.15


@pytest.mark.benchmark(group="table4")
def test_table4_real_pendulum_calibration(benchmark):
    """Our Pendulum's real step rate is in the paper's single-core regime
    (same order of magnitude)."""
    rate = benchmark.pedantic(measured_real_step_rate, rounds=1, iterations=1)
    assert rate > 5_000, f"measured only {rate:.0f} steps/s"


@pytest.mark.benchmark(group="table4")
def test_table4_real_runtime_spot_check(benchmark):
    """Actual simulation steps through SimulatorActor on the runtime."""
    repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        env_spec = EnvSpec("pendulum", max_steps=200)
        policy_spec = PolicySpec.for_env(env_spec)
        actors = [SimulatorActor.remote(env_spec, policy_spec) for _ in range(3)]
        params = policy_spec.build().get_flat()

        def run():
            refs = [a.sample_steps.remote(params, 400) for a in actors]
            return sum(repro.get(refs, timeout=60))

        total = benchmark.pedantic(run, rounds=1, iterations=1)
        assert total == 3 * 400
    finally:
        repro.shutdown()
