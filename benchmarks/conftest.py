"""Shared helpers for the per-figure/table benchmark harnesses.

Every benchmark prints the rows/series the paper reports (paper value next
to our measured value) and asserts the *shape* of the result — who wins,
by roughly what factor, where crossovers fall — per the reproduction's
ground rules (our substrate is a simulator/laptop, not the authors'
testbed, so absolute numbers are not expected to match).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render one paper-style results table to stdout (-s to see it)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def fmt(value: float, unit: str = "", digits: int = 2) -> str:
    return f"{value:.{digits}f}{unit}"
