"""Microbenchmarks of the *real* in-process runtime (not in the paper).

The paper's throughput numbers come from a C++ system layer on a cluster;
these measure what our pure-Python reproduction actually sustains, so the
per-figure benches can honestly say which substrate produced which number.
Useful as a regression guard on runtime overhead too.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import print_table


@repro.remote
def noop():
    return None


@repro.remote
def echo(x):
    return x


@repro.remote
def finish_at():
    import time

    return time.monotonic()


@repro.remote
class CounterActor:
    def __init__(self):
        self.n = 0

    def bump(self):
        self.n += 1
        return self.n


@pytest.mark.benchmark(group="micro")
def test_micro_task_throughput(benchmark):
    repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        repro.get(noop.remote())  # warm up function registration

        def run():
            refs = [noop.remote() for _ in range(300)]
            repro.get(refs)
            return len(refs)

        count = benchmark(run)
        assert count == 300
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="micro")
def test_micro_actor_method_throughput(benchmark):
    repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        actor = CounterActor.remote()
        repro.get(actor.bump.remote())

        def run():
            refs = [actor.bump.remote() for _ in range(300)]
            return repro.get(refs)[-1]

        last = benchmark(run)
        assert last >= 300
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="micro")
def test_micro_object_roundtrip_1mb(benchmark):
    repro.init(num_nodes=2, num_cpus_per_node=2)
    try:
        payload = np.zeros(125_000)  # 1 MB

        def run():
            return repro.get(echo.remote(payload)).nbytes

        nbytes = benchmark(run)
        assert nbytes == 1_000_000
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="micro")
def test_micro_get_wakeup_latency(benchmark):
    """Latency from task completion to ``get`` returning.

    This is the path the event layer owns end-to-end: output put ->
    availability completion -> blocked getter wakes.  Under the old poll
    loop this floored at the 20 ms poll interval; notification-driven it
    is bounded by thread-switch cost.
    """
    import time

    repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        repro.get(finish_at.remote())

        def run():
            finished_at = repro.get(finish_at.remote())
            return time.monotonic() - finished_at

        latency = benchmark(run)
        assert latency < 0.010  # sub-poll-interval wakeup
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="micro")
def test_micro_metrics_overhead(benchmark):
    """Instrumentation cost: the same 300-task batch with the metrics
    registry + lifecycle tracing on (the default) vs fully disabled.

    The observability layer must stay within ~10% of the uninstrumented
    throughput; the assertion bound is looser (2x) because sub-second
    single-shot timings on shared CI machines are noisy, while the printed
    ratio documents the honest number.
    """
    import time

    def batch_seconds(**overrides):
        repro.init(num_nodes=1, num_cpus_per_node=4, **overrides)
        try:
            repro.get(noop.remote())  # warm up
            best = float("inf")
            for _ in range(3):
                start = time.perf_counter()
                repro.get([noop.remote() for _ in range(300)])
                best = min(best, time.perf_counter() - start)
            return best
        finally:
            repro.shutdown()

    def measure():
        on = batch_seconds()
        off = batch_seconds(metrics_enabled=False, trace_events_enabled=False)
        return on, off

    on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = on / off - 1.0
    print_table(
        "Metrics/tracing overhead (300-task batch, best of 3)",
        ["configuration", "seconds", "overhead"],
        [
            ("instrumented (default)", f"{on:.4f}", f"{overhead * 100:+.1f}%"),
            ("registry+tracing disabled", f"{off:.4f}", "baseline"),
        ],
    )
    assert on < off * 2.0


@pytest.mark.benchmark(group="micro")
def test_micro_summary(benchmark):
    """Print a one-table overview of real-runtime rates."""
    import time

    repro.init(num_nodes=1, num_cpus_per_node=4)
    try:
        repro.get(noop.remote())
        actor = CounterActor.remote()
        repro.get(actor.bump.remote())

        def measure():
            start = time.perf_counter()
            repro.get([noop.remote() for _ in range(400)])
            task_rate = 400 / (time.perf_counter() - start)
            start = time.perf_counter()
            repro.get([actor.bump.remote() for _ in range(400)])
            method_rate = 400 / (time.perf_counter() - start)
            return task_rate, method_rate

        task_rate, method_rate = benchmark.pedantic(measure, rounds=1, iterations=1)
        print_table(
            "Real-runtime microbenchmarks (pure Python, 1 node)",
            ["metric", "rate"],
            [
                ("stateless tasks", f"{task_rate:,.0f} tasks/s"),
                ("actor method calls", f"{method_rate:,.0f} calls/s"),
            ],
        )
        assert task_rate > 200
        assert method_rate > 200
    finally:
        repro.shutdown()
