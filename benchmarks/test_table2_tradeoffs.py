"""Table 2 — tasks vs. actors tradeoffs, measured.

The paper's Table 2 is qualitative; each row is demonstrated here as a
measurement on the *real* runtime:

| row | measurement |
|---|---|
| fine-grained load balancing (tasks) vs coarse (actors) | makespan of N slow calls as tasks (spread over nodes) vs methods on one actor (serialized) |
| object locality (tasks) vs poor locality (actors) | bytes transferred when computing on a remote large object |
| low overhead for small updates (actors) vs high (tasks) | time for a chain of tiny state updates held in an actor vs threaded through the object store |
| efficient failure handling (tasks) vs checkpoint overhead (actors) | work re-executed after a failure |
"""

import time

import numpy as np
import pytest

import repro
from benchmarks.conftest import print_table


@repro.remote
def slow_task(seconds):
    time.sleep(seconds)
    return 1


@repro.remote
class SlowActor:
    def call(self, seconds):
        time.sleep(seconds)
        return 1


@repro.remote
def consume_payload(payload):
    return len(payload)


@repro.remote
class PayloadActor:
    def consume(self, payload):
        return len(payload)


@repro.remote
def fold_task(state, x):
    return state + x


@repro.remote
class FoldActor:
    def __init__(self):
        self.state = 0

    def fold(self, x):
        self.state += x
        return self.state


@pytest.mark.benchmark(group="table2")
def test_table2_load_balancing(benchmark):
    """Row 1: stateless calls parallelize; one actor's methods serialize."""
    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        def run():
            count, duration = 16, 0.05
            start = time.perf_counter()
            repro.get([slow_task.remote(duration) for _ in range(count)], timeout=30)
            task_seconds = time.perf_counter() - start
            actor = SlowActor.remote()
            start = time.perf_counter()
            repro.get([actor.call.remote(duration) for _ in range(count)], timeout=60)
            actor_seconds = time.perf_counter() - start
            repro.kill(actor)
            return task_seconds, actor_seconds

        task_seconds, actor_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Table 2 row: load balancing (16 x 50 ms calls, 8 CPUs)",
            ["abstraction", "makespan"],
            [
                ("tasks (load-balanced)", f"{task_seconds * 1e3:.0f} ms"),
                ("one actor (serialized)", f"{actor_seconds * 1e3:.0f} ms"),
            ],
        )
        # Tasks use the whole cluster; the actor is a serial bottleneck.
        assert actor_seconds > 2.5 * task_seconds
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="table2")
def test_table2_locality(benchmark):
    """Row 2: tasks chase data; an actor's data must chase the actor."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4, spillback_threshold=0)
    try:
        def place_payload_on(node, size):
            """Pre-place a large object on a chosen node (adversarial to
            the actor, reachable by tasks)."""
            from repro.common.ids import ObjectID
            from repro.common.serialization import serialize

            oid = ObjectID.from_seed(f"payload-{node.node_id.hex()[:6]}-{size}")
            blob = serialize(b"x" * size)
            node.store.put(oid, blob)
            rt.gcs.add_object_location(oid, node.node_id)
            rt.gcs.add_object(oid, blob.total_bytes, None)
            return repro.ObjectRef(oid)

        def run():
            size = 20_000_000
            # The actor is placed first; the data then appears on the
            # *other* node — the "actors can't move to the data" scenario.
            actor = PayloadActor.remote()
            actor_node = rt.actors.get_state(actor.actor_id).node
            other = [n for n in rt.nodes() if n is not actor_node][0]
            payload = place_payload_on(other, size)

            before = rt.transfer.bytes_transferred
            repro.get([consume_payload.remote(payload) for _ in range(4)], timeout=60)
            task_bytes = rt.transfer.bytes_transferred - before

            before = rt.transfer.bytes_transferred
            repro.get([actor.consume.remote(payload) for _ in range(4)], timeout=60)
            actor_bytes = rt.transfer.bytes_transferred - before
            repro.kill(actor)
            return task_bytes, actor_bytes

        task_bytes, actor_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Table 2 row: locality (4 consumers of a 20 MB object)",
            ["abstraction", "bytes moved between stores"],
            [
                ("tasks (move to the data)", f"{task_bytes:,}"),
                ("actor (data moves to it)", f"{actor_bytes:,}"),
            ],
        )
        # Tasks chase the data (little or no transfer); the pinned actor
        # must pull the object across nodes.
        assert actor_bytes >= 20_000_000
        assert task_bytes < actor_bytes
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="table2")
def test_table2_small_updates(benchmark):
    """Row 3: actors mutate internal state; tasks must round-trip every
    update through the object store."""
    repro.init(num_nodes=1, num_cpus_per_node=2)
    try:
        def run():
            updates = 150
            actor = FoldActor.remote()
            start = time.perf_counter()
            for i in range(updates):
                last = actor.fold.remote(1)
            assert repro.get(last, timeout=30) == updates
            actor_seconds = time.perf_counter() - start
            repro.kill(actor)

            start = time.perf_counter()
            state = repro.put(0)
            for i in range(updates):
                state = fold_task.remote(state, 1)
            assert repro.get(state, timeout=60) == updates
            task_seconds = time.perf_counter() - start
            return actor_seconds, task_seconds

        actor_seconds, task_seconds = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Table 2 row: 150 tiny sequential state updates",
            ["abstraction", "total time", "per update"],
            [
                ("actor (internal state)", f"{actor_seconds * 1e3:.0f} ms",
                 f"{actor_seconds / 150 * 1e3:.2f} ms"),
                ("tasks (state through store)", f"{task_seconds * 1e3:.0f} ms",
                 f"{task_seconds / 150 * 1e3:.2f} ms"),
            ],
        )
        assert actor_seconds < task_seconds
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="table2")
def test_table2_failure_handling(benchmark):
    """Row 4: task lineage replays only what is needed; an un-checkpointed
    actor replays its whole method chain."""
    rt = repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        def run():
            # Tasks: a 12-deep chain; lose only the head object.
            ref = fold_task.remote(repro.put(0), 1)
            for _ in range(11):
                ref = fold_task.remote(ref, 1)
            assert repro.get(ref, timeout=30) == 12
            before = rt.reconstruction.reconstructed_tasks
            repro.free(ref)  # only the final object is lost
            assert repro.get(ref, timeout=30) == 12
            task_replays = rt.reconstruction.reconstructed_tasks - before

            # Actor: 12 methods, no checkpoints, crash-restart.
            actor = FoldActor.options(checkpoint_interval=None).remote()
            repro.get([actor.fold.remote(1) for _ in range(12)], timeout=30)
            before = rt.actors.replayed_methods
            repro.kill(actor, restart=True)
            assert repro.get(actor.fold.remote(1), timeout=60) == 13
            actor_replays = rt.actors.replayed_methods - before
            return task_replays, actor_replays

        task_replays, actor_replays = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Table 2 row: recovery work after losing the latest state",
            ["abstraction", "work re-executed"],
            [
                ("tasks (replay the lost object only)", task_replays),
                ("actor, no checkpoint (replay the chain)", actor_replays),
            ],
        )
        assert task_replays <= 2
        assert actor_replays >= 10
    finally:
        repro.shutdown()
