"""Figure 8a — locality-aware task placement.

Paper setup: 1000 tasks, each depending on one object pre-placed on one of
two nodes, input sizes 100 KB → 100 MB.  With locality-aware placement,
mean task latency stays flat in object size; without it (the placement
quality actor methods get), latency blows up by 1–2 orders of magnitude at
10–100 MB.

Regenerated on the simulated cluster with the same placement policies as
the real runtime.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import locality_tasks

SIZES = [100_000, 1_000_000, 10_000_000, 100_000_000]
NUM_TASKS = 400  # paper: 1000; scaled for bench runtime


def mean_latency(object_size: int, locality_aware: bool) -> float:
    cluster = SimCluster(
        SimConfig(
            num_nodes=2,
            cpus_per_node=16,
            locality_aware=locality_aware,
            spillback_threshold=0,  # all placement through the global scheduler
        )
    )
    tasks = locality_tasks(cluster, NUM_TASKS, object_size, seed=42)
    latencies = cluster.run_all(tasks, origins=[0] * len(tasks))
    return sum(latencies) / len(latencies)


def run_figure_8a():
    rows = []
    results = {}
    for size in SIZES:
        aware = mean_latency(size, True)
        unaware = mean_latency(size, False)
        results[size] = (aware, unaware)
        rows.append(
            (
                f"{size // 1000}KB" if size < 1e6 else f"{size // 1_000_000}MB",
                f"{aware * 1e3:.2f} ms",
                f"{unaware * 1e3:.2f} ms",
                f"{unaware / aware:.1f}x",
            )
        )
    print_table(
        "Figure 8a: mean task latency vs input size (2 nodes)",
        ["object size", "locality-aware", "unaware", "penalty"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_locality_aware_placement(benchmark):
    results = benchmark.pedantic(run_figure_8a, rounds=1, iterations=1)
    aware_small = results[SIZES[0]][0]
    aware_large = results[SIZES[-1]][0]
    # Paper shape 1: aware latency is ~independent of object size.
    assert aware_large < aware_small * 3
    # Paper shape 2: unaware latency is 1–2 orders worse at 10–100 MB.
    for size in (10_000_000, 100_000_000):
        aware, unaware = results[size]
        assert unaware > 5 * aware, f"{size}: {unaware / aware:.1f}x"
    assert results[100_000_000][1] / results[100_000_000][0] > 10
