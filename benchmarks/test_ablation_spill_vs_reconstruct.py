"""Ablation — eviction policy: spill to disk vs drop-and-reconstruct.

The paper evicts to disk (§4.2.3) *and* has lineage reconstruction; both
recover evicted objects, with different costs: spilling pays disk I/O at
eviction and restore, reconstruction pays recompute.  This bench measures
both policies on the same memory-pressured workload on the real runtime.
"""

import time

import pytest

import repro
from benchmarks.conftest import print_table

CAPACITY = 60_000
OBJECTS = 14
OBJECT_BYTES = 10_000
COMPUTE_SECONDS = 0.02  # recompute cost per object


@repro.remote
def expensive_block(i, compute_seconds):
    deadline = time.perf_counter() + compute_seconds
    while time.perf_counter() < deadline:
        pass
    return bytes([i % 256]) * OBJECT_BYTES


def run_policy(spill_directory):
    rt = repro.init(
        num_nodes=1,
        num_cpus_per_node=2,
        object_store_capacity_bytes=CAPACITY,
        object_spill_directory=spill_directory,
    )
    try:
        refs = [expensive_block.remote(i, COMPUTE_SECONDS) for i in range(OBJECTS)]
        for ref in refs:
            repro.get(ref, timeout=30)
        store = rt.nodes()[0].store
        assert store.eviction_count > 0  # memory pressure really occurred
        # Re-read everything (oldest first: worst case for LRU).
        start = time.perf_counter()
        for i, ref in enumerate(refs):
            value = repro.get(ref, timeout=30)
            assert value[0] == i % 256
        reread_seconds = time.perf_counter() - start
        return reread_seconds, rt.reconstruction.reconstructed_tasks, store.spill_count
    finally:
        repro.shutdown()


@pytest.mark.benchmark(group="ablation-spill")
def test_spill_vs_reconstruct(benchmark, tmp_path):
    def run():
        reconstruct = run_policy(spill_directory=None)
        spill = run_policy(spill_directory=str(tmp_path / "spill"))
        return reconstruct, spill

    (rec_time, rec_replays, _), (spill_time, spill_replays, spills) = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )
    print_table(
        "Ablation: recovering evicted objects (14 x 10 KB, 20 ms recompute)",
        ["policy", "re-read time", "tasks re-executed", "objects spilled"],
        [
            ("drop + lineage reconstruction", f"{rec_time * 1e3:.0f} ms", rec_replays, 0),
            ("spill to disk (paper §4.2.3)", f"{spill_time * 1e3:.0f} ms", spill_replays, spills),
        ],
    )
    # Reconstruction re-executes tasks; spilling re-executes none.
    assert rec_replays > 0
    assert spill_replays == 0
    assert spills > 0
    # With nontrivial recompute cost, disk restore wins.
    assert spill_time < rec_time
