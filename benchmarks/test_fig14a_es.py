"""Figure 14a — Evolution Strategies on Humanoid-v1: Ray vs reference.

Paper setup: time to reach a score of 6000, sweeping 256 → 8192 cores.
The Ray implementation (aggregation tree of actors) scales throughout,
reaching a median of 3.7 minutes at 8192 cores (2× the best published
result); the special-purpose reference system fails beyond 1024 cores
because its single driver saturates on result aggregation.

Regenerated with the shared ES workload model (Ray = tree aggregation;
reference = single-driver fold with queueing) plus an *executable* ES
training run on the real runtime, including the hierarchical-aggregation
code path, training CartPole to improvement.
"""

import math

import pytest

from benchmarks.conftest import print_table
from repro.baselines.reference_es import (
    ray_es_time_to_solve,
    reference_es_time_to_solve,
)

CORE_COUNTS = [256, 512, 1024, 2048, 4096, 8192]


def run_figure_14a():
    results = {}
    rows = []
    for cores in CORE_COUNTS:
        reference = reference_es_time_to_solve(cores)
        ray = ray_es_time_to_solve(cores, hierarchical=True)
        results[cores] = (reference, ray)
        rows.append(
            (
                cores,
                "x (failed)" if math.isinf(reference) else f"{reference / 60:.1f} min",
                f"{ray / 60:.1f} min",
            )
        )
    print_table(
        "Figure 14a: ES time to solve Humanoid (score 6000)",
        ["cores", "Reference ES", "Ray ES (paper: 3.7 min @ 8192)"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig14a")
def test_fig14a_es_scaling(benchmark):
    results = benchmark.pedantic(run_figure_14a, rounds=1, iterations=1)
    # The reference system completes at <=1024 cores and fails beyond.
    assert math.isfinite(results[1024][0])
    for cores in (2048, 4096, 8192):
        assert math.isinf(results[cores][0]), f"reference should fail at {cores}"
    # Ray scales all the way; paper median 3.7 min at 8192 cores.
    assert math.isfinite(results[8192][1])
    assert results[8192][1] / 60 == pytest.approx(3.7, rel=0.25)
    # Each doubling buys roughly 1.6x (paper's reported average).
    speedups = [
        results[c][1] / results[2 * c][1] for c in (256, 512, 1024, 2048, 4096)
    ]
    mean_speedup = sum(speedups) / len(speedups)
    assert 1.3 <= mean_speedup <= 1.9, f"mean doubling speedup {mean_speedup:.2f}"
    # Where both run, Ray is at least as fast as the reference.
    for cores in (256, 512, 1024):
        assert results[cores][1] <= results[cores][0] * 1.05


@pytest.mark.benchmark(group="fig14a")
def test_fig14a_executable_hierarchical_es(benchmark):
    """The real ES (with the aggregation-tree path) improves a policy."""
    import repro
    from repro.rl import ESConfig, EnvSpec, EvolutionStrategies, PolicySpec

    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        env_spec = EnvSpec("cartpole", max_steps=120)

        def run():
            es = EvolutionStrategies(
                env_spec,
                PolicySpec.for_env(env_spec, kind="linear"),
                ESConfig(
                    population_size=12,
                    sigma=0.3,
                    learning_rate=0.15,
                    hierarchical=True,
                    aggregation_fanout=4,
                    seed=3,
                ),
            )
            before = es.evaluate(episodes=3)
            es.train(6)
            return before, es.evaluate(episodes=3)

        before, after = benchmark.pedantic(run, rounds=1, iterations=1)
        assert after > before
    finally:
        repro.shutdown()
