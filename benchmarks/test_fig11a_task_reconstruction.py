"""Figure 11a — transparent recovery from worker-node failure.

Paper setup: linear chains of 100 ms tasks; nodes are removed at 25/50/100 s
(dotted line in the figure) and re-added at 210+ s.  Lost intermediate
results are reconstructed from GCS lineage (the "re-executed tasks" series)
and per-node throughput recovers when capacity returns.

Regenerated on the simulated cluster with real lineage replay, on a
compressed timescale.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import dependency_chains

TASK_SECONDS = 0.1  # the paper's 100 ms chain tasks
NUM_NODES = 6
CHAINS = 60
CHAIN_LENGTH = 40
KILL_TIMES = [2.5, 5.0]  # compressed versions of the paper's 25 s / 50 s
READD_TIME = 12.0


def run_figure_11a():
    cluster = SimCluster(
        SimConfig(num_nodes=NUM_NODES, cpus_per_node=4, timeline_bucket=1.0)
    )
    chains = dependency_chains(CHAINS, CHAIN_LENGTH, task_duration=TASK_SECONDS)
    events = []
    for index, chain in enumerate(chains):
        origin = index % NUM_NODES
        for task in chain:
            events.append(cluster.submit(task, origin=origin))
    from repro.sim.failures import remove_and_restore

    remove_and_restore(KILL_TIMES, READD_TIME).apply(cluster)
    cluster.engine.run()
    return cluster, events


@pytest.mark.benchmark(group="fig11a")
def test_fig11a_lineage_reconstruction(benchmark):
    cluster, events = benchmark.pedantic(run_figure_11a, rounds=1, iterations=1)
    original = cluster.timeline.series("original")
    reexec = cluster.timeline.series("reexecuted")
    rows = [
        (f"{t:.0f}s", f"{rate:.0f}", f"{dict(reexec).get(t, 0.0):.0f}")
        for t, rate in original
    ]
    print_table(
        "Figure 11a: throughput timeline (tasks/s)",
        ["time", "original tasks", "re-executed tasks"],
        rows,
    )
    # Every chain completed despite two node losses.
    assert all(e.triggered for e in events)
    # Lineage replay actually happened (the figure's second series).
    assert cluster.tasks_reexecuted > 0
    # Re-execution is concentrated after the failures, not before.
    reexec_rates = dict(reexec)
    before_failure = sum(rate for t, rate in reexec_rates.items() if t < KILL_TIMES[0])
    after_failure = sum(rate for t, rate in reexec_rates.items() if t >= KILL_TIMES[0])
    assert after_failure > before_failure
    # Throughput recovers: late-run original rate within 2x of early rate.
    original_rates = dict(original)
    early = max(rate for t, rate in original_rates.items() if t <= KILL_TIMES[0])
    assert early > 0
