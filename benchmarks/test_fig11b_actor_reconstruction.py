"""Figure 11b — actor reconstruction from checkpoints.

Paper setup: 2000 actors across 10 nodes; at t = 200 s two nodes are
killed, displacing 400 actors onto the survivors.  With checkpointing,
only ~500 methods are re-executed; without it, ~10 k replays are needed,
and checkpoint tasks appear as a third series.

Regenerated on the actor-failure simulation at reduced scale (200 actors),
preserving the 2-of-10-nodes failure fraction and the checkpointing
comparison.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim.actors import ActorFailureSimulation, ActorSimConfig

NUM_ACTORS = 200  # paper: 2000 (scaled 10x)
NUM_NODES = 10
KILL_AT = 100.0
HORIZON = 300.0
CHECKPOINT_INTERVAL = 10


def run(checkpoint_interval):
    sim = ActorFailureSimulation(
        ActorSimConfig(
            num_nodes=NUM_NODES,
            cores_per_node=8,
            num_actors=NUM_ACTORS,
            method_duration=0.4,
            checkpoint_interval=checkpoint_interval,
            checkpoint_duration=0.05,
            timeline_bucket=10.0,
        )
    )
    sim.run(horizon=HORIZON, kill_at=KILL_AT, kill_nodes=2)
    return sim


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_checkpointing_bounds_reconstruction(benchmark):
    def both():
        return run(CHECKPOINT_INTERVAL), run(None)

    with_ckpt, without = benchmark.pedantic(both, rounds=1, iterations=1)
    print_table(
        "Figure 11b: actor reconstruction cost",
        ["variant", "methods replayed", "checkpoints", "original methods"],
        [
            (
                f"checkpoint every {CHECKPOINT_INTERVAL}",
                with_ckpt.total_replayed,
                with_ckpt.total_checkpoints,
                with_ckpt.timeline.total["original"],
            ),
            (
                "no checkpointing",
                without.total_replayed,
                0,
                without.timeline.total["original"],
            ),
        ],
    )
    # 2 of 10 nodes → 20% of actors displaced (paper: 400 of 2000).
    displaced_fraction = NUM_ACTORS // NUM_NODES * 2 / NUM_ACTORS
    assert displaced_fraction == pytest.approx(0.2)
    # Paper headline: checkpointing cuts replays by an order of magnitude
    # (500 vs 10k ⇒ 20x there; ≥3x required at our scale).
    assert without.total_replayed > 3 * with_ckpt.total_replayed
    # Replay per displaced actor is bounded by the checkpoint interval.
    displaced = NUM_ACTORS // NUM_NODES * 2
    assert with_ckpt.total_replayed <= displaced * CHECKPOINT_INTERVAL
    # The checkpoint series exists only in the checkpointing run.
    assert with_ckpt.timeline.total.get("checkpoint", 0) > 0
    assert without.timeline.total.get("checkpoint", 0) == 0


@pytest.mark.benchmark(group="fig11b")
def test_fig11b_checkpoint_interval_sweep(benchmark):
    """Design ablation (DESIGN.md §4): the checkpoint interval trades
    steady-state checkpoint overhead against recovery replay cost."""
    intervals = [2, 5, 10, 25, 50]

    def sweep():
        return {interval: run(interval) for interval in intervals}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Fig 11b ablation: checkpoint interval trade-off",
        ["interval", "methods replayed", "checkpoints taken"],
        [
            (interval, sim.total_replayed, sim.total_checkpoints)
            for interval, sim in results.items()
        ],
    )
    replays = [results[i].total_replayed for i in intervals]
    checkpoints = [results[i].total_checkpoints for i in intervals]
    # Longer intervals ⇒ more replay on failure, fewer checkpoints.
    assert replays[0] < replays[-1]
    assert checkpoints[0] > checkpoints[-1]
    # Replay per displaced actor stays bounded by the interval.
    displaced = NUM_ACTORS // NUM_NODES * 2
    for interval in intervals:
        assert results[interval].total_replayed <= displaced * interval
