"""Figure 10a — GCS chain-replication fault tolerance.

Paper setup: a client reads/writes 25 B keys / 512 B values against a
2-replica chain as fast as it can; at t≈4.2 s a chain member is killed, a
new member joins and receives a state transfer.  The maximum
client-observed latency through the whole reconfiguration stays under
30 ms.

Regenerated against this repo's *real* chain-replication protocol on a
wall clock: per-hop delay is configured so steady-state latencies are in
the paper's regime, a member is killed mid-run, the master reconfigures on
the client's failure report, and a new member joins with state transfer.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.gcs.chain import ReplicatedChain

HOP_DELAY = 100e-6  # per-member apply delay → ~200 µs steady-state writes
RUN_SECONDS = 1.2
KILL_AT = 0.4


def run_figure_10a():
    chain = ReplicatedChain(
        num_replicas=2,
        hop_delay=HOP_DELAY,
        transfer_delay_per_entry=2e-6,
        failure_detection_delay=3e-3,  # detection+removal cost
    )
    writes, reads = [], []
    killed = False
    rejoined = False
    start = time.perf_counter()
    sequence = 0
    while True:
        now = time.perf_counter() - start
        if now > RUN_SECONDS:
            break
        if not killed and now >= KILL_AT:
            chain.kill_member(0)
            killed = True
        if killed and not rejoined and chain.chain_length() == 1:
            # Master admits a fresh member: state transfer to the new tail.
            chain.add_member()
            rejoined = True
        key = f"task-{sequence % 4096:04d}".ljust(25)
        value = b"v" * 512
        t0 = time.perf_counter()
        chain.put(key, value)
        writes.append((now, time.perf_counter() - t0))
        t0 = time.perf_counter()
        chain.get(key)
        reads.append((now, time.perf_counter() - t0))
        sequence += 1
    return chain, writes, reads


@pytest.mark.benchmark(group="fig10a")
def test_fig10a_reconfiguration_latency_bounded(benchmark):
    chain, writes, reads = benchmark.pedantic(run_figure_10a, rounds=1, iterations=1)
    steady = [latency for t, latency in writes if t < KILL_AT]
    during = [latency for t, latency in writes if t >= KILL_AT]
    max_write = max(latency for _t, latency in writes)
    max_read = max(latency for _t, latency in reads)
    print_table(
        "Figure 10a: GCS latency through chain reconfiguration",
        ["metric", "value", "paper"],
        [
            ("steady-state write (median)", f"{sorted(steady)[len(steady)//2]*1e6:.0f} us", "~hundreds of us"),
            ("max write latency", f"{max_write*1e3:.2f} ms", "< 30 ms"),
            ("max read latency", f"{max_read*1e3:.2f} ms", "< 30 ms"),
            ("reconfigurations", chain.reconfigurations, "2 (drop + join)"),
            ("chain length after", chain.chain_length(), "2 (restored)"),
        ],
    )
    assert chain.reconfigurations >= 2  # member dropped + member joined
    assert chain.chain_length() == 2  # 2-way replication restored
    # Paper headline: client-observed latency stays under 30 ms throughout.
    assert max_write < 0.030
    assert max_read < 0.030
    # All writes (including during reconfiguration) succeeded.
    assert len(during) > 0
    # Data written before the failure is still readable after it.
    assert chain.get("task-0000".ljust(25)) is not None
