"""Figure 9 — object store write throughput and IOPS.

Paper setup: a single client writes objects of 1 KB → 1 GB into the node's
store; throughput exceeds 15 GB/s for large objects (8 copy threads) and
18 K IOPS for small ones (overhead dominated by serialization + IPC).

Two parts here:

* a *model* sweep mirroring the paper's axes (threads × object size) with
  memcpy bandwidth/IPC constants calibrated to the paper's hardware;
* a *real* measurement of this repo's store (single-threaded Python, so
  absolute numbers are lower; the shape — throughput rising with object
  size, IOPS falling — is asserted).
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.common.ids import NodeID, ObjectID
from repro.common.serialization import serialize
from repro.core.object_store import LocalObjectStore
from repro.core.transfer import striped_copy

SIZES = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000]
THREAD_COUNTS = [1, 2, 4, 8, 16]

# Calibrated to the paper's m4.4xlarge: one memcpy thread ≈ 2.6 GB/s,
# saturating ~16 GB/s; per-put software overhead ≈ 52 µs.
PER_THREAD_MEMCPY = 2.6e9
MEMCPY_CAP = 16.5e9
PUT_OVERHEAD = 52e-6
SMALL_OBJECT_THRESHOLD = 500_000  # paper: >0.5 MB uses 8 threads


def modeled_put_seconds(size: int, threads: int) -> float:
    effective = min(threads * PER_THREAD_MEMCPY, MEMCPY_CAP)
    return PUT_OVERHEAD + size / effective


def run_model_sweep():
    rows = []
    results = {}
    for size in SIZES:
        by_threads = {}
        for threads in THREAD_COUNTS:
            used = threads if size > SMALL_OBJECT_THRESHOLD else 1
            seconds = modeled_put_seconds(size, used)
            by_threads[threads] = (size / seconds, 1.0 / seconds)
        results[size] = by_threads
        throughput, iops = by_threads[8]
        rows.append(
            (
                f"{size:,} B",
                f"{throughput / 1e9:.2f} GB/s",
                f"{iops / 1e3:.1f} K IOPS",
            )
        )
    print_table(
        "Figure 9 (model): store write throughput / IOPS (8 threads)",
        ["object size", "throughput (paper peak >15 GB/s)", "IOPS (paper ~18K small)"],
        rows,
    )
    return results


def run_real_measurement():
    rows = []
    results = {}
    import numpy as np

    for size in (1_000, 100_000, 10_000_000):
        store = LocalObjectStore(NodeID.from_seed("bench"))
        # numpy payloads go out-of-band, so striped_copy performs the same
        # real memcpy the transfer service would.
        payload = serialize(np.zeros(max(1, size // 8), dtype=np.float64))
        count = max(3, min(200, 40_000_000 // max(size, 1)))
        start = time.perf_counter()
        for i in range(count):
            store.put(ObjectID.from_seed(f"{size}-{i}"), striped_copy(payload))
        elapsed = time.perf_counter() - start
        throughput = count * size / elapsed
        iops = count / elapsed
        results[size] = (throughput, iops)
        rows.append(
            (f"{size:,} B", f"{throughput / 1e9:.3f} GB/s", f"{iops / 1e3:.2f} K IOPS")
        )
    print_table(
        "Figure 9 (real store, 1 Python thread)",
        ["object size", "throughput", "IOPS"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig9")
def test_fig9_model_reaches_paper_peaks(benchmark):
    results = benchmark.pedantic(run_model_sweep, rounds=1, iterations=1)
    # >15 GB/s for large objects with 8 threads.
    assert results[1_000_000_000][8][0] > 15e9
    # ≥18 K IOPS for small objects.
    assert results[1_000][1][1] >= 18_000
    # Thread scaling matters only for large objects.
    assert results[1_000_000_000][8][0] > 4 * results[1_000_000_000][1][0]
    assert results[1_000][8][1] == results[1_000][1][1]


@pytest.mark.benchmark(group="fig9")
def test_fig9_real_store_shape(benchmark):
    results = benchmark.pedantic(run_real_measurement, rounds=1, iterations=1)
    # Shape: byte throughput grows with object size; IOPS shrinks.
    assert results[10_000_000][0] > results[1_000][0]
    assert results[1_000][1] > results[10_000_000][1]
