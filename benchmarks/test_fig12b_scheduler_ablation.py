"""Figure 12b — scheduler latency ablation on allreduce.

Paper setup: 16-node, 100 MB ring allreduce with artificial task-execution
delays of +0/+1/+5/+10 ms injected into scheduling; a few milliseconds of
added latency nearly doubles completion time, which is why centralized
schedulers (tens of ms) cannot run this workload.

Regenerated with the same cost model used in Fig 12a plus the paper's
Related-Work arithmetic for a Dask-like centralized scheduler (3 k tasks/s
⇒ ~5 ms of scheduling per 16-task round).
"""

import pytest

from benchmarks.conftest import print_table
from repro.baselines.centralized import CentralizedSchedulerModel
from repro.sim.collectives import (
    RingAllreduceConfig,
    ring_allreduce_tasks,
    ring_allreduce_time,
)

OBJECT_SIZE = 100_000_000
DELAYS = [0.0, 1e-3, 5e-3, 10e-3]


def run_figure_12b():
    results = {}
    for delay in DELAYS:
        results[delay] = ring_allreduce_time(
            OBJECT_SIZE, RingAllreduceConfig(scheduler_delay=delay)
        )
    # The centralized-scheduler comparison from Related Work.
    dask_like = CentralizedSchedulerModel(service_time=1 / 3000, decision_latency=0.0)
    per_round_penalty = dask_like.allreduce_round_penalty(16)
    results["centralized"] = ring_allreduce_time(
        OBJECT_SIZE, RingAllreduceConfig(scheduler_delay=per_round_penalty)
    )
    rows = [
        (f"+{delay * 1e3:.0f} ms", f"{results[delay] * 1e3:.0f} ms",
         f"{results[delay] / results[0.0]:.2f}x")
        for delay in DELAYS
    ]
    rows.append(
        (
            "centralized (Dask-like)",
            f"{results['centralized'] * 1e3:.0f} ms",
            f"{results['centralized'] / results[0.0]:.2f}x",
        )
    )
    print_table(
        "Figure 12b: allreduce (16 nodes, 100 MB) vs injected scheduler latency",
        ["added latency", "iteration time", "slowdown"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig12b")
def test_fig12b_scheduler_latency_ablation(benchmark):
    results = benchmark.pedantic(run_figure_12b, rounds=1, iterations=1)
    base = results[0.0]
    # Monotonically worse with injected latency.
    assert results[1e-3] > base
    assert results[5e-3] > results[1e-3]
    assert results[10e-3] > results[5e-3]
    # Paper headline: "performance drops nearly 2x with just a few ms".
    assert results[5e-3] / base > 1.6
    assert results[10e-3] / base > 2.0
    # A centralized scheduler adds ≥5 ms/round → ~2x worse (Related Work).
    assert results["centralized"] / base > 1.7
    # Quadratic task pressure: the workload that makes throughput matter.
    assert ring_allreduce_tasks(16) == 480


@pytest.mark.benchmark(group="fig12b")
def test_fig12b_mechanistic_cross_check(benchmark):
    """The same experiment run *mechanistically* — the ring executed as
    real tasks through the simulated bottom-up scheduler — must show the
    same effect as the cost model."""
    from repro.sim.allreduce_sim import scheduler_delay_sweep

    def run():
        return scheduler_delay_sweep(
            [0.0, 1e-3, 5e-3, 10e-3], num_nodes=16, object_size=OBJECT_SIZE
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    base = sweep[0.0]
    print_table(
        "Figure 12b (mechanistic): ring executed through the sim scheduler",
        ["added latency", "completion", "slowdown"],
        [
            (f"+{d * 1e3:.0f} ms", f"{t * 1e3:.0f} ms", f"{t / base:.2f}x")
            for d, t in sweep.items()
        ],
    )
    assert sweep[5e-3] / base > 1.6  # "nearly 2x with just a few ms"
    assert sweep[10e-3] > sweep[5e-3] > sweep[1e-3] > base
