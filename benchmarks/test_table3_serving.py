"""Table 3 — embedded serving throughput: Ray actor vs Clipper REST.

Paper setup: client and server co-located on one machine.  Two workloads:
a residual-network policy (10 ms eval, 4 KB states) and a small
fully-connected policy (5 ms eval, 100 KB states), queried in batches of
64.  Ray reaches 6200 / 6900 states/s; Clipper (over REST) reaches 4400 /
290 — the large-input case collapses under REST serialization.

Regenerated with both data paths *executed for real*: the Ray side runs an
actor server on the runtime (shared-memory object path), the Clipper side
runs the same fixed-cost model evaluation behind real JSON/base64
encode-decode.  Model evaluation cost is identical across systems, as in
the paper.
"""

import pytest

import repro
from benchmarks.conftest import print_table
from repro.baselines.clipper import ClipperLikeServer
from repro.rl.serving import PolicyServer, _busy_wait, measure_serving_throughput

BATCH = 64
DURATION = 0.6
WORKLOADS = {
    # name: (eval seconds per batch, state bytes)
    "residual net, 4KB states": (0.010, 4_096),
    "small FC net, 100KB states": (0.005, 102_400),
}


def run_table3():
    results = {}
    for name, (eval_seconds, state_bytes) in WORKLOADS.items():
        states = [b"s" * state_bytes] * BATCH

        clipper = ClipperLikeServer(
            evaluate=lambda batch, t=eval_seconds: (_busy_wait(t), [0.0] * len(batch))[1],
            http_overhead=0.8e-3,
        )
        clipper_rate = clipper.measure_throughput(states, duration_seconds=DURATION)

        repro.init(num_nodes=1, num_cpus_per_node=4)
        try:
            server = PolicyServer.remote(eval_seconds=eval_seconds)
            ray_rate = measure_serving_throughput(
                server, states, duration_seconds=DURATION
            )
            repro.kill(server)
        finally:
            repro.shutdown()
        results[name] = (ray_rate, clipper_rate)
    print_table(
        "Table 3: serving throughput (states/s)",
        ["workload", "Ray (paper 6200/6900)", "Clipper (paper 4400/290)", "Ray/Clipper"],
        [
            (name, f"{ray:.0f}", f"{clipper:.0f}", f"{ray / clipper:.1f}x")
            for name, (ray, clipper) in results.items()
        ],
    )
    return results


@pytest.mark.benchmark(group="table3")
def test_table3_embedded_serving_beats_rest(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    small_ray, small_clipper = results["residual net, 4KB states"]
    large_ray, large_clipper = results["small FC net, 100KB states"]
    # Ray wins both workloads.
    assert small_ray > small_clipper
    assert large_ray > large_clipper
    # The large-input REST collapse: paper shows ~24x; require >3x and
    # that Clipper's large-input rate collapses versus its own small-input
    # rate while Ray's does not.
    assert large_ray / large_clipper > 3
    assert large_clipper < 0.5 * small_clipper
    assert large_ray > 0.5 * small_ray
