"""Figure 12a — allreduce: Ray vs Ray* (single-stream) vs OpenMPI.

Paper setup: ring allreduce on 16 m4.16xl nodes at 10 MB / 100 MB / 1 GB.
Ray completes 100 MB in ~200 ms and 1 GB in ~1200 ms, beating OpenMPI by
1.5× and 2× respectively thanks to multithreaded transfers; OpenMPI wins
at small sizes via its low-overhead small-message algorithm; Ray*
(1 transfer thread) loses the NIC-saturation advantage.

Regenerated with the ring-allreduce cost model (Ray variants) and the
OpenMPI execution-structure model, both calibrated from the paper's
constants.  A correctness run of the *executable* ring allreduce on the
real runtime accompanies the numbers.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import print_table
from repro.baselines.mpi_allreduce import OpenMPIConfig, openmpi_allreduce_time
from repro.rl.allreduce import ring_allreduce
from repro.sim.collectives import RingAllreduceConfig, ring_allreduce_time

SIZES = [10_000_000, 100_000_000, 1_000_000_000]


def run_figure_12a():
    results = {}
    rows = []
    for size in SIZES:
        ray = ring_allreduce_time(size, RingAllreduceConfig(streams=8))
        ray_star = ring_allreduce_time(size, RingAllreduceConfig(streams=1))
        mpi = openmpi_allreduce_time(size, OpenMPIConfig())
        results[size] = (ray, ray_star, mpi)
        rows.append(
            (
                f"{size // 1_000_000} MB",
                f"{ray * 1e3:.0f} ms",
                f"{ray_star * 1e3:.0f} ms",
                f"{mpi * 1e3:.0f} ms",
                f"{mpi / ray:.2f}x",
            )
        )
    print_table(
        "Figure 12a: 16-node allreduce completion time",
        ["size", "Ray", "Ray* (1 stream)", "OpenMPI", "OpenMPI/Ray"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig12a")
def test_fig12a_allreduce_vs_openmpi(benchmark):
    results = benchmark.pedantic(run_figure_12a, rounds=1, iterations=1)
    ray_100mb, _rs, mpi_100mb = results[100_000_000]
    ray_1gb, ray_star_1gb, mpi_1gb = results[1_000_000_000]
    # Paper magnitudes: ~200 ms @ 100 MB, ~1200 ms @ 1 GB.
    assert ray_100mb == pytest.approx(0.200, rel=0.25)
    assert ray_1gb == pytest.approx(1.200, rel=0.25)
    # Ray beats OpenMPI ~1.5x at 100 MB and ~2x at 1 GB.
    assert 1.3 <= mpi_100mb / ray_100mb <= 2.2
    assert 1.6 <= mpi_1gb / ray_1gb <= 3.5
    # OpenMPI wins at 10 MB (algorithm switch).
    ray_10mb, _rs10, mpi_10mb = results[10_000_000]
    assert mpi_10mb < ray_10mb
    # Ray* loses the multithreading advantage.
    assert ray_star_1gb > 1.5 * ray_1gb


@pytest.mark.benchmark(group="fig12a")
def test_fig12a_executable_allreduce_correctness(benchmark):
    """The real API-level ring allreduce computes correct sums."""
    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        arrays = [np.random.default_rng(i).standard_normal(1024) for i in range(4)]

        def run():
            return ring_allreduce(arrays)

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        for result in results:
            np.testing.assert_allclose(result, sum(arrays), atol=1e-9)
    finally:
        repro.shutdown()
