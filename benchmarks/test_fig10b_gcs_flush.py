"""Figure 10b — GCS memory footprint with and without flushing.

Paper setup: 50 M no-op tasks are submitted; without flushing the GCS
footprint grows linearly until memory is exhausted and the workload stalls
(the red ✗); with periodic flushing the footprint stays capped at a
user-configurable level while lineage lands on disk.

Regenerated against the real GCS + flusher with a scaled task count and a
simulated memory capacity: the shapes (linear growth to the cap vs bounded
sawtooth) are the assertion.
"""

import pytest

from benchmarks.conftest import print_table
from repro.common.ids import TaskID
from repro.gcs.client import GlobalControlStore
from repro.gcs.flush import GcsFlusher
from repro.gcs.tables import TaskStatus

TOTAL_TASKS = 4000  # paper: 50M; scaled
MEMORY_CAPACITY_ENTRIES = 1500  # the "memory capacity of the system"
FLUSH_CAP = 400


def submit_noop_tasks(gcs, start, count):
    for i in range(start, start + count):
        task_id = TaskID.from_seed(f"noop-{i}")
        gcs.add_task(task_id, None)
        gcs.update_task_status(task_id, TaskStatus.FINISHED)


def run(flushing: bool, tmp_path):
    gcs = GlobalControlStore(num_shards=2, num_replicas=1)
    flusher = (
        GcsFlusher(gcs, str(tmp_path / "flush.bin"), max_entries_in_memory=FLUSH_CAP)
        if flushing
        else None
    )
    footprint = []
    submitted = 0
    stalled_at = None
    batch = 200
    while submitted < TOTAL_TASKS:
        submit_noop_tasks(gcs, submitted, batch)
        submitted += batch
        if flusher is not None:
            flusher.maybe_flush()
        entries = gcs.num_entries()
        footprint.append((submitted, entries))
        if entries > MEMORY_CAPACITY_ENTRIES:
            stalled_at = submitted  # the paper's red ✗: OOM, workload stalls
            break
    return footprint, stalled_at, flusher


@pytest.mark.benchmark(group="fig10b")
def test_fig10b_flushing_bounds_memory(benchmark, tmp_path):
    def both():
        return run(False, tmp_path), run(True, tmp_path)

    (no_flush, stalled, _), (with_flush, stalled_flush, flusher) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    print_table(
        "Figure 10b: GCS entries vs tasks submitted",
        ["variant", "peak entries", "completed", "flushed to disk"],
        [
            (
                "no flushing",
                max(e for _s, e in no_flush),
                "STALLED (paper: x)" if stalled else "yes",
                0,
            ),
            (
                "with flushing",
                max(e for _s, e in with_flush),
                "yes" if not stalled_flush else "STALLED",
                flusher.flushed_entries,
            ),
        ],
    )
    # Without flushing: growth is ~linear and hits the memory cap → stall.
    assert stalled is not None and stalled < TOTAL_TASKS
    growth = [e for _s, e in no_flush]
    assert all(b > a for a, b in zip(growth, growth[1:]))
    # With flushing: completes, footprint bounded near the configured cap.
    assert stalled_flush is None
    assert max(e for _s, e in with_flush) <= FLUSH_CAP + 450
    assert flusher.flushed_entries >= TOTAL_TASKS * 0.8
