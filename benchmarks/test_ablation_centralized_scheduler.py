"""Ablation — bottom-up distributed scheduling vs a centralized scheduler.

Not a single figure, but the design argument running through Sections
4.2.2 and 6: centralized schedulers (Spark/CIEL ≈ tens of ms latency,
Dask ≈ 3 k tasks/s ceiling) cannot sustain Ray's fine-grained workloads.
This bench pits the simulated bottom-up cluster against the centralized
model on the Figure 8b workload, and also ablates GCS-decoupled dispatch
(the extra per-round RTT when object locations live in the scheduler).
"""

import pytest

from benchmarks.conftest import print_table
from repro.baselines.centralized import CentralizedSchedulerModel
from repro.sim import SimCluster, SimConfig
from repro.sim.collectives import RingAllreduceConfig, ring_allreduce_time
from repro.sim.workloads import empty_tasks

NUM_NODES = 20
TASKS = NUM_NODES * 400
TASK_SECONDS = 0.005  # 5 ms tasks — the paper's Section 2 sizing example


def run_ablation():
    # Bottom-up distributed scheduler (the simulated cluster).
    cluster = SimCluster(SimConfig(num_nodes=NUM_NODES, cpus_per_node=32))
    tasks = [t for t in empty_tasks(TASKS, duration=TASK_SECONDS)]
    cluster.run_all(tasks)
    bottom_up = TASKS / cluster.engine.now

    # Centralized schedulers at the paper's two reference points.
    dask_like = CentralizedSchedulerModel(service_time=1 / 3000, decision_latency=0.005)
    spark_like = CentralizedSchedulerModel(service_time=1 / 5000, decision_latency=0.02)
    durations = [TASK_SECONDS] * TASKS
    cores = NUM_NODES * 32
    dask_rate = TASKS / dask_like.makespan(durations, cores)
    spark_rate = TASKS / spark_like.makespan(durations, cores)

    # GCS-decoupled vs scheduler-coupled dispatch on allreduce.
    decoupled = ring_allreduce_time(100_000_000, RingAllreduceConfig())
    coupled = ring_allreduce_time(
        100_000_000, RingAllreduceConfig(coupled_dispatch=True)
    )

    print_table(
        "Ablation: scheduler architecture (5 ms tasks, 20 nodes x 32 cores)",
        ["architecture", "tasks/s"],
        [
            ("bottom-up distributed (Ray)", f"{bottom_up:,.0f}"),
            ("centralized, Dask-like (3k/s)", f"{dask_rate:,.0f}"),
            ("centralized, Spark-like", f"{spark_rate:,.0f}"),
        ],
    )
    print_table(
        "Ablation: dispatch decoupled from scheduling (100 MB allreduce)",
        ["design", "iteration time"],
        [
            ("object table in GCS (Ray)", f"{decoupled * 1e3:.0f} ms"),
            ("object table in scheduler", f"{coupled * 1e3:.0f} ms"),
        ],
    )
    return bottom_up, dask_rate, spark_rate, decoupled, coupled


@pytest.mark.benchmark(group="ablation")
def test_centralized_scheduler_is_the_bottleneck(benchmark):
    bottom_up, dask_rate, spark_rate, decoupled, coupled = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    # The centralized pipe caps near its service rate; bottom-up does not.
    assert dask_rate < 3100
    assert bottom_up > 20 * dask_rate
    assert bottom_up > 20 * spark_rate
    # Coupling dispatch to the scheduler adds a round trip per round.
    assert coupled > decoupled
