"""Benchmark harnesses: one module per table/figure of the paper."""
