"""Figure 8b — end-to-end scheduler scalability.

Paper setup: an embarrassingly parallel workload of empty tasks submitted
from drivers on every node; throughput scales near-linearly, passing 1 M
tasks/s at 60 nodes and 1.8 M tasks/s at 100 nodes.

Regenerated on the simulated cluster (local-scheduler service time
calibrated at 55 µs/task from the paper's own 1.8 M @ 100-node point); the
shape under test is the *linearity*.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import empty_tasks

NODE_COUNTS = [10, 20, 30, 40, 50, 60, 100]
TASKS_PER_NODE = 300  # paper drives 100M total; scaled for bench runtime


def throughput_at(num_nodes: int) -> float:
    cluster = SimCluster(SimConfig(num_nodes=num_nodes, cpus_per_node=32))
    tasks = empty_tasks(num_nodes * TASKS_PER_NODE)
    cluster.run_all(tasks)
    return len(tasks) / cluster.engine.now


def run_figure_8b():
    results = {}
    rows = []
    for nodes in NODE_COUNTS:
        rate = throughput_at(nodes)
        results[nodes] = rate
        rows.append((nodes, f"{rate / 1e6:.2f} M tasks/s"))
    print_table(
        "Figure 8b: task throughput vs cluster size",
        ["nodes", "throughput (paper: 1M @ 60, 1.8M @ 100)"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_linear_scalability(benchmark):
    results = benchmark.pedantic(run_figure_8b, rounds=1, iterations=1)
    # Paper headline points.
    assert results[60] >= 1.0e6, f"60 nodes: {results[60] / 1e6:.2f}M"
    assert results[100] >= 1.6e6, f"100 nodes: {results[100] / 1e6:.2f}M"
    # Near-linearity: rate per node stays within 15% across the sweep.
    per_node = [results[n] / n for n in NODE_COUNTS]
    assert max(per_node) / min(per_node) < 1.15
    # The paper's rightmost datapoint: 100M tasks in under a minute (54 s)
    # at 100 nodes.  At our measured rate:
    seconds_for_100m = 100e6 / results[100]
    print(f"\n100M tasks at 100 nodes: {seconds_for_100m:.0f}s (paper: 54s)")
    assert seconds_for_100m < 60
