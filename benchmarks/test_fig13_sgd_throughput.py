"""Figure 13 — distributed synchronous SGD throughput.

Paper setup: ResNet-101 (TF benchmark model) on 4–64 V100 GPUs, 4 GPUs per
node on 25 Gbps Ethernet; Ray's sharded-parameter-server SGD matches
Horovod and stays within 10% of Distributed TensorFlow in
``distributed_replicated`` mode.  The key Ray-side optimization is
pipelining gradient computation/transfer/summation within an iteration.

Regenerated with the shared compute-kernel cost model (all systems run the
same kernel; only synchronization differs) plus an *executable* run of the
real parameter-server SGD on the runtime to validate the system structure.
"""

import numpy as np
import pytest

import repro
from benchmarks.conftest import print_table
from repro.baselines.sgd_baselines import (
    distributed_tf_images_per_second,
    horovod_images_per_second,
    ray_sgd_images_per_second,
)
from repro.rl.sgd import SyncSGDTrainer, make_dataset

GPU_COUNTS = [4, 8, 16, 32, 64]


def run_figure_13():
    results = {}
    rows = []
    for gpus in GPU_COUNTS:
        horovod = horovod_images_per_second(gpus)
        dist_tf = distributed_tf_images_per_second(gpus)
        ray = ray_sgd_images_per_second(gpus)
        unpipelined = ray_sgd_images_per_second(gpus, pipelined=False)
        results[gpus] = (horovod, dist_tf, ray, unpipelined)
        rows.append(
            (
                gpus,
                f"{horovod:.0f}",
                f"{dist_tf:.0f}",
                f"{ray:.0f}",
                f"{unpipelined:.0f}",
            )
        )
    print_table(
        "Figure 13: images/s (ResNet-101-like kernel)",
        ["GPUs", "Horovod+TF", "Distributed TF", "Ray+TF", "Ray unpipelined (ablation)"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig13")
def test_fig13_sgd_throughput_parity(benchmark):
    results = benchmark.pedantic(run_figure_13, rounds=1, iterations=1)
    for gpus, (horovod, dist_tf, ray, unpipelined) in results.items():
        # Ray matches Horovod and is within 10% of Distributed TF.
        assert abs(ray - horovod) / horovod < 0.10, f"{gpus} GPUs"
        assert ray >= 0.90 * dist_tf, f"{gpus} GPUs"
        # The pipelining optimization is what buys the parity.
        assert unpipelined < ray
    # Near-linear scaling 4 → 64 GPUs.
    assert results[64][2] > 10 * results[4][2]


@pytest.mark.benchmark(group="fig13")
def test_fig13_mechanistic_cross_check(benchmark):
    """The PS-sharded structure *executed* through the simulated cluster
    tracks the model's unpipelined variant and scales near-linearly."""
    from repro.sim.sgd_sim import simulate_sync_sgd

    def run():
        return {gpus: simulate_sync_sgd(gpus) for gpus in (4, 16, 64)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figure 13 (mechanistic): PS-sharded SGD through the sim scheduler",
        ["GPUs", "images/s (mechanistic)", "model unpipelined"],
        [
            (
                gpus,
                f"{r.images_per_second:.0f}",
                f"{ray_sgd_images_per_second(gpus, pipelined=False):.0f}",
            )
            for gpus, r in results.items()
        ],
    )
    for gpus, result in results.items():
        model = ray_sgd_images_per_second(gpus, pipelined=False)
        assert result.images_per_second == pytest.approx(model, rel=0.3)
    assert results[64].images_per_second > 8 * results[4].images_per_second


@pytest.mark.benchmark(group="fig13")
def test_fig13_executable_parameter_server_sgd(benchmark):
    """The real sharded-PS pipeline on the runtime converges (structure
    check at laptop scale; the model above carries the magnitudes)."""
    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        features, targets, _w = make_dataset(600, 12, seed=5)

        def run():
            trainer = SyncSGDTrainer(
                features, targets, num_workers=3, num_ps_shards=2, learning_rate=0.3
            )
            losses = trainer.train(20)
            trainer.close()
            return losses

        losses = benchmark.pedantic(run, rounds=1, iterations=1)
        assert losses[-1] < 0.05 * losses[0]
    finally:
        repro.shutdown()
