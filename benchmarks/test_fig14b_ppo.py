"""Figure 14b — PPO on Humanoid-v1: Ray vs optimized MPI implementation.

Paper setup: time to reach a score of 6000 at three scales — 8 CPUs × 1
GPU, 64 × 8, 512 × 64.  The MPI implementation is symmetric (1 GPU per 8
CPUs, BSP gathers); Ray's asynchronous scatter-gather runs simulation on
CPU-only resources and needs at most 8 GPUs, outperforming MPI at every
scale (and cutting cost 4.5× by using cheap high-CPU instances).

Regenerated with the shared PPO workload model plus an *executable* PPO
training run (async wait-based collection on rollout actors) at laptop
scale.
"""

import pytest

from benchmarks.conftest import print_table
from repro.baselines.ppo_baseline import mpi_ppo_time_to_solve, ray_ppo_time_to_solve

CONFIGS = [(8, 1), (64, 8), (512, 64)]


def run_figure_14b():
    results = {}
    rows = []
    for cpus, gpus in CONFIGS:
        mpi = mpi_ppo_time_to_solve(cpus, gpus)
        ray = ray_ppo_time_to_solve(cpus, gpus)
        ray_gpus = min(gpus, 8)
        results[(cpus, gpus)] = (mpi, ray)
        rows.append(
            (
                f"{cpus}x{gpus}",
                f"{mpi / 60:.0f} min ({gpus} GPUs)",
                f"{ray / 60:.0f} min ({ray_gpus} GPUs)",
                f"{mpi / ray:.2f}x",
            )
        )
    print_table(
        "Figure 14b: PPO time to solve Humanoid (score 6000)",
        ["CPUs x GPUs", "MPI PPO", "Ray PPO", "MPI/Ray"],
        rows,
    )
    return results


@pytest.mark.benchmark(group="fig14b")
def test_fig14b_ppo_scaling(benchmark):
    results = benchmark.pedantic(run_figure_14b, rounds=1, iterations=1)
    for config, (mpi, ray) in results.items():
        # Ray outperforms the MPI implementation in all experiments...
        assert ray < mpi, f"{config}: ray {ray:.0f}s vs mpi {mpi:.0f}s"
    # ...while using at most 8 GPUs (same result at 64 GPUs as at 8).
    assert ray_ppo_time_to_solve(512, 64) == pytest.approx(
        ray_ppo_time_to_solve(512, 8)
    )
    # More resources help both systems.
    assert results[(512, 64)][0] < results[(8, 1)][0]
    assert results[(512, 64)][1] < results[(8, 1)][1]


@pytest.mark.benchmark(group="fig14b")
def test_fig14b_executable_async_ppo(benchmark):
    """The real asynchronous scatter-gather PPO improves CartPole."""
    import repro
    from repro.rl import EnvSpec, PPOConfig, PPOTrainer

    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:
        def run():
            trainer = PPOTrainer(
                EnvSpec("cartpole", max_steps=150),
                PPOConfig(
                    num_actors=3, steps_per_iteration=500, sgd_epochs=4, seed=1
                ),
            )
            rewards = trainer.train(5)
            trainer.close()
            return rewards

        rewards = benchmark.pedantic(run, rounds=1, iterations=1)
        assert max(rewards[2:]) > rewards[0]
    finally:
        repro.shutdown()
