"""Ablation — GCS sharding scales the control plane.

Section 7: "The GCS was also instrumental to Ray's horizontal scalability.
… we were able to scale by adding more shards whenever the GCS became a
bottleneck."  This bench makes that concrete: the Figure 8b workload with
the GCS write path modelled — every task performs 3 single-key writes,
each shard being a single-writer chain.  With one shard the cluster caps
at the shard's service rate regardless of node count; with enough shards
the bottom-up scheduler's linear scaling returns.
"""

import pytest

from benchmarks.conftest import print_table
from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import empty_tasks

NODES = 40
TASKS = NODES * 250
SHARD_COUNTS = [1, 2, 4, 8, 16, 64]


def throughput_with_shards(num_shards: int) -> float:
    cluster = SimCluster(
        SimConfig(num_nodes=NODES, cpus_per_node=32, gcs_shards=num_shards)
    )
    tasks = empty_tasks(TASKS)
    cluster.run_all(tasks)
    return TASKS / cluster.engine.now


def run_ablation():
    results = {n: throughput_with_shards(n) for n in SHARD_COUNTS}
    unmodelled = SimCluster(SimConfig(num_nodes=NODES, cpus_per_node=32))
    tasks = empty_tasks(TASKS)
    unmodelled.run_all(tasks)
    results["infinite"] = TASKS / unmodelled.engine.now
    print_table(
        f"Ablation: GCS shards vs task throughput ({NODES} nodes)",
        ["GCS shards", "tasks/s"],
        [(str(k), f"{v:,.0f}") for k, v in results.items()],
    )
    return results


@pytest.mark.benchmark(group="ablation-gcs")
def test_gcs_sharding_removes_the_bottleneck(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    # One shard caps throughput near its write service rate
    # (3 ops/task at 20 µs/op ⇒ ~16.7 K tasks/s).
    assert results[1] < 20_000
    # Adding shards scales the control plane back out.
    assert results[2] > 1.7 * results[1]
    assert results[8] > 6 * results[1]
    # With enough shards the GCS is off the critical path entirely:
    # within 25% of the unmodelled (infinite-GCS) cluster.
    assert results[64] > 0.75 * results["infinite"]
