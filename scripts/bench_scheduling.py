#!/usr/bin/env python
"""Scheduler-policy league: race every registered policy in the simulator.

Runs each policy in the registry (``repro.core.scheduling``) across three
workload shapes on a 32-node simulated cluster and writes the league table
to ``BENCH_scheduling.json``:

* **ep_noop** — embarrassingly parallel 1 ms no-ops, all submitted on one
  node (Figure 8b shape): pure scheduling fan-out, no data.
* **locality_fanin** — wide fan-in over 5 MB object groups pre-placed on
  home nodes (Figure 8a shape, widened): locality-aware policies pay no
  transfers, blind ones ship ~40 MB per miss.
* **skewed_actors** — 15% wide 4-CPU reservations among millisecond
  methods, 70% submitted from two hot nodes: backlog- and capacity-aware
  policies pull ahead.

Each row records tasks/sec, p50/p99 task latency (simulated clock), and
the wall-clock microseconds per placement decision (the policy's own
compute price).  The policy objects raced here are the *same classes* the
live runtime loads through ``repro.init(scheduler_policy=...)`` — the
final section spot-checks that: it boots a real runtime under each
policy, runs a fan-out of remote tasks, and verifies the policy-labelled
decision counters moved.

Run as:  PYTHONPATH=src python scripts/bench_scheduling.py [--smoke] [-o PATH]
``--smoke`` shrinks task counts for CI (2k tasks/shape) and still
requires every registered policy to finish every shape.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.scheduling import available_policies
from repro.sim.league import WORKLOADS, race

LIVE_SPOT_CHECK_TASKS = 200


def run_league(tasks: int, num_nodes: int, seed: int) -> list:
    rows = []
    for workload in WORKLOADS:
        for policy in available_policies():
            start = time.perf_counter()
            from repro.sim.league import race_one

            row = race_one(policy, workload, tasks, num_nodes=num_nodes, seed=seed)
            row["bench_wall_s"] = time.perf_counter() - start
            rows.append(row)
            print(
                f"  {workload:15s} {policy:14s} "
                f"{row['tasks_per_sec']:10.0f} tasks/s  "
                f"p50={row['p50_latency_ms']:8.2f}ms "
                f"p99={row['p99_latency_ms']:8.2f}ms  "
                f"place={row['placement_us']:6.1f}us"
            )
    return rows


def live_spot_check(policy: str, tasks: int) -> dict:
    """Boot a real runtime under ``policy`` and run a task fan-out."""
    import repro

    runtime = repro.init(
        num_nodes=4, num_cpus_per_node=2, scheduler_policy=policy
    )
    try:
        @repro.remote
        def noop(i):
            return i

        start = time.perf_counter()
        refs = [noop.remote(i) for i in range(tasks)]
        results = repro.get(refs)
        elapsed = time.perf_counter() - start
        assert results == list(range(tasks))
        decisions = 0.0
        for family in runtime.metrics.families():
            if family.name == "global_scheduler_decisions_total":
                for key, metric in family.series.items():
                    if ("policy", policy) in key:
                        decisions += metric.value
        return {
            "policy": policy,
            "tasks": tasks,
            "seconds": elapsed,
            "tasks_per_sec": tasks / elapsed,
            "policy_labelled_decisions": decisions,
        }
    finally:
        repro.shutdown()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("--tasks", type=int, default=None, help="tasks per shape")
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default="BENCH_scheduling.json")
    args = parser.parse_args()

    tasks = args.tasks if args.tasks is not None else (2_000 if args.smoke else 100_000)
    policies = available_policies()

    print(f"== league: {len(policies)} policies x {len(WORKLOADS)} shapes, "
          f"{tasks} tasks/shape, {args.nodes} nodes ==")
    rows = run_league(tasks, args.nodes, args.seed)

    expected = len(policies) * len(WORKLOADS)
    if len(rows) != expected:
        print(f"FAIL: expected {expected} league rows, got {len(rows)}")
        return 1
    for row in rows:
        if row["tasks"] != tasks:
            print(f"FAIL: row {row['policy']}/{row['workload']} completed "
                  f"{row['tasks']}/{tasks} tasks")
            return 1

    print("== live runtime spot check ==")
    spot_tasks = 50 if args.smoke else LIVE_SPOT_CHECK_TASKS
    spot_checks = []
    for policy in policies:
        check = live_spot_check(policy, spot_tasks)
        spot_checks.append(check)
        print(f"  {policy:14s} {check['tasks_per_sec']:8.0f} tasks/s  "
              f"policy-labelled decisions={check['policy_labelled_decisions']:.0f}")

    report = {
        "smoke": args.smoke,
        "tasks_per_shape": tasks,
        "num_nodes": args.nodes,
        "seed": args.seed,
        "policies": policies,
        "workloads": list(WORKLOADS),
        "league": rows,
        "live_spot_check": spot_checks,
    }
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
