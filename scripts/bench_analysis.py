#!/usr/bin/env python
"""Analyzer performance gate: a full strict scan must stay under 5 seconds.

The concurrency lint engine runs on every CI push (``analyze --strict``),
so its cost has to stay in lint territory, not test-suite territory.  This
benchmark times repeated full scans of the default corpus (``src/repro``
plus ``examples/`` and ``scripts/``; parse + all twelve rules + baseline
matching) and writes ``BENCH_analysis.json``:

* ``scan_seconds`` — best-of-N wall-clock for one full scan
* ``files_scanned`` / ``findings_total`` — scope of the measured scan
* ``per_file_ms`` — best scan divided by file count
* ``budget_seconds`` / ``within_budget`` — the 5 s gate

Exit status is non-zero when the scan blows the budget, so CI fails if a
rule regresses into accidentally-quadratic behaviour.

Run as:  PYTHONPATH=src python scripts/bench_analysis.py [--smoke] [-o PATH]
``--smoke`` runs a single iteration (CI); the default is best-of-3.
``--jobs N`` parses on N threads (passed through to the engine).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.tools.analysis import Baseline, analyze
from repro.tools.analyze import (
    default_baseline_path,
    default_scan_base,
    default_scan_paths,
)

BUDGET_SECONDS = 5.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="one iteration")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="parser threads"
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_analysis.json", help="result path"
    )
    args = parser.parse_args()

    baseline = Baseline.load(default_baseline_path())
    paths = default_scan_paths()
    jobs = max(1, args.jobs)
    iterations = 1 if args.smoke else 3

    best = None
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        report = analyze(
            paths, baseline=baseline, base=default_scan_base(), jobs=jobs
        )
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)

    result = {
        "benchmark": "analysis",
        "scan_seconds": round(best, 4),
        "files_scanned": report.files_scanned,
        "findings_total": len(report.findings),
        "new_findings": len(report.new),
        "per_file_ms": round(1000.0 * best / max(1, report.files_scanned), 3),
        "iterations": iterations,
        "jobs": jobs,
        "budget_seconds": BUDGET_SECONDS,
        "within_budget": best < BUDGET_SECONDS,
    }
    with open(args.output, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")
    print(json.dumps(result, indent=2, sort_keys=True))

    if not result["within_budget"]:
        print(
            f"FAIL: full scan took {best:.2f}s (budget {BUDGET_SECONDS}s)",
            file=sys.stderr,
        )
        return 1
    if result["new_findings"]:
        print("FAIL: scan found unbaselined findings", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
