#!/usr/bin/env python
"""Closed-loop autoscaler benchmark: a chaos-driven 10x load spike.

Boots a small reporter-enabled cluster with the autoscaler attached and
drives three load phases through it:

* **baseline** — light steady load on the starting cluster; establishes
  the reference p99 task latency.
* **spike** — 10x the batch size, with a planned chaos fault (a node kill
  via ``FaultSchedule``) landing at the spike's first batches, so the
  autoscaler faces overload *and* a shrunk cluster at once.  The policy
  loop must scale up (first restarting the killed node, then growing to
  ``max_nodes``) and pull p99 back under the bound before the phase ends.
* **recovery** — load returns to baseline; sustained idleness must scale
  the cluster back down.

Latency is measured closed-loop: every task receives its submission
timestamp and returns ``monotonic() - submit_ts`` at execution start plus
its service time, so the distribution captures queueing + scheduling +
execution — exactly what the autoscaler bounds.

The run's verdict is read back *through the dashboard*: the scale-up and
scale-down decisions must appear as ordered entries in the ``/events``
HTTP timeline, with the triggering metric values attached.  A final
overhead guard mirrors PR 2's metrics bench: a fixed task batch with
reporters enabled must cost < 2x the disabled-mode run.

Writes ``BENCH_autoscale.json``.  Run as:

    PYTHONPATH=src python scripts/bench_autoscale.py [--smoke] [-o PATH]

``--smoke`` shrinks the phases for CI and asserts the decision sequence
(scale-up then scale-down) rather than the latency bound.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request

import repro
from repro.common.faults import (
    KILL_NODE,
    FaultAction,
    FaultSchedule,
    FaultTrigger,
    PlannedFault,
)
from repro.tools.autoscaler import Autoscaler, AutoscalerConfig
from repro.tools.http_dashboard import DashboardServer


@repro.remote
def probe(submit_ts, service_seconds):
    waited = time.monotonic() - submit_ts
    time.sleep(service_seconds)
    return waited + service_seconds


def percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_phase(batch_size, num_batches, service_seconds):
    """Closed-loop load: submit a batch, wait for it, repeat."""
    latencies = []
    for _ in range(num_batches):
        futures = [
            probe.remote(time.monotonic(), service_seconds)
            for _ in range(batch_size)
        ]
        latencies.extend(repro.get(futures))
    return latencies


def summarize(name, latencies, live_nodes):
    return {
        "phase": name,
        "tasks": len(latencies),
        "p50_seconds": percentile(latencies, 0.50),
        "p99_seconds": percentile(latencies, 0.99),
        "mean_seconds": sum(latencies) / len(latencies) if latencies else 0.0,
        "live_nodes_at_end": live_nodes,
    }


def fetch_events(address, since=0):
    url = f"{address}/events?since={since}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def run_scenario(smoke):
    batches = 6 if smoke else 12
    baseline_batch, spike_batch = 4, 40  # the 10x spike
    service = 0.02
    # Chaos: kill the second node (never the driver's) once the spike's
    # load starts flowing — task-count trigger just past the baseline.
    baseline_tasks = baseline_batch * batches
    schedule = FaultSchedule(
        faults=[
            PlannedFault(
                trigger=FaultTrigger(after_tasks=baseline_tasks + spike_batch),
                action=FaultAction(KILL_NODE, target=1),
            )
        ]
    )
    runtime = repro.init(
        num_nodes=2,
        num_cpus_per_node=2,
        reporters_enabled=True,
        reporter_interval_seconds=0.05,
        fault_schedule=schedule,
    )
    server = runtime.register_ops(DashboardServer(runtime).start())
    scaler_config = AutoscalerConfig(
        high_watermark=3.0,
        low_watermark=0.5,
        hysteresis=2,
        cooldown_seconds=0.3,
        min_nodes=2,
        max_nodes=6,
        interval=0.05,
    )
    scaler = runtime.register_ops(Autoscaler(runtime, scaler_config))
    scaler.start()
    try:
        baseline = run_phase(baseline_batch, batches, service)
        spike = run_phase(spike_batch, batches, service)
        # Late-spike window: the batches after the policy had time to act.
        late_spike = spike[-(len(spike) // 4 or 1):]
        spike_peak_nodes = len(runtime.live_nodes())
        recovery = run_phase(baseline_batch, batches, service)
        # Give sustained idleness a moment to finish draining back down.
        deadline = time.monotonic() + (3.0 if smoke else 8.0)
        while (
            len(runtime.live_nodes()) > scaler_config.min_nodes
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)

        timeline = fetch_events(server.address)
        decisions = [
            e for e in timeline["events"]
            if e["category"] == "autoscaler_decision"
        ]
        faults = [
            e for e in timeline["events"] if e["category"] == "fault_injected"
        ]
        result = {
            "config": {
                "baseline_batch": baseline_batch,
                "spike_batch": spike_batch,
                "batches_per_phase": batches,
                "service_seconds": service,
                "high_watermark": scaler_config.high_watermark,
                "low_watermark": scaler_config.low_watermark,
                "hysteresis": scaler_config.hysteresis,
                "cooldown_seconds": scaler_config.cooldown_seconds,
                "min_nodes": scaler_config.min_nodes,
                "max_nodes": scaler_config.max_nodes,
            },
            "phases": [
                summarize("baseline", baseline, 2),
                summarize("spike", spike, spike_peak_nodes),
                summarize("recovery", recovery, len(runtime.live_nodes())),
            ],
            "late_spike_p99_seconds": percentile(late_spike, 0.99),
            "chaos_faults_injected": faults,
            "decisions": decisions,
            "nodes_at_peak": spike_peak_nodes,
            "nodes_at_end": len(runtime.live_nodes()),
        }
    finally:
        repro.shutdown()
    return result


def check(result, smoke):
    """The acceptance gates; returns the list of verdict strings."""
    verdicts = []
    decisions = result["decisions"]
    ups = [d["seq"] for d in decisions if d["action"] == "scale_up"]
    downs = [d["seq"] for d in decisions if d["action"] == "scale_down"]
    if not ups:
        raise SystemExit("FAIL: autoscaler never scaled up during the spike")
    if not downs:
        raise SystemExit("FAIL: autoscaler never scaled down after recovery")
    if min(ups) >= max(downs):
        raise SystemExit(
            f"FAIL: decisions out of order: first scale_up seq {min(ups)} "
            f"not before last scale_down seq {max(downs)}"
        )
    verdicts.append(
        f"decisions ordered: {len(ups)} scale_up then {len(downs)} scale_down"
    )
    if not result["chaos_faults_injected"]:
        raise SystemExit("FAIL: the planned chaos fault never fired")
    verdicts.append("chaos node kill visible in the /events timeline")
    if result["nodes_at_peak"] <= 2:
        raise SystemExit(
            f"FAIL: cluster never grew past its start size "
            f"(peak {result['nodes_at_peak']})"
        )
    verdicts.append(f"cluster grew to {result['nodes_at_peak']} nodes at peak")
    baseline_p99 = result["phases"][0]["p99_seconds"]
    late_p99 = result["late_spike_p99_seconds"]
    recovery_p99 = result["phases"][2]["p99_seconds"]
    bound = max(6.0 * baseline_p99, 0.5)
    result["p99_bound_seconds"] = bound
    if not smoke:
        if late_p99 > bound:
            raise SystemExit(
                f"FAIL: late-spike p99 {late_p99:.3f}s above bound {bound:.3f}s"
            )
        if recovery_p99 > bound:
            raise SystemExit(
                f"FAIL: recovery p99 {recovery_p99:.3f}s above bound {bound:.3f}s"
            )
    verdicts.append(
        f"p99 baseline {baseline_p99 * 1e3:.0f}ms, late-spike "
        f"{late_p99 * 1e3:.0f}ms, recovery {recovery_p99 * 1e3:.0f}ms "
        f"(bound {bound * 1e3:.0f}ms)"
    )
    return verdicts


def measure_overhead(smoke):
    """PR 2-style guard: the same batch with reporters on vs off."""
    num_tasks = 100 if smoke else 300
    timings = {}
    for label, enabled in (("disabled", False), ("enabled", True)):
        best = None
        for _ in range(2 if smoke else 3):
            repro.init(
                num_nodes=2,
                num_cpus_per_node=4,
                reporters_enabled=enabled,
                reporter_interval_seconds=0.05,
            )
            try:
                started = time.perf_counter()
                repro.get(
                    [probe.remote(time.monotonic(), 0.0) for _ in range(num_tasks)]
                )
                elapsed = time.perf_counter() - started
            finally:
                repro.shutdown()
            best = elapsed if best is None else min(best, elapsed)
        timings[label] = best
    ratio = timings["enabled"] / timings["disabled"]
    if ratio >= 2.0:
        raise SystemExit(
            f"FAIL: reporters cost {ratio:.2f}x on a {num_tasks}-task batch"
        )
    return {
        "tasks": num_tasks,
        "disabled_seconds": timings["disabled"],
        "enabled_seconds": timings["enabled"],
        "ratio": ratio,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short CI run: phase ordering asserted, "
                             "latency bound informational")
    parser.add_argument("-o", "--output", default="BENCH_autoscale.json")
    args = parser.parse_args()

    result = run_scenario(args.smoke)
    result["verdicts"] = check(result, args.smoke)
    result["reporter_overhead"] = measure_overhead(args.smoke)
    result["mode"] = "smoke" if args.smoke else "full"

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
        fh.write("\n")
    for verdict in result["verdicts"]:
        print("OK:", verdict)
    print(
        "OK: reporter overhead %.2fx on %d tasks"
        % (result["reporter_overhead"]["ratio"],
           result["reporter_overhead"]["tasks"])
    )
    print("wrote", args.output)


if __name__ == "__main__":
    sys.exit(main())
