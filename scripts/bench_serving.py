#!/usr/bin/env python
"""Serving benchmark: repro.serve vs the Clipper-like REST baseline (§4.1, Table 3).

Races the replica-group serving plane against :class:`ClipperLikeServer`
at **equal replica counts and identical model cost**, then stresses the
serve plane's failure path.  Writes ``BENCH_serving.json``:

* **batched_load** — closed-loop clients hammer both systems.  The model
  charges a fixed per-batch cost plus a per-item cost, so micro-batching
  amortizes the fixed cost across the batch while the REST baseline pays
  it (plus HTTP framing) per request.  Serve must win both QPS and p99.
* **low_load** (full mode) — a handful of clients, where batches rarely
  fill and the half-budget timeout cut bounds added latency.  Recorded
  for context; no win asserted (batching buys little without load).
* **chaos_recovery** — a seeded :class:`FaultSchedule` kills the node
  hosting one of two single-node-pinned replicas at peak load.  In-flight
  batches retry on the sibling, the :class:`ReplicaAutoscaler` restarts
  the dead node and replaces the dead replica, and the per-window p99
  timeline must recover to near its pre-kill level.

Run as:  PYTHONPATH=src python scripts/bench_serving.py [--smoke] [-o PATH]
``--smoke`` shrinks durations for CI and skips the timing-sensitive
verdicts (shared CI containers are too noisy to gate on).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

import repro
from repro import serve
from repro.baselines.clipper import ClipperLikeServer
from repro.common.errors import BackpressureError
from repro.common.faults import (
    KILL_NODE,
    FaultAction,
    FaultSchedule,
    FaultTrigger,
    PlannedFault,
)
from repro.common.metrics import percentile
from repro.tools.autoscaler import ReplicaAutoscaler, ReplicaAutoscalerConfig

# Identical injected model cost for both systems: a fixed per-batch charge
# (weight load / kernel launch analogue) plus a per-item charge.
MODEL_BASE_S = 0.003
MODEL_PER_ITEM_S = 0.00015


def _model_sleep(n_items: int) -> None:
    time.sleep(MODEL_BASE_S + MODEL_PER_ITEM_S * n_items)


def _latency_stats(latencies: List[float]) -> Dict[str, float]:
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "p50_ms": percentile(ordered, 50) * 1e3,
        "p99_ms": percentile(ordered, 99) * 1e3,
        "mean_ms": statistics.fmean(ordered) * 1e3,
    }


# ---------------------------------------------------------------------------
# Closed-loop client pools.
# ---------------------------------------------------------------------------


def _run_clients(
    num_clients: int,
    duration_seconds: float,
    issue_one,
) -> Tuple[List[Tuple[float, float]], int, int]:
    """Run ``num_clients`` closed-loop threads for ``duration_seconds``.

    ``issue_one(client_index)`` performs one request.  Returns
    ``(samples, shed, errors)`` where each sample is
    ``(completion_monotonic, latency_seconds)``.
    """
    samples: List[Tuple[float, float]] = []
    counters = {"shed": 0, "errors": 0}
    lock = threading.Lock()
    deadline = time.monotonic() + duration_seconds

    def client(index: int) -> None:
        while time.monotonic() < deadline:
            started = time.perf_counter()
            try:
                issue_one(index)
            except BackpressureError:
                with lock:
                    counters["shed"] += 1
                time.sleep(0.001)
                continue
            except Exception:
                # Chaos runs race requests against a node kill; a batch
                # whose retries are exhausted surfaces here.
                with lock:
                    counters["errors"] += 1
                continue
            sample = (time.monotonic(), time.perf_counter() - started)
            with lock:
                samples.append(sample)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=duration_seconds + 60)
    return samples, counters["shed"], counters["errors"]


# ---------------------------------------------------------------------------
# Section 1/2: serve vs Clipper at equal replica counts.
# ---------------------------------------------------------------------------


def _measure_serve(
    replicas: int, clients: int, duration_seconds: float
) -> Dict[str, object]:
    repro.init(num_nodes=2, num_cpus_per_node=4)
    try:

        @serve.deployment(
            num_replicas=replicas,
            max_batch_size=8,
            batch_wait_timeout_s=0.02,
            max_queue_per_replica=256,
        )
        class Model:
            def handle_batch(self, payloads):
                _model_sleep(len(payloads))
                return [p + 1 for p in payloads]

        handle = Model.deploy()
        for i in range(replicas * 4):  # warm every replica's code path
            assert handle.query(i, timeout=30) == i + 1

        samples, shed, errors = _run_clients(
            clients,
            duration_seconds,
            lambda i: handle.submit(i).result(timeout=60),
        )
        stats = handle.stats()
        section = _latency_stats([latency for _, latency in samples])
        section.update(
            {
                "qps": len(samples) / duration_seconds,
                "shed": shed,
                "errors": errors,
                "batches": stats["batches"],
                "avg_batch": stats["avg_batch"],
            }
        )
        return section
    finally:
        repro.shutdown()


def _measure_clipper(
    replicas: int, clients: int, duration_seconds: float
) -> Dict[str, object]:
    """Equal replica count: one lock-guarded REST server per replica (a
    replica evaluates one request at a time), clients spread round-robin."""

    def evaluate(states):
        _model_sleep(len(states))
        return [0.0] * len(states)

    servers = [
        (ClipperLikeServer(evaluate), threading.Lock()) for _ in range(replicas)
    ]
    payload = b"x" * 64

    def issue_one(index: int) -> None:
        server, lock = servers[index % replicas]
        with lock:
            server.query([payload])

    samples, _shed, errors = _run_clients(clients, duration_seconds, issue_one)
    section = _latency_stats([latency for _, latency in samples])
    section.update({"qps": len(samples) / duration_seconds, "errors": errors})
    return section


def bench_head_to_head(
    replicas: int, clients: int, duration_seconds: float
) -> Dict[str, object]:
    serve_side = _measure_serve(replicas, clients, duration_seconds)
    clipper_side = _measure_clipper(replicas, clients, duration_seconds)
    return {
        "replicas": replicas,
        "clients": clients,
        "duration_seconds": duration_seconds,
        "model": {"base_s": MODEL_BASE_S, "per_item_s": MODEL_PER_ITEM_S},
        "serve": serve_side,
        "clipper": clipper_side,
        "qps_speedup": serve_side["qps"] / max(1e-9, clipper_side["qps"]),
        "p99_ratio": serve_side["p99_ms"] / max(1e-9, clipper_side["p99_ms"]),
    }


# ---------------------------------------------------------------------------
# Section 3: chaos — replica-hosting node killed at peak load.
# ---------------------------------------------------------------------------


def bench_chaos_recovery(
    duration_seconds: float,
    kill_after_seconds: float,
    clients: int,
    window_seconds: float,
) -> Dict[str, object]:
    schedule = FaultSchedule(
        seed=11,
        faults=[
            PlannedFault(
                FaultTrigger(after_seconds=kill_after_seconds),
                FaultAction(KILL_NODE, target=1),
            )
        ],
    )
    runtime = repro.init(num_nodes=2, num_cpus_per_node=4, fault_schedule=schedule)
    scaler = None
    try:

        # num_cpus=3 on 4-CPU nodes forces one replica per node, so the
        # node kill takes out exactly one replica; max_restarts=0 makes it
        # permanently dead — recovery must come from the autoscaler's
        # restart-node + replace-replica reconciliation, with the sibling
        # absorbing retried batches meanwhile.
        @serve.deployment(
            num_replicas=2,
            num_cpus=3,
            max_restarts=0,
            max_batch_size=8,
            batch_wait_timeout_s=0.02,
            max_queue_per_replica=256,
        )
        class Model:
            def handle_batch(self, payloads):
                _model_sleep(len(payloads))
                return [p + 1 for p in payloads]

        handle = Model.deploy()
        for i in range(8):
            assert handle.query(i, timeout=30) == i + 1

        scaler = ReplicaAutoscaler(
            runtime,
            "Model",
            # Pin the size: this section isolates the reconcile path
            # (restart the dead node, replace the dead replica), so the
            # watermark policy must not trade replicas meanwhile.
            ReplicaAutoscalerConfig(min_replicas=2, max_replicas=2, interval=0.1),
            restart_dead_nodes=True,
        )
        scaler.start()

        load_start = time.monotonic()
        kill_seen: Dict[str, Optional[float]] = {"at": None}

        def watch_for_kill() -> None:
            while kill_seen["at"] is None:
                if any(e and e[0] == "planned" for e in schedule.event_log()):
                    kill_seen["at"] = time.monotonic() - load_start
                    return
                if time.monotonic() - load_start > duration_seconds:
                    return
                time.sleep(0.05)

        watcher = threading.Thread(target=watch_for_kill, daemon=True)
        watcher.start()
        samples, shed, errors = _run_clients(
            clients,
            duration_seconds,
            lambda i: handle.submit(i).result(timeout=60),
        )
        watcher.join(timeout=5)
        fault_log = [list(e) for e in schedule.event_log()]
        replaced = scaler.replaced
    finally:
        if scaler is not None:
            scaler.stop()
        repro.shutdown()

    applied = any("applied" in e for e in fault_log)
    kill_offset = kill_seen["at"]

    windows = []
    n_windows = int(duration_seconds / window_seconds)
    for w in range(n_windows):
        lo = load_start + w * window_seconds
        hi = lo + window_seconds
        lat = sorted(l for (t, l) in samples if lo <= t < hi)
        windows.append(
            {
                "window": w,
                "start_offset_s": w * window_seconds,
                "requests": len(lat),
                "qps": len(lat) / window_seconds,
                "p99_ms": percentile(lat, 99) * 1e3 if lat else None,
            }
        )

    kill_window = (
        int(kill_offset / window_seconds) if kill_offset is not None else None
    )
    pre = [
        w["p99_ms"]
        for w in windows
        if w["p99_ms"] is not None
        and (kill_window is None or w["window"] < kill_window)
    ]
    post = [w["p99_ms"] for w in windows[-3:] if w["p99_ms"] is not None]
    pre_p99 = statistics.median(pre) if pre else None
    post_p99 = statistics.median(post) if post else None
    dip_p99 = max(
        (w["p99_ms"] for w in windows if w["p99_ms"] is not None), default=None
    )
    recovery_ratio = (
        post_p99 / pre_p99 if pre_p99 and post_p99 is not None else None
    )
    return {
        "duration_seconds": duration_seconds,
        "clients": clients,
        "kill_after_seconds": kill_after_seconds,
        "kill_offset_seconds": kill_offset,
        "windows": windows,
        "pre_kill_p99_ms": pre_p99,
        "dip_p99_ms": dip_p99,
        "post_recovery_p99_ms": post_p99,
        "recovery_ratio": recovery_ratio,
        "replicas_replaced": replaced,
        "shed": shed,
        "errors": errors,
        "fault_applied": applied,
        "fault_log": fault_log,
    }


# ---------------------------------------------------------------------------


def check(report: Dict[str, object], smoke: bool) -> Dict[str, object]:
    """Acceptance verdicts; raises in full mode when a bar is missed."""
    sections = report["sections"]
    head = sections["batched_load"]
    chaos = sections["chaos_recovery"]
    verdicts = {
        "serve_wins_p99_under_batched_load": head["p99_ratio"] < 1.0,
        "serve_wins_qps_under_batched_load": head["qps_speedup"] > 1.0,
        "chaos_fault_applied": chaos["fault_applied"],
        "chaos_replica_replaced": chaos["replicas_replaced"] >= 1,
        "chaos_p99_recovered": (
            chaos["recovery_ratio"] is not None and chaos["recovery_ratio"] <= 2.5
        ),
    }
    if not smoke:
        failed = [name for name, ok in verdicts.items() if not ok]
        if failed:
            raise AssertionError(f"serving bench verdicts failed: {failed}")
    return verdicts


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("-o", "--output", default="BENCH_serving.json")
    args = parser.parse_args()

    if args.smoke:
        replicas, clients, duration = 2, 8, 2.0
        chaos_duration, kill_after, chaos_clients, window = 6.0, 2.5, 6, 0.5
    else:
        replicas, clients, duration = 2, 16, 8.0
        chaos_duration, kill_after, chaos_clients, window = 14.0, 6.0, 8, 1.0

    report: Dict[str, object] = {"smoke": args.smoke, "sections": {}}

    print("== batched_load ==")
    section = bench_head_to_head(replicas, clients, duration)
    report["sections"]["batched_load"] = section
    print(
        f"  serve {section['serve']['qps']:.0f} qps / p99 "
        f"{section['serve']['p99_ms']:.1f} ms vs clipper "
        f"{section['clipper']['qps']:.0f} qps / p99 "
        f"{section['clipper']['p99_ms']:.1f} ms "
        f"(qps x{section['qps_speedup']:.1f}, p99 ratio {section['p99_ratio']:.2f})"
    )

    if not args.smoke:
        print("== low_load ==")
        section = bench_head_to_head(replicas, 2, duration / 2)
        report["sections"]["low_load"] = section
        print(
            f"  serve p99 {section['serve']['p99_ms']:.1f} ms vs clipper "
            f"p99 {section['clipper']['p99_ms']:.1f} ms"
        )

    print("== chaos_recovery ==")
    section = bench_chaos_recovery(chaos_duration, kill_after, chaos_clients, window)
    report["sections"]["chaos_recovery"] = section
    print(
        f"  pre p99 {section['pre_kill_p99_ms'] and round(section['pre_kill_p99_ms'], 1)} ms, "
        f"dip {section['dip_p99_ms'] and round(section['dip_p99_ms'], 1)} ms, post "
        f"{section['post_recovery_p99_ms'] and round(section['post_recovery_p99_ms'], 1)} ms "
        f"(ratio {section['recovery_ratio'] and round(section['recovery_ratio'], 2)}), "
        f"replaced {section['replicas_replaced']} replica(s), "
        f"errors {section['errors']}"
    )

    report["verdicts"] = check(report, args.smoke)
    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
