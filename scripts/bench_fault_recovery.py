#!/usr/bin/env python
"""Fault-recovery benchmark: throughput under node kills, checkpoint restore.

Exercises the deterministic fault-injection subsystem end to end and writes
the results to ``BENCH_fault_recovery.json``:

* **fig10_throughput_recovery** — Figure 10 analogue: a sustained wave
  workload on 4 nodes while a seeded :class:`FaultSchedule` kills and then
  restarts two nodes at staggered task counts.  Records the per-wave
  throughput timeline; the acceptance bar is post-kill steady-state
  throughput recovering to >=80% of the pre-kill steady state.
* **fig11_actor_checkpoint** — Figure 11b analogue: a checkpointed counter
  actor whose node is killed mid-stream.  The actor must come back from its
  last checkpoint with no lost increments (replaying only the suffix),
  proving actor state survives node failure.
* **determinism** — two fresh same-seed chaos runs must inject the
  byte-identical canonical fault log (the subsystem's replay guarantee).
* **disabled_overhead** — the same wave workload with no schedule bound
  (the null injector) vs. an enabled schedule with nothing planned; the
  enabled-but-idle hooks must cost within noise of disabled.

Run as:  PYTHONPATH=src python scripts/bench_fault_recovery.py [--smoke] [-o PATH]
``--smoke`` shrinks the workload for CI and relaxes the recovery assertion
(timings in shared CI containers are too noisy to gate on).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import repro
from repro.common.faults import (
    KILL_NODE,
    RESTART_NODE,
    FaultAction,
    FaultSchedule,
    FaultTrigger,
    PlannedFault,
)
from repro.tools.chaos import ChaosRunner


# ---------------------------------------------------------------------------
# Section 1: Figure 10 analogue — throughput dip and recovery.
# ---------------------------------------------------------------------------


def bench_throughput_recovery(
    waves: int, width: int, task_seconds: float, assert_recovery: bool
) -> dict:
    total_tasks = waves * width
    first_kill = int(total_tasks * 0.30)
    schedule = FaultSchedule(
        seed=10,
        faults=[
            PlannedFault(
                FaultTrigger(after_tasks=first_kill),
                FaultAction(KILL_NODE, target=1),
            ),
            PlannedFault(
                FaultTrigger(after_tasks=int(total_tasks * 0.40)),
                FaultAction(RESTART_NODE, target=1),
            ),
            PlannedFault(
                FaultTrigger(after_tasks=int(total_tasks * 0.50)),
                FaultAction(KILL_NODE, target=2),
            ),
            PlannedFault(
                FaultTrigger(after_tasks=int(total_tasks * 0.60)),
                FaultAction(RESTART_NODE, target=2),
            ),
        ],
    )
    repro.init(num_nodes=4, num_cpus_per_node=4, fault_schedule=schedule)
    try:

        @repro.remote
        def work(x):
            time.sleep(task_seconds)
            return x + 1

        timeline = []
        refs = None
        for wave in range(waves):
            started = time.perf_counter()
            if refs is None:
                refs = [work.remote(i) for i in range(width)]
            else:
                refs = [work.remote(r) for r in refs]
            values = repro.get(refs, timeout=180)
            elapsed = time.perf_counter() - started
            timeline.append(
                {"wave": wave, "seconds": elapsed, "tasks_per_second": width / elapsed}
            )
        assert values == [i + waves for i in range(width)], "workload corrupted"
        event_log = [list(e) for e in schedule.event_log()]
    finally:
        repro.shutdown()

    # Steady states: waves fully before the first kill vs. the final
    # quarter of the run (all faults done by 60% of tasks).
    pre_waves = [
        w["tasks_per_second"]
        for w in timeline
        if (w["wave"] + 1) * width <= first_kill
    ]
    post_waves = [
        w["tasks_per_second"] for w in timeline[-max(2, waves // 4):]
    ]
    pre = statistics.median(pre_waves)
    post = statistics.median(post_waves)
    dip = min(w["tasks_per_second"] for w in timeline)
    recovery_ratio = post / pre
    section = {
        "waves": waves,
        "width": width,
        "task_seconds": task_seconds,
        "timeline": timeline,
        "pre_kill_tasks_per_second": pre,
        "post_recovery_tasks_per_second": post,
        "min_tasks_per_second": dip,
        "recovery_ratio": recovery_ratio,
        "fault_log": event_log,
    }
    applied = sum(1 for e in event_log if e and e[-1] == "applied")
    if applied != 4:
        raise AssertionError(f"expected 4 applied faults, saw {applied}")
    if assert_recovery and recovery_ratio < 0.8:
        raise AssertionError(
            f"throughput recovered to {recovery_ratio:.2f} of pre-kill "
            "steady state (< 0.8 bar)"
        )
    return section


# ---------------------------------------------------------------------------
# Section 2: Figure 11b analogue — actor checkpoint restore after node kill.
# ---------------------------------------------------------------------------


def bench_actor_checkpoint(increments: int, checkpoint_interval: int) -> dict:
    runtime = repro.init(num_nodes=3, num_cpus_per_node=2)
    try:

        @repro.remote(checkpoint_interval=checkpoint_interval)
        class Counter:
            def __init__(self):
                self.value = 0

            def add(self, amount):
                self.value += amount
                return self.value

            @repro.method(read_only=True)
            def total(self):
                return self.value

        counter = Counter.remote()
        half = increments // 2
        repro.get([counter.add.remote(1) for _ in range(half)])

        state = runtime.actors.get_state(counter.actor_id)
        killed_node = state.node.node_id
        kill_started = time.perf_counter()
        runtime.kill_node(killed_node)
        # The actor restarts from its checkpoint on a surviving node and
        # the remaining increments land on the rebuilt instance.
        refs = [counter.add.remote(1) for _ in range(increments - half)]
        repro.get(refs, timeout=60)
        total = repro.get(counter.total.remote(), timeout=60)
        recovery_seconds = time.perf_counter() - kill_started
        if total != increments:
            raise AssertionError(
                f"counter lost increments across the kill: {total} != {increments}"
            )
        replayed = runtime.actors.replayed_methods
        return {
            "increments": increments,
            "checkpoint_interval": checkpoint_interval,
            "final_value": total,
            "state_survived_kill": True,
            "replayed_methods": replayed,
            "recovery_seconds": recovery_seconds,
        }
    finally:
        repro.shutdown()


# ---------------------------------------------------------------------------
# Section 3: same-seed replay determinism.
# ---------------------------------------------------------------------------


def bench_determinism(seed: int) -> dict:
    runner = ChaosRunner(seed=seed, num_nodes=4, kills=2)
    first = runner.run()
    second = runner.run()
    identical = first.event_log == second.event_log
    if not identical:
        raise AssertionError("same-seed fault schedules diverged")
    return {
        "seed": seed,
        "runs": 2,
        "identical_fault_logs": identical,
        "signature": first.signature,
        "events": [list(e) for e in first.event_log],
        "applied": first.applied,
        "tasks_run": first.tasks_run,
    }


# ---------------------------------------------------------------------------
# Section 4: disabled-mode overhead.
# ---------------------------------------------------------------------------


def _timed_waves(waves: int, width: int, schedule) -> float:
    repro.init(num_nodes=4, num_cpus_per_node=4, fault_schedule=schedule)
    try:

        @repro.remote
        def bump(x):
            return x + 1

        started = time.perf_counter()
        refs = [bump.remote(i) for i in range(width)]
        for _ in range(1, waves):
            refs = [bump.remote(r) for r in refs]
        repro.get(refs, timeout=120)
        return time.perf_counter() - started
    finally:
        repro.shutdown()


def bench_disabled_overhead(waves: int, width: int, repeats: int) -> dict:
    # Interleave rounds so machine-load drift hits both configs equally.
    disabled, idle = [], []
    for _ in range(repeats):
        disabled.append(_timed_waves(waves, width, None))
        idle.append(_timed_waves(waves, width, FaultSchedule(seed=0)))
    best_disabled = min(disabled)
    best_idle = min(idle)
    return {
        "waves": waves,
        "width": width,
        "repeats": repeats,
        "disabled_seconds": best_disabled,
        "enabled_idle_seconds": best_idle,
        "overhead_ratio": best_idle / best_disabled,
    }


# ---------------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="small sizes for CI")
    parser.add_argument("-o", "--output", default="BENCH_fault_recovery.json")
    args = parser.parse_args()

    if args.smoke:
        waves, width, task_seconds = 10, 12, 0.002
        increments, ckpt = 12, 4
        overhead_waves, overhead_repeats = 4, 1
        assert_recovery = False
    else:
        waves, width, task_seconds = 24, 16, 0.005
        increments, ckpt = 40, 8
        overhead_waves, overhead_repeats = 8, 3
        assert_recovery = True

    report = {"smoke": args.smoke, "sections": {}}

    print("== fig10_throughput_recovery ==")
    section = bench_throughput_recovery(waves, width, task_seconds, assert_recovery)
    report["sections"]["fig10_throughput_recovery"] = section
    print(
        f"  pre {section['pre_kill_tasks_per_second']:.1f} tasks/s, dip "
        f"{section['min_tasks_per_second']:.1f}, post "
        f"{section['post_recovery_tasks_per_second']:.1f} "
        f"(recovery {section['recovery_ratio']:.2f})"
    )

    print("== fig11_actor_checkpoint ==")
    section = bench_actor_checkpoint(increments, ckpt)
    report["sections"]["fig11_actor_checkpoint"] = section
    print(
        f"  final value {section['final_value']}/{section['increments']}, "
        f"replayed {section['replayed_methods']} methods, recovered in "
        f"{section['recovery_seconds']:.3f}s"
    )

    print("== determinism ==")
    section = bench_determinism(seed=3)
    report["sections"]["determinism"] = section
    print(
        f"  {section['runs']} same-seed runs, identical logs: "
        f"{section['identical_fault_logs']} (signature {section['signature'][:12]})"
    )

    print("== disabled_overhead ==")
    section = bench_disabled_overhead(overhead_waves, width, overhead_repeats)
    report["sections"]["disabled_overhead"] = section
    print(
        f"  disabled {section['disabled_seconds']:.3f}s, enabled-idle "
        f"{section['enabled_idle_seconds']:.3f}s "
        f"(ratio {section['overhead_ratio']:.2f})"
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
