#!/usr/bin/env python
"""Task-throughput benchmark: sustained submit→finish tasks/sec.

Drives waves of no-op and tiny-payload tasks through a full runtime at
several fan-outs and measures sustained end-to-end throughput (every wave
is submitted and then ``get`` waits for all of its results), comparing:

* **baseline** — the pre-optimization control plane: per-call ``.remote()``
  submission, per-op GCS writes, a thread spawned per task, the full
  submit → (SCHEDULED → dispatcher → RUNNING) pipeline
  (``submit_fastpath=False, worker_pool=False, gcs_batched_writes=False``);
* **optimized** — the repo defaults plus ``submit_many`` batched
  submission: one GCS batch per shard for the wave's task rows and
  ``task_submitted`` events, interned task shapes, slab-allocated object
  IDs, the local-scheduler submit fast path (one RUNNING write, no
  global-scheduler hop) and the persistent worker pool.

Methodology follows ``bench_dataplane.py``: baseline/optimized rounds are
*interleaved* with a fresh runtime per round and best-of-``repeats`` per
configuration, so machine-load drift cancels instead of biasing one side;
and after warm-up each round sets a GCS ``hop_delay`` (200us smoke / 1ms
full — the same figures ``bench_dataplane.py`` uses) so chain-replica hops
cost what a remote Redis round-trip costs instead of a local dict insert.
That is the regime the paper's control plane is designed for, and it is
what makes write *count* the dominant term: the baseline pays ~20 chain
hops per task (existence read, per-op status/event writes, per-output
object writes) while the optimized path coalesces each wave into a few
shard batches.  Trace events stay enabled in both configurations (both pay
the observability tax), which also lets a final instrumented round
attribute the remaining per-task microseconds by phase (scheduling / fetch
/ execution / unattributed driver+finish overhead) from the PR 2 lifecycle
tracer.

Results go to ``BENCH_throughput.json``.  The headline is the peak
sustained no-op tasks/sec ratio; the full run enforces the >=10x
acceptance bar (smoke enforces a relaxed 2x bar — CI machines are noisy).

Run as:  PYTHONPATH=src python scripts/bench_throughput.py
         [--smoke] [--no-batch] [-o PATH]
``--smoke`` shrinks task counts for CI; ``--no-batch`` submits the
optimized waves through the per-op write path (``batched=False``), the
ablation that isolates what write coalescing itself buys.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import repro
from repro.tools.timeline import Timeline

# One node keeps the bench about per-task control-plane cost, not
# placement; the huge threshold keeps the (default) threshold spillback
# policy from bouncing deep waves through the global scheduler in *both*
# configurations.  16 CPU slots (no-op tasks hold a slot, not a core)
# give both configurations the same concurrency to hide chain-hop
# latency behind.
CLUSTER = dict(
    num_nodes=1, num_cpus_per_node=16, spillback_threshold=1_000_000
)

BASELINE = dict(
    submit_fastpath=False,
    worker_pool=False,
    gcs_batched_writes=False,
    gcs_client_cache=False,
)
OPTIMIZED: dict = {}  # the repo defaults


@repro.remote
def nop():
    return None


@repro.remote
def echo(x):
    return x


def _counter_value(runtime, name: str) -> float:
    for family in runtime.metrics.families():
        if family.name == name:
            return sum(metric.value for metric in family.series.values())
    return 0.0


def _set_gcs_hop_delay(runtime, hop_delay: float) -> None:
    for shard in runtime.gcs.kv.shards:
        shard.hop_delay = hop_delay


def _run_waves(fn, payload: bool, fanout: int, total: int, use_batch: bool,
               batched) -> None:
    done = 0
    while done < total:
        wave = min(fanout, total - done)
        # Single-task waves use ``.remote()`` even in batch mode: that is
        # the sequential-submission regime, and it is what exercises the
        # local scheduler's submit fast path (one coalesced RUNNING write,
        # direct worker dispatch).  ``submit_many`` is for real batches.
        if use_batch and wave > 1:
            calls = [((done + i,) if payload else ()) for i in range(wave)]
            refs = fn.submit_many(calls, batched=batched)
        elif payload:
            refs = [fn.remote(done + i) for i in range(wave)]
        else:
            refs = [fn.remote() for _ in range(wave)]
        repro.get(refs, timeout=120)
        done += total if total <= 0 else wave


def _throughput_once(
    config: dict,
    payload: bool,
    fanout: int,
    total: int,
    use_batch: bool,
    hop_delay: float,
    batched=None,
) -> tuple:
    runtime = repro.init(**CLUSTER, **config)
    try:
        fn = echo if payload else nop
        # Warm: function registration, worker pool spin-up, code paths.
        _run_waves(fn, payload, fanout, min(total, 2 * fanout), use_batch,
                   batched)
        _set_gcs_hop_delay(runtime, hop_delay)
        start = time.perf_counter()
        _run_waves(fn, payload, fanout, total, use_batch, batched)
        seconds = time.perf_counter() - start
        stats = {
            "gcs_hop_delay": hop_delay,
            "fastpath_dispatches": _counter_value(
                runtime, "scheduler_fastpath_total"
            ),
            "gcs_batch_writes": _counter_value(
                runtime, "gcs_batch_writes_total"
            ),
            "spillbacks": _counter_value(
                runtime, "scheduler_spillbacks_total"
            ),
        }
        return seconds, stats
    finally:
        repro.shutdown()


def bench_fanout(payload: bool, fanout: int, total: int, repeats: int,
                 hop_delay: float, batched) -> dict:
    results: dict = {}
    configs = (
        ("baseline", BASELINE, False),
        ("optimized", OPTIMIZED, True),
    )
    for _ in range(repeats):
        for label, config, use_batch in configs:
            seconds, stats = _throughput_once(
                config, payload, fanout, total, use_batch, hop_delay, batched
            )
            prior = results.get(label)
            if prior is None or seconds < prior["seconds"]:
                results[label] = {
                    "seconds": seconds,
                    "tasks": total,
                    "tasks_per_second": total / seconds,
                    **stats,
                }
    results["speedup"] = (
        results["optimized"]["tasks_per_second"]
        / results["baseline"]["tasks_per_second"]
    )
    return results


# ---------------------------------------------------------------------------
# Phase attribution: where do the remaining per-task microseconds go?
# The lifecycle tracer stitches task_submitted → task_scheduled →
# task_inputs_ready → task_finished into per-task phases; whatever the
# sustained wall-clock pays beyond those phases is driver-side submission,
# ``get`` wake-up, and finish-write latency ("unattributed").
# ---------------------------------------------------------------------------


def _phase_attribution(config: dict, fanout: int, total: int,
                       use_batch: bool, hop_delay: float) -> dict:
    runtime = repro.init(**CLUSTER, **config)
    try:
        _run_waves(nop, False, fanout, min(total, 2 * fanout), use_batch, None)
        _set_gcs_hop_delay(runtime, hop_delay)
        start = time.perf_counter()
        _run_waves(nop, False, fanout, total, use_batch, None)
        seconds = time.perf_counter() - start
        cycles = [
            c
            for c in Timeline(runtime).lifecycles()
            if c.submitted is not None and c.finished is not None
        ]

        def mean_us(values) -> float:
            values = list(values)
            return 1e6 * statistics.fmean(values) if values else 0.0

        scheduling = mean_us(c.scheduling_seconds for c in cycles)
        fetch = mean_us(c.fetch_seconds for c in cycles)
        execution = mean_us(c.execution_seconds for c in cycles)
        total_us = mean_us(c.finished - c.submitted for c in cycles)
        wall_us = 1e6 * seconds / total
        return {
            "tasks_traced": len(cycles),
            "wall_us_per_task": wall_us,
            "submit_to_finish_us": total_us,
            "scheduling_us": scheduling,
            "fetch_us": fetch,
            "execution_us": execution,
            "status_and_event_writes_us": max(
                0.0, total_us - scheduling - fetch - execution
            ),
            "driver_overhead_us": max(0.0, wall_us - total_us),
        }
    finally:
        repro.shutdown()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="submit optimized waves with batched=False (per-op GCS writes)",
    )
    parser.add_argument("-o", "--output", default="BENCH_throughput.json")
    args = parser.parse_args()

    if args.smoke:
        fanouts, total, repeats, bar, hop_delay = [1, 64], 200, 2, 2.0, 200e-6
    else:
        fanouts, total, repeats, bar, hop_delay = (
            [1, 32, 256], 1000, 3, 10.0, 1e-3
        )
    batched = False if args.no_batch else None

    report = {
        "smoke": args.smoke,
        "no_batch": args.no_batch,
        "acceptance_bar": bar,
        "gcs_hop_delay": hop_delay,
        "workloads": {},
    }

    peak = {"baseline": 0.0, "optimized": 0.0}
    for payload, name in ((False, "noop"), (True, "tiny_payload")):
        print(f"== {name} ==")
        sections = {}
        for fanout in fanouts:
            section = bench_fanout(
                payload, fanout, total, repeats, hop_delay, batched
            )
            sections[f"fanout_{fanout}"] = section
            base = section["baseline"]["tasks_per_second"]
            opt = section["optimized"]["tasks_per_second"]
            if not payload:
                peak["baseline"] = max(peak["baseline"], base)
                peak["optimized"] = max(peak["optimized"], opt)
            print(
                f"  fanout {fanout:>4}: baseline {base:8.0f} t/s, "
                f"optimized {opt:8.0f} t/s  ({section['speedup']:.1f}x, "
                f"fastpath {section['optimized']['fastpath_dispatches']:.0f})"
            )
        report["workloads"][name] = sections

    headline = peak["optimized"] / peak["baseline"] if peak["baseline"] else 0.0
    report["peak_noop_tasks_per_second"] = peak
    report["headline_speedup"] = headline
    print(f"== headline: {headline:.1f}x peak sustained no-op tasks/sec ==")

    # Attribute at fanout 1: deeper fan-outs conflate queueing delay with
    # scheduling cost (a task "scheduling" for 9ms was mostly waiting for a
    # CPU slot), while sequential waves measure the per-task critical path.
    print("== phase attribution (optimized, no-op, fanout 1) ==")
    attribution = _phase_attribution(
        OPTIMIZED, 1, min(total, 300), use_batch=True, hop_delay=hop_delay
    )
    report["phase_attribution"] = {"optimized": attribution}
    print(
        f"  wall {attribution['wall_us_per_task']:.0f}us/task = "
        f"scheduling {attribution['scheduling_us']:.0f}us + "
        f"fetch {attribution['fetch_us']:.0f}us + "
        f"execution {attribution['execution_us']:.0f}us + "
        f"writes {attribution['status_and_event_writes_us']:.0f}us + "
        f"driver {attribution['driver_overhead_us']:.0f}us"
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")

    if headline < bar:
        print(f"FAIL: headline speedup {headline:.2f}x < {bar:.0f}x bar")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
