#!/usr/bin/env python
"""Dashboard smoke check for CI: boot a small cluster, run a mixed
task+actor workload, then hit every dashboard endpoint and validate the
response shape — strict JSON where JSON is promised, well-formed
Prometheus exposition for /metrics, and the full documented series
catalog present.

Run as: PYTHONPATH=src python scripts/dashboard_smoke.py
Exits non-zero (with a message) on the first violation.
"""

import json
import sys
import urllib.request

import repro
from repro.tools.http_dashboard import DashboardServer

JSON_ENDPOINTS = (
    "/snapshot",
    "/profile",
    "/trace",
    "/timeline_trace",
    "/tasks",
    "/waits",
    "/metrics.json",
    "/critical_path",
    "/nodes",
    "/cluster_load",
    "/events",
)

REQUIRED_SERIES = (
    "scheduler_tasks_placed_total",
    "scheduler_queue_depth",
    "global_scheduler_decisions_total",
    "object_store_puts_total",
    "object_store_used_bytes",
    "transfer_bytes_total",
    "fetch_seconds",
    "gcs_ops_total",
    "gcs_publishes_total",
    "reconstruction_tasks_total",
    "tasks_submitted_total",
    "actor_methods_submitted_total",
    "wait_latency_seconds",
)


@repro.remote
def step(x):
    return x + 1


@repro.remote
class Tally:
    def __init__(self):
        self.total = 0

    def add(self, x):
        self.total += x
        return self.total


def strict_loads(body):
    def reject(token):
        raise SystemExit(f"FAIL: non-JSON constant {token!r} in response body")

    return json.loads(body, parse_constant=reject)


def fetch(address, path):
    with urllib.request.urlopen(address + path, timeout=10) as response:
        if response.status != 200:
            raise SystemExit(f"FAIL: GET {path} -> {response.status}")
        return response.read().decode("utf-8")


def check_prometheus(body):
    seen = set()
    for line in body.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise SystemExit(f"FAIL: unknown metric type line: {line!r}")
            seen.add(name)
        elif line.startswith("#"):
            continue
        else:
            name_part, _, value = line.rpartition(" ")
            if not name_part:
                raise SystemExit(f"FAIL: malformed sample line: {line!r}")
            float(value)  # must parse as a number
    missing = [name for name in REQUIRED_SERIES if name not in seen]
    if missing:
        raise SystemExit(f"FAIL: /metrics missing documented series: {missing}")


def check_ops_plane(address):
    """The PR 7 surface: reporter-backed /nodes and the /events cursor."""
    nodes = strict_loads(fetch(address, "/nodes"))
    if nodes["source"] != "reporters":
        raise SystemExit(f"FAIL: /nodes not reporter-backed: {nodes['source']}")
    if nodes["num_alive"] != 2:
        raise SystemExit(f"FAIL: /nodes num_alive {nodes['num_alive']} != 2")
    for node in nodes["nodes"]:
        if "backlog" not in node.get("report", {}):
            raise SystemExit(f"FAIL: /nodes row missing reporter fields: {node}")
    detail = strict_loads(
        fetch(address, "/nodes/" + nodes["nodes"][0]["node_id"][:8])
    )
    if detail["node_id"] != nodes["nodes"][0]["node_id"]:
        raise SystemExit("FAIL: /nodes/<prefix> returned the wrong node")

    full = strict_loads(fetch(address, "/events"))
    seqs = [e["seq"] for e in full["events"]]
    if not seqs or seqs != sorted(seqs):
        raise SystemExit(f"FAIL: /events not a non-empty ordered stream: {seqs}")
    cursor, paged = 0, []
    while True:
        page = strict_loads(fetch(address, f"/events?since={cursor}&limit=5"))
        if not page["events"]:
            break
        paged.extend(e["seq"] for e in page["events"])
        cursor = page["next_cursor"]
    if paged != seqs:
        raise SystemExit("FAIL: /events cursor pagination lost or re-sent events")


def main():
    repro.init(num_nodes=2, num_cpus_per_node=2, reporters_enabled=True)
    server = DashboardServer(repro.api._global_runtime).start()
    try:
        # Mixed workload: a dependency chain, parallel tasks, actor calls.
        ref = step.remote(0)
        for _ in range(3):
            ref = step.remote(ref)
        tally = Tally.remote()
        repro.get([step.remote(i) for i in range(8)])
        repro.get([tally.add.remote(i) for i in range(4)])
        assert repro.get(ref) == 4

        index = fetch(server.address, "/")
        if "<html>" not in index:
            raise SystemExit("FAIL: / did not return HTML")

        for path in JSON_ENDPOINTS:
            strict_loads(fetch(server.address, path))

        check_prometheus(fetch(server.address, "/metrics"))
        check_ops_plane(server.address)

        report = strict_loads(fetch(server.address, "/critical_path"))
        if len(report["steps"]) < 4:
            raise SystemExit(
                f"FAIL: critical path shorter than the 4-task chain: {report}"
            )
        if report["coverage"] < 0.9:
            raise SystemExit(f"FAIL: critical-path coverage {report['coverage']}")

        print(
            "dashboard smoke OK: / + %d JSON endpoints + /metrics "
            "(%d documented series verified) + ops plane "
            "(/nodes reporter rows, /events cursor), critical path %d steps "
            "at %.1f%% coverage"
            % (
                len(JSON_ENDPOINTS),
                len(REQUIRED_SERIES),
                len(report["steps"]),
                report["coverage"] * 100,
            )
        )
    finally:
        server.stop()
        repro.shutdown()


if __name__ == "__main__":
    sys.exit(main())
