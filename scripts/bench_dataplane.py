#!/usr/bin/env python
"""Zero-copy data-plane benchmark: cache, prefetch, striping, batched GCS.

Runs three paper-derived workloads twice — once with the data-plane
optimizations disabled (the pre-optimization baseline: no deserialized-value
cache, inline sequential fetches, per-op GCS writes) and once with the
defaults — and writes the comparison to ``BENCH_dataplane.json``:

* **fig9_repeated_reads** — Figure 9 analogue: repeated same-node reads of
  one large object.  The value cache turns every read after the first into
  a dictionary hit instead of a full ``pickle.loads``; the acceptance bar
  is >=3x read throughput.
* **fig12a_allreduce** — the executable ring allreduce from the Figure 12a
  benchmark (many medium objects crossing nodes; exercises prefetch +
  multi-replica striping + batched output writes).
* **fig13_sgd** — the executable sharded-parameter-server SGD from
  Figure 13 (broadcast-heavy: every worker reads every PS shard's
  parameters each step; the cache and batched writes both land here).

Each section records wall-clock, throughput, the cache hit ratio, and the
bytes the store/transfer layers physically copied
(``object_store_seal_bytes_total`` + ``transfer_bytes_total``).

Methodology: the runtime sections interleave baseline/optimized rounds
(fresh runtime per round, best-of-N per config) so machine-load drift
cancels instead of biasing one config.  The end-to-end speedups are
deliberately modest: every task still pays unbatched per-task control
writes (task table, status, trace log), which Amdahl-bounds what output
batching + prefetch can recover — the per-mechanism wins show up in the
recorded counters (cache hit ratio, batch writes, bytes copied).

Run as:  PYTHONPATH=src python scripts/bench_dataplane.py [--smoke] [-o PATH]
``--smoke`` shrinks sizes/iterations for CI and relaxes nothing else.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

import repro
from repro.common.ids import NodeID, ObjectID
from repro.common.serialization import serialize
from repro.core.object_store import LocalObjectStore
from repro.rl.allreduce import ring_allreduce
from repro.rl.sgd import SyncSGDTrainer, make_dataset

BASELINE = dict(
    value_cache_enabled=False, prefetch_parallelism=0, gcs_batched_writes=False
)
OPTIMIZED = dict(
    value_cache_enabled=True, prefetch_parallelism=8, gcs_batched_writes=True
)


def _counter_value(runtime, name: str) -> float:
    for family in runtime.metrics.families():
        if family.name == name:
            return sum(metric.value for metric in family.series.values())
    return 0.0


def _data_plane_stats(runtime) -> dict:
    hits = _counter_value(runtime, "value_cache_hits_total")
    misses = _counter_value(runtime, "value_cache_misses_total")
    reads = hits + misses
    return {
        "cache_hits": hits,
        "cache_misses": misses,
        "cache_hit_ratio": (hits / reads) if reads else 0.0,
        "bytes_copied": _counter_value(runtime, "object_store_seal_bytes_total")
        + _counter_value(runtime, "transfer_bytes_total"),
        "gcs_batch_writes": _counter_value(runtime, "gcs_batch_writes_total"),
        "prefetch_requests": _counter_value(runtime, "prefetch_requests_total"),
    }


# ---------------------------------------------------------------------------
# Section 1: Fig 9 analogue — repeated same-node reads of one large object.
# The hot object is a model-weights dict (many named arrays), the shape every
# Fig 13 SGD worker reads each step: without the cache each read re-runs
# pickle.loads over all layers; with it every read after the first is a hit.
# ---------------------------------------------------------------------------

WEIGHT_LAYERS = 64


def bench_repeated_reads(object_bytes: int, reads: int, cache_enabled: bool) -> dict:
    from repro.common.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    store = LocalObjectStore(
        NodeID.from_seed("bench"),
        metrics=metrics,
        value_cache_enabled=cache_enabled,
    )
    layer_elems = object_bytes // (8 * WEIGHT_LAYERS)
    payload = {
        f"layer_{i}": np.zeros(layer_elems, dtype=np.float64)
        for i in range(WEIGHT_LAYERS)
    }
    object_id = ObjectID.from_seed("hot-object")
    store.put(object_id, serialize(payload))
    store.load_value(object_id)  # warm (first read always deserializes)
    start = time.perf_counter()
    for _ in range(reads):
        value, found = store.load_value(object_id)
        assert found and len(value) == WEIGHT_LAYERS
    elapsed = time.perf_counter() - start
    stats = store.value_cache.stats() if store.value_cache else {}
    return {
        "object_bytes": object_bytes,
        "layers": WEIGHT_LAYERS,
        "reads": reads,
        "seconds": elapsed,
        "reads_per_second": reads / elapsed,
        "read_throughput_bytes_per_second": reads * object_bytes / elapsed,
        "cache_hit_ratio": (
            stats["hits"] / (stats["hits"] + stats["misses"])
            if stats and (stats["hits"] + stats["misses"])
            else 0.0
        ),
    }


# ---------------------------------------------------------------------------
# Sections 2+3: executable allreduce / SGD through a full runtime.  The GCS
# hop delay models the remote-Redis RTT the paper's GCS writes pay; the
# batched output writes amortize it.  Baseline and optimized rounds are
# *interleaved* (fresh runtime per round, best-of-``repeats`` per config) so
# machine-load drift over the run hits both configs equally instead of
# biasing whichever one happened to run during a busy window.
# ---------------------------------------------------------------------------


def _set_gcs_hop_delay(runtime, hop_delay: float) -> None:
    for shard in runtime.gcs.kv.shards:
        shard.hop_delay = hop_delay


def _interleaved(run_once, repeats: int) -> dict:
    results = {}
    for _ in range(repeats):
        for label, config in (("baseline", BASELINE), ("optimized", OPTIMIZED)):
            seconds, stats = run_once(config)
            prior = results.get(label)
            if prior is None or seconds < prior["seconds"]:
                results[label] = {"seconds": seconds, **stats}
    return results


def _allreduce_once(
    config: dict, array_elems: int, num_shards: int, loops: int, hop_delay: float
):
    runtime = repro.init(num_nodes=2, num_cpus_per_node=4, **config)
    try:
        arrays = [
            np.random.default_rng(i).standard_normal(array_elems)
            for i in range(num_shards)
        ]
        ring_allreduce(arrays)  # warm workers/function tables
        _set_gcs_hop_delay(runtime, hop_delay)
        start = time.perf_counter()
        for _ in range(loops):
            results = ring_allreduce(arrays)
        seconds = time.perf_counter() - start
        np.testing.assert_allclose(results[0], sum(arrays), atol=1e-8)
        return seconds, {
            "array_bytes": arrays[0].nbytes,
            "participants": num_shards,
            "allreduces_per_round": loops,
            "gcs_hop_delay": hop_delay,
            "reduced_bytes_per_second": (
                loops * num_shards * arrays[0].nbytes / seconds
            ),
            **_data_plane_stats(runtime),
        }
    finally:
        repro.shutdown()


def bench_allreduce(
    array_elems: int, num_shards: int, loops: int, repeats: int, hop_delay: float
) -> dict:
    section = _interleaved(
        lambda config: _allreduce_once(
            config, array_elems, num_shards, loops, hop_delay
        ),
        repeats,
    )
    for entry in section.values():
        entry["repeats"] = repeats
    return section


def _sgd_once(
    config: dict,
    samples: int,
    features: int,
    steps: int,
    num_workers: int,
    hop_delay: float,
):
    # Figure 13 scales data-parallel workers; several workers per node is
    # what makes the shared parameter reads cache-visible.
    runtime = repro.init(
        num_nodes=2, num_cpus_per_node=max(4, num_workers), **config
    )
    try:
        data, targets, _w = make_dataset(samples, features, seed=5)
        trainer = SyncSGDTrainer(
            data,
            targets,
            num_workers=num_workers,
            num_ps_shards=4,
            learning_rate=0.05,
        )
        trainer.train(1)  # warm actors/function tables
        _set_gcs_hop_delay(runtime, hop_delay)
        start = time.perf_counter()
        trainer.train(steps)
        seconds = time.perf_counter() - start
        trainer.close()
        return seconds, {
            "samples": samples,
            "features": features,
            "steps": steps,
            "workers": num_workers,
            "gcs_hop_delay": hop_delay,
            "steps_per_second": steps / seconds,
            **_data_plane_stats(runtime),
        }
    finally:
        repro.shutdown()


def bench_sgd(
    samples: int,
    features: int,
    steps: int,
    num_workers: int,
    repeats: int,
    hop_delay: float,
) -> dict:
    section = _interleaved(
        lambda config: _sgd_once(
            config, samples, features, steps, num_workers, hop_delay
        ),
        repeats,
    )
    for entry in section.values():
        entry["repeats"] = repeats
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument("-o", "--output", default="BENCH_dataplane.json")
    args = parser.parse_args()

    if args.smoke:
        object_bytes, reads = 8_000_000, 200
        allreduce_elems, allreduce_loops, repeats = 100_000, 1, 2
        sgd_samples, sgd_dim, sgd_steps, sgd_workers = 400, 5_000, 3, 4
        hop_delay = 200e-6
    else:
        object_bytes, reads = 80_000_000, 2000
        allreduce_elems, allreduce_loops, repeats = 500_000, 3, 6
        sgd_samples, sgd_dim, sgd_steps, sgd_workers = 1200, 50_000, 8, 8
        hop_delay = 1e-3

    report = {"smoke": args.smoke, "sections": {}}

    print("== fig9_repeated_reads ==")
    baseline = bench_repeated_reads(object_bytes, reads, cache_enabled=False)
    optimized = bench_repeated_reads(object_bytes, reads, cache_enabled=True)
    speedup = (
        optimized["read_throughput_bytes_per_second"]
        / baseline["read_throughput_bytes_per_second"]
    )
    report["sections"]["fig9_repeated_reads"] = {
        "baseline": baseline,
        "optimized": optimized,
        "speedup": speedup,
    }
    print(
        f"  baseline {baseline['reads_per_second']:.1f} reads/s, "
        f"optimized {optimized['reads_per_second']:.1f} reads/s "
        f"({speedup:.1f}x, hit ratio "
        f"{optimized['cache_hit_ratio']:.3f})"
    )
    if speedup < 3.0:
        print(f"FAIL: repeated-read speedup {speedup:.2f}x < 3x bar")
        return 1

    print("== fig12a_allreduce ==")
    section = bench_allreduce(
        allreduce_elems, 4, allreduce_loops, repeats, hop_delay
    )
    section["speedup"] = (
        section["baseline"]["seconds"] / section["optimized"]["seconds"]
    )
    report["sections"]["fig12a_allreduce"] = section
    print(
        f"  baseline {section['baseline']['seconds']:.3f}s, optimized "
        f"{section['optimized']['seconds']:.3f}s "
        f"({section['speedup']:.2f}x, hit ratio "
        f"{section['optimized']['cache_hit_ratio']:.3f})"
    )

    print("== fig13_sgd ==")
    section = bench_sgd(
        sgd_samples, sgd_dim, sgd_steps, sgd_workers, repeats, hop_delay
    )
    section["speedup"] = (
        section["baseline"]["seconds"] / section["optimized"]["seconds"]
    )
    report["sections"]["fig13_sgd"] = section
    print(
        f"  baseline {section['baseline']['seconds']:.3f}s, optimized "
        f"{section['optimized']['seconds']:.3f}s "
        f"({section['speedup']:.2f}x, hit ratio "
        f"{section['optimized']['cache_hit_ratio']:.3f})"
    )

    with open(args.output, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
