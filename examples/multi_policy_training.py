"""Train multiple policies in parallel (the Figure 4 caption).

"To train multiple policies in parallel, we could call
``train_policy.remote()`` multiple times."  Each training job is itself a
remote task that spawns its own Simulator actors and update tasks
(nested remote calls); the cluster multiplexes all jobs.

Run:  python examples/multi_policy_training.py
"""

import numpy as np

import repro
from repro.rl import EnvSpec, PolicySpec
from repro.rl.es import centered_ranks
from repro.rl.rollout import SimulatorActor


@repro.remote
def update_policy(params, rewards, noises, sigma, learning_rate):
    weights = centered_ranks(np.asarray(rewards))
    gradient = sum(w * n for w, n in zip(weights, noises)) / (sigma * len(noises))
    return np.asarray(params) + learning_rate * gradient


@repro.remote
def train_policy(job_name, env_spec, policy_spec, iterations, seed):
    """One full training job — launched several times in parallel."""
    rng = np.random.default_rng(seed)
    params = policy_spec.build(seed=seed).get_flat()
    simulators = [SimulatorActor.remote(env_spec, policy_spec) for _ in range(2)]
    best = -np.inf
    for _ in range(iterations):
        noises = [rng.standard_normal(params.size) for _ in simulators]
        rollout_refs = [
            sim.rollout.remote(repro.put(params + 0.3 * noise), None)
            for sim, noise in zip(simulators, noises)
        ]
        rewards = [r for r, _len in repro.get(rollout_refs)]
        best = max(best, max(rewards))
        params = repro.get(
            update_policy.remote(repro.put(params), rewards, noises, 0.3, 0.12)
        )
    return job_name, best


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)
    env_spec = EnvSpec("cartpole", max_steps=150)
    policy_spec = PolicySpec.for_env(env_spec, kind="linear")

    # Figure 4's parallel invocation: three independent training jobs.
    jobs = [
        train_policy.remote(f"policy-{i}", env_spec, policy_spec, 6, seed=i * 13)
        for i in range(3)
    ]
    print("three training jobs running concurrently...")
    for name, best in repro.get(jobs):
        print(f"  {name}: best rollout reward {best:.0f}")
    repro.shutdown()


if __name__ == "__main__":
    main()
