"""The GCS-backed tooling: inspector, profiler, timeline.

Because every piece of system state lives in the Global Control Store,
debugging tools need nothing from the components they observe (paper
Sections 4.2.1 and 7).  This example runs a small mixed workload, then
prints a cluster snapshot, a per-function profile, an ASCII execution
timeline, and writes a Chrome-trace file you can open in
``chrome://tracing``.

Run:  python examples/dashboard.py
"""

import time

import repro
from repro.tools import ClusterInspector, Profiler, Timeline


@repro.remote
def preprocess(batch_id):
    time.sleep(0.01)
    return batch_id * 2


@repro.remote
def train_step(a, b):
    time.sleep(0.03)
    return a + b


@repro.remote
class MetricsActor:
    def __init__(self):
        self.values = []

    def record(self, value):
        self.values.append(value)
        return len(self.values)


def main():
    runtime = repro.init(num_nodes=3, num_cpus_per_node=2)

    metrics = MetricsActor.remote()
    record_refs = []
    for round_index in range(4):
        batches = [preprocess.remote(i) for i in range(6)]
        merged = train_step.remote(batches[0], batches[1])
        # Submit the record without blocking — the actor runs its mailbox in
        # submission order — and drain all four acks in one batched get.
        record_refs.append(metrics.record.remote(merged))
    repro.get(record_refs)
    repro.get(merged)

    print("── cluster snapshot ─────────────────────────────────")
    print(ClusterInspector(runtime).snapshot().format())

    print("\n── per-function profile ─────────────────────────────")
    print(Profiler(runtime).format())

    print("\n── execution timeline ───────────────────────────────")
    timeline = Timeline(runtime)
    print(timeline.render_ascii(width=64))

    timeline.save_chrome_trace("/tmp/repro_trace.json")
    print("\nChrome trace written to /tmp/repro_trace.json "
          f"({timeline.span_count()} spans)")

    repro.shutdown()


if __name__ == "__main__":
    main()
