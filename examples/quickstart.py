"""Quickstart: the Ray API of Table 1 in two minutes.

Run:  python examples/quickstart.py
"""

import time

import repro


# A remote function: invoked with .remote(), returns a future immediately.
@repro.remote
def square(x):
    return x * x


# Remote functions can be nested and can block on their children.
@repro.remote
def sum_of_squares(n):
    futures = [square.remote(i) for i in range(n)]
    return sum(repro.get(futures))


# A class becomes an actor: stateful, methods execute serially.
@repro.remote
class RunningMean:
    def __init__(self):
        self.count = 0
        self.total = 0.0

    def add(self, value):
        self.count += 1
        self.total += value
        return self.total / self.count


@repro.remote
def slow_task(seconds, label):
    time.sleep(seconds)
    return label


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)

    # --- tasks ---------------------------------------------------------
    future = square.remote(7)  # non-blocking
    print("square(7) =", repro.get(future))  # blocking

    print("sum of squares 0..9 =", repro.get(sum_of_squares.remote(10)))

    # Futures chain without ever materializing intermediates locally.
    chained = square.remote(square.remote(3))
    print("square(square(3)) =", repro.get(chained))

    # --- put: share a large object by reference -------------------------
    big = repro.put(list(range(100_000)))

    @repro.remote
    def length(values):
        return len(values)

    print("len(big) =", repro.get(length.remote(big)))

    # --- actors ----------------------------------------------------------
    mean = RunningMean.remote()
    for value in (10.0, 20.0, 30.0):
        last = mean.add.remote(value)
    print("running mean =", repro.get(last))

    # --- wait: react to whichever task finishes first --------------------
    futures = [slow_task.remote(0.5, "tortoise"), slow_task.remote(0.05, "hare")]
    ready, pending = repro.wait(futures, num_returns=1)
    print("first finisher:", repro.get(ready[0]), f"({len(pending)} still running)")
    repro.get(pending)  # drain

    repro.shutdown()
    print("done.")


if __name__ == "__main__":
    main()
