"""Distributed synchronous SGD with a sharded parameter server.

The workload of paper Section 5.2.1 (Figure 13): model replicas (actors)
compute gradients in parallel against their data shards, push per-shard
gradients to parameter-server actors, and pull the summed update — all
expressed as futures so transfer overlaps compute.

Run:  python examples/parameter_server_sgd.py
"""

import numpy as np

import repro
from repro.rl.sgd import SyncSGDTrainer, make_dataset


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)

    features, targets, true_weights = make_dataset(
        num_samples=2000, dim=20, seed=7, noise=0.05
    )
    trainer = SyncSGDTrainer(
        features,
        targets,
        num_workers=3,  # model replicas (actors with data shards)
        num_ps_shards=2,  # parameter-server shards (actors)
        learning_rate=0.3,
    )

    print(f"{'iter':>4}  {'loss':>10}")
    for iteration in range(30):
        trainer.step()
        if iteration % 5 == 4:
            print(f"{iteration + 1:>4}  {trainer.loss():>10.6f}")

    learned = trainer.params()
    error = np.linalg.norm(learned - true_weights)
    print(f"\n||learned - true weights|| = {error:.4f}")
    trainer.close()
    repro.shutdown()


if __name__ == "__main__":
    main()
