"""Train a CartPole policy with distributed Evolution Strategies.

The workload of paper Section 5.3.1: every iteration broadcasts the policy
once, fans out a population of mirrored-perturbation rollout *tasks*, and
folds the results into a gradient — here with the hierarchical
aggregation-tree option that let the paper scale to 8192 cores.

Run:  python examples/rl_training_es.py
"""

import repro
from repro.rl import ESConfig, EnvSpec, EvolutionStrategies, PolicySpec


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)

    env_spec = EnvSpec("cartpole", max_steps=200)
    es = EvolutionStrategies(
        env_spec,
        PolicySpec.for_env(env_spec, kind="linear"),
        ESConfig(
            population_size=16,
            sigma=0.3,
            learning_rate=0.15,
            hierarchical=True,  # aggregation tree (nested remote tasks)
            aggregation_fanout=4,
            seed=0,
        ),
    )

    print(f"initial policy reward: {es.evaluate(episodes=5):8.1f}")
    for iteration in range(12):
        mean_reward = es.train_iteration()
        print(f"iteration {iteration + 1:2d}: population mean reward {mean_reward:8.1f}")
    final = es.evaluate(episodes=5)
    print(f"final policy reward:   {final:8.1f}  (200 = solved)")

    repro.shutdown()


if __name__ == "__main__":
    main()
