"""Explore the paper's scale experiments on the discrete-event simulator.

The in-process runtime executes real Python; the paper's headline numbers
(millions of tasks per second across 100 nodes) need the simulator.  This
example sweeps cluster size on the Figure 8b workload, then demonstrates
failure recovery on the Figure 11a chain workload.

Run:  python examples/cluster_scaling_sim.py
"""

from repro.sim import SimCluster, SimConfig
from repro.sim.workloads import dependency_chains, empty_tasks


def scaling_sweep():
    print("Figure 8b-style scaling sweep (empty tasks):")
    print(f"{'nodes':>6}  {'tasks/s':>12}")
    for nodes in (10, 25, 50, 100):
        cluster = SimCluster(SimConfig(num_nodes=nodes, cpus_per_node=32))
        tasks = empty_tasks(nodes * 300)
        cluster.run_all(tasks)
        print(f"{nodes:>6}  {len(tasks) / cluster.engine.now:>12,.0f}")


def failure_recovery():
    print("\nFigure 11a-style failure recovery (100 ms task chains):")
    cluster = SimCluster(SimConfig(num_nodes=6, cpus_per_node=4, timeline_bucket=1.0))
    chains = dependency_chains(num_chains=40, chain_length=30, task_duration=0.1)
    events = []
    for index, chain in enumerate(chains):
        for task in chain:
            events.append(cluster.submit(task, origin=index % 6))
    cluster.engine._schedule(3.0, lambda: cluster.kill_node(1))
    cluster.engine._schedule(6.0, lambda: cluster.kill_node(2))
    cluster.engine._schedule(10.0, lambda: cluster.add_node())
    cluster.engine.run()

    print(f"  all {len(events)} tasks completed: {all(e.triggered for e in events)}")
    print(f"  tasks re-executed from lineage: {cluster.tasks_reexecuted}")
    print("  throughput timeline (tasks/s): original | re-executed")
    reexec = dict(cluster.timeline.series("reexecuted"))
    for t, rate in cluster.timeline.series("original"):
        bar = "#" * int(rate / 10)
        print(f"  t={t:5.0f}s  {rate:6.0f} | {reexec.get(t, 0):6.0f}  {bar}")


if __name__ == "__main__":
    scaling_sweep()
    failure_recovery()
