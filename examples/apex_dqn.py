"""Ape-X-style distributed DQN: asynchronous actors + prioritized replay.

One of the algorithm families the paper reports building on Ray
(Section 7): experience actors step environments with ε-greedy policies
and stream transitions into a replay-buffer actor, while the learner
samples prioritized batches and feeds TD-error priorities back — all
coupled through actor method futures and ``wait``.

Run:  python examples/apex_dqn.py
"""

import repro
from repro.rl import ApexDQNTrainer, DQNConfig, EnvSpec


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)

    trainer = ApexDQNTrainer(
        EnvSpec("cartpole", max_steps=200),
        DQNConfig(
            num_actors=3,
            collect_steps_per_round=60,
            learn_starts=300,
            batch_size=64,
            prioritized=True,
            learning_rate=5e-3,
            seed=0,
        ),
    )

    print(f"{'round':>5} {'env steps':>10} {'td error':>9} {'recent reward':>14}")
    for round_index in range(20):
        stats = trainer.train_round()
        if round_index % 2 == 1:
            print(
                f"{round_index + 1:>5} {stats['env_steps']:>10}"
                f" {stats['mean_td_error']:>9.3f} {stats['recent_reward']:>14.1f}"
            )

    print(f"\ngreedy-policy episode reward: {trainer.greedy_episode_reward():.0f}")
    trainer.close()
    repro.shutdown()


if __name__ == "__main__":
    main()
