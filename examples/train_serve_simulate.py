"""The paper's Figure 1 loop: training + serving + simulation, coupled.

This is the program the whole paper argues for: one application that
*simulates* (Simulator actors stepping an environment), *serves* (a policy
server answering action queries inside the same cluster), and *trains*
(policy updates from the gathered rollouts) — with no frameworks stitched
together and no data leaving the object store.

Run:  python examples/train_serve_simulate.py
"""

import numpy as np

import repro
from repro.rl import EnvSpec, PolicySpec, PolicyServer
from repro.rl.es import centered_ranks
from repro.rl.rollout import SimulatorActor


@repro.remote
def update_policy(params, rewards, noises, sigma=0.25, learning_rate=0.1):
    """ES-style policy improvement from the rollout scores (Training)."""
    rewards = np.asarray(rewards)
    weights = centered_ranks(rewards)
    gradient = sum(w * n for w, n in zip(weights, noises)) / (
        sigma * len(noises)
    )
    return np.asarray(params) + learning_rate * gradient


def main():
    repro.init(num_nodes=2, num_cpus_per_node=4)

    env_spec = EnvSpec("cartpole", max_steps=200)
    policy_spec = PolicySpec.for_env(env_spec, kind="linear")
    params = policy_spec.build(seed=0).get_flat()
    rng = np.random.default_rng(0)

    # Simulation: a pool of stateful Simulator actors (paper Figure 3).
    simulators = [SimulatorActor.remote(env_spec, policy_spec) for _ in range(4)]

    for iteration in range(10):
        params_ref = repro.put(params)  # broadcast once
        noises = [rng.standard_normal(params.size) for _ in simulators]
        # Each simulator evaluates a perturbed policy (Simulation+Serving).
        rollout_refs = [
            sim.rollout.remote(repro.put(params + 0.25 * noise), None)
            for sim, noise in zip(simulators, noises)
        ]
        rewards = [reward for reward, _len in repro.get(rollout_refs)]
        # Training: improve the policy from the trajectories.
        params = repro.get(update_policy.remote(params_ref, rewards, noises))
        print(f"iteration {iteration + 1:2d}: rewards {[f'{r:5.0f}' for r in rewards]}")

    # Serving: expose the trained policy to clients in the same cluster.
    server = PolicyServer.remote(policy_spec, params)
    states = [np.zeros(4) for _ in range(8)]
    actions = repro.get(server.serve.remote(states))
    print("served actions for 8 fresh states:", actions)

    repro.kill(server)
    repro.shutdown()


if __name__ == "__main__":
    main()
