"""Fault tolerance demo: lose a node mid-computation, keep going.

Shows the two recovery paths of paper Section 4.2.3 / Figure 11 running
for real in the in-process cluster:

1. **Task lineage replay** — intermediate objects lost with a node are
   reconstructed by re-executing their producing tasks from the GCS task
   table.
2. **Actor checkpoint replay** — an actor lost with its node is rebuilt
   on a survivor from its last checkpoint, replaying only the methods
   executed since.

Run:  python examples/fault_tolerance_demo.py
"""

import repro


@repro.remote
def refine(x):
    """One stage of a dependency chain (each output feeds the next)."""
    return x + 1


@repro.remote(checkpoint_interval=5)
class TallyActor:
    def __init__(self):
        self.total = 0

    def add(self, n):
        self.total += n
        return self.total


def main():
    runtime = repro.init(num_nodes=3, num_cpus_per_node=2)

    # --- 1. task lineage -------------------------------------------------
    ref = refine.remote(0)
    for _ in range(9):
        ref = refine.remote(ref)
    print("chain result before failure:", repro.get(ref))

    victim = [n for n in runtime.nodes() if n is not runtime.driver_node][0]
    print(f"killing node {victim.node_id.hex()[:8]} "
          f"(held {victim.store.num_objects()} objects)...")
    runtime.kill_node(victim.node_id)

    extended = refine.remote(ref)  # may need lost ancestors -> replay
    print("chain result after failure: ", repro.get(extended))
    print("tasks re-executed via lineage:",
          runtime.reconstruction.reconstructed_tasks)

    # --- 2. actor checkpoint replay --------------------------------------
    tally = TallyActor.remote()
    for i in range(12):
        last = tally.add.remote(1)
    print("\nactor total before failure:", repro.get(last))

    state = runtime.actors.get_state(tally.actor_id)
    print(f"killing the actor's node {state.node.node_id.hex()[:8]}...")
    runtime.kill_node(state.node.node_id)

    print("actor total after restart: ", repro.get(tally.add.remote(1)))
    print("methods replayed (checkpoint every 5):",
          runtime.actors.replayed_methods)

    repro.shutdown()


if __name__ == "__main__":
    main()
