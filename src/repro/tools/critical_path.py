"""Critical-path analysis over the task graph and lifecycle trace.

A job's wall-clock time is governed by its *critical path*: the chain of
lineage-dependent task executions ending at the last task to finish.
:class:`CriticalPath` walks that chain backwards through the dynamic task
graph (data and stateful edges) and attributes each link's elapsed time to
one of three phases — **scheduling** (submit → placement plus ready-queue
wait), **transfer** (placement → inputs local), and **execution** — the
decomposition the paper's Section 7 debugging tools are built to answer:
"where did the time go?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.tools.timeline import TaskLifecycle, Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime

PHASES = ("scheduling", "transfer", "execution")


@dataclass(frozen=True)
class CriticalPathStep:
    """One task on the critical path, with its phase attribution.

    Phase segments only count time *after* ``t0`` — the instant this step
    became the path's frontier (its predecessor's finish, or its own
    submit time if later) — so overlapping work is never double-counted
    and the per-step segments telescope across the whole path.
    """

    task: str
    name: str
    node: str
    kind: str
    t0: float
    finished: float
    scheduling_seconds: float
    transfer_seconds: float
    execution_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.scheduling_seconds + self.transfer_seconds + self.execution_seconds
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "name": self.name,
            "node": self.node,
            "kind": self.kind,
            "t0": self.t0,
            "finished": self.finished,
            "scheduling_seconds": self.scheduling_seconds,
            "transfer_seconds": self.transfer_seconds,
            "execution_seconds": self.execution_seconds,
        }


@dataclass
class CriticalPathReport:
    steps: List[CriticalPathStep] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def phase_totals(self) -> Dict[str, float]:
        totals = dict.fromkeys(PHASES, 0.0)
        for step in self.steps:
            totals["scheduling"] += step.scheduling_seconds
            totals["transfer"] += step.transfer_seconds
            totals["execution"] += step.execution_seconds
        return totals

    @property
    def attributed_seconds(self) -> float:
        return sum(self.phase_totals.values())

    @property
    def coverage(self) -> float:
        """Fraction of the path's wall clock explained by the three
        phases; the remainder is submission gaps (a task submitted after
        its predecessor finished) or clock jitter."""
        if self.wall_clock_seconds <= 0:
            return 1.0 if not self.steps else 0.0
        return min(1.0, self.attributed_seconds / self.wall_clock_seconds)

    @property
    def dominant_phase(self) -> Optional[str]:
        if not self.steps:
            return None
        return max(PHASES, key=lambda p: self.phase_totals[p])

    @property
    def task_chain(self) -> List[str]:
        return [step.task for step in self.steps]

    def as_dict(self) -> Dict[str, object]:
        return {
            "steps": [step.as_dict() for step in self.steps],
            "wall_clock_seconds": self.wall_clock_seconds,
            "phase_totals": self.phase_totals,
            "attributed_seconds": self.attributed_seconds,
            "coverage": self.coverage,
            "dominant_phase": self.dominant_phase,
            "task_chain": self.task_chain,
        }

    def format(self) -> str:
        if not self.steps:
            return "(no finished tasks — nothing to analyze)"
        lines = [
            f"critical path: {len(self.steps)} tasks, "
            f"{self.wall_clock_seconds * 1e3:.2f} ms wall clock "
            f"({self.coverage * 100.0:.1f}% attributed, "
            f"dominant phase: {self.dominant_phase})"
        ]
        totals = self.phase_totals
        for phase in PHASES:
            lines.append(f"  {phase:<10} {totals[phase] * 1e3:10.3f} ms")
        for step in self.steps:
            lines.append(
                f"  {step.task} {step.name:<20} on {step.node}  "
                f"sched={step.scheduling_seconds * 1e3:.3f}ms "
                f"xfer={step.transfer_seconds * 1e3:.3f}ms "
                f"exec={step.execution_seconds * 1e3:.3f}ms"
            )
        return "\n".join(lines)


class CriticalPath:
    """Walks the task graph backwards from the last finish to build the
    longest lineage-dependent chain, then attributes its time."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def _latest_lifecycles(self) -> Dict[str, TaskLifecycle]:
        """Last *finished* execution per task (replays supersede)."""
        latest: Dict[str, TaskLifecycle] = {}
        for lc in Timeline(self.runtime).lifecycles():
            if lc.finished is None:
                continue
            prior = latest.get(lc.task)
            if prior is None or lc.finished >= (prior.finished or 0.0):
                latest[lc.task] = lc
        return latest

    def analyze(self) -> CriticalPathReport:
        graph = self.runtime.graph
        lifecycles = self._latest_lifecycles()
        if not lifecycles:
            return CriticalPathReport()

        id_of = {
            task_id.hex()[:8]: task_id
            for task_id in graph.task_ids()
            if task_id.hex()[:8] in lifecycles
        }

        # 1. Terminal task: the latest finish anywhere in the trace.
        terminal = max(lifecycles.values(), key=lambda lc: lc.finished or 0.0)

        # 2. Walk back: at each task pick the predecessor that finished
        #    last — the one that actually gated this task's start.
        chain: List[TaskLifecycle] = [terminal]
        seen = {terminal.task}
        current = terminal
        while True:
            task_id = id_of.get(current.task)
            if task_id is None:
                break
            best: Optional[TaskLifecycle] = None
            for pred_id in graph.predecessors_of(task_id):
                pred = lifecycles.get(pred_id.hex()[:8])
                if pred is None or pred.task in seen:
                    continue
                if best is None or (pred.finished or 0.0) > (best.finished or 0.0):
                    best = pred
            if best is None:
                break
            chain.append(best)
            seen.add(best.task)
            current = best
        chain.reverse()

        # 3. Attribute each link's [t0, finish) window to phases.
        steps: List[CriticalPathStep] = []
        prev_finish: Optional[float] = None
        for lc in chain:
            anchor = _first_known(lc)
            t0 = anchor if prev_finish is None else max(prev_finish, _submit(lc))
            s = lc.scheduled if lc.scheduled is not None else t0
            r = lc.inputs_ready if lc.inputs_ready is not None else s
            x = lc.started if lc.started is not None else r
            f = lc.finished or x
            seg_sched = max(0.0, s - t0) + max(0.0, x - max(t0, r))
            seg_transfer = max(0.0, r - max(t0, s))
            seg_exec = max(0.0, f - max(t0, x))
            steps.append(
                CriticalPathStep(
                    task=lc.task,
                    name=lc.name,
                    node=lc.node,
                    kind=lc.kind,
                    t0=t0,
                    finished=f,
                    scheduling_seconds=seg_sched,
                    transfer_seconds=seg_transfer,
                    execution_seconds=seg_exec,
                )
            )
            prev_finish = f

        wall_clock = steps[-1].finished - steps[0].t0 if steps else 0.0
        return CriticalPathReport(steps=steps, wall_clock_seconds=max(0.0, wall_clock))


def _first_known(lc: TaskLifecycle) -> float:
    for value in (lc.submitted, lc.scheduled, lc.inputs_ready, lc.started):
        if value is not None:
            return value
    return lc.finished or 0.0


def _submit(lc: TaskLifecycle) -> float:
    """Submit time for gap accounting; -inf when unknown so ``max`` falls
    back to the predecessor's finish."""
    return lc.submitted if lc.submitted is not None else float("-inf")
