"""Task execution timeline from the GCS event log.

The paper's timeline visualization tool uses the GCS event log as its
backend (Section 7).  :class:`Timeline` reconstructs per-node execution
spans from ``task_finished`` events and exports them as Chrome trace JSON
(loadable in ``chrome://tracing`` / Perfetto) or as an ASCII lane chart.

With lifecycle tracing enabled (the default), the log also carries
``task_submitted`` / ``task_scheduled`` / ``task_inputs_ready`` events;
:meth:`Timeline.lifecycles` stitches all four into causal per-task
breakdowns (submit → schedule → fetch → execute) — the per-task overhead
decomposition that :mod:`repro.tools.critical_path` builds on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


@dataclass(frozen=True)
class TimelineSpan:
    """One task execution: [start, start+duration) on a node."""

    name: str
    task: str
    node: str
    start: float
    duration: float
    kind: str
    status: str

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class TaskLifecycle:
    """One execution of a task, stitched from its lifecycle events.

    Timestamps are ``time.perf_counter`` values; any stage the log does
    not cover (e.g. the submit event of a reconstruction-driven replay)
    is None.  Phase durations clamp to zero so clock jitter between
    emitting threads never produces negative spans.
    """

    task: str
    name: str
    node: str
    kind: str
    status: str
    submitted: Optional[float]
    scheduled: Optional[float]
    inputs_ready: Optional[float]
    started: Optional[float]
    finished: Optional[float]

    @staticmethod
    def _delta(a: Optional[float], b: Optional[float]) -> float:
        if a is None or b is None:
            return 0.0
        return max(0.0, b - a)

    @property
    def scheduling_seconds(self) -> float:
        """Submit → placed, plus inputs-ready → worker start (queue wait)."""
        return self._delta(self.submitted, self.scheduled) + self._delta(
            self.inputs_ready, self.started
        )

    @property
    def fetch_seconds(self) -> float:
        """Placed → all inputs local (transfer / reconstruction time)."""
        return self._delta(self.scheduled, self.inputs_ready)

    @property
    def execution_seconds(self) -> float:
        return self._delta(self.started, self.finished)

    def as_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "name": self.name,
            "node": self.node,
            "kind": self.kind,
            "status": self.status,
            "submitted": self.submitted,
            "scheduled": self.scheduled,
            "inputs_ready": self.inputs_ready,
            "started": self.started,
            "finished": self.finished,
            "scheduling_seconds": self.scheduling_seconds,
            "fetch_seconds": self.fetch_seconds,
            "execution_seconds": self.execution_seconds,
        }


class Timeline:
    """Execution spans harvested from the GCS event log."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def spans(self) -> List[TimelineSpan]:
        out = []
        for record in self.runtime.gcs.events("task_finished"):
            payload = record.as_dict()
            if "start" not in payload:
                continue
            out.append(
                TimelineSpan(
                    name=payload.get("name", "?"),
                    task=payload.get("task", "?"),
                    node=payload.get("node", "?"),
                    start=payload["start"],
                    duration=payload.get("duration", 0.0),
                    kind=payload.get("kind", "task"),
                    status=payload.get("status", "finished"),
                )
            )
        return sorted(out, key=lambda s: s.start)

    def lifecycles(self) -> List[TaskLifecycle]:
        """Stitch lifecycle events into one record per task *execution*.

        Events of each category are grouped by task and sorted by
        timestamp, then paired up by occurrence index: a reconstructed
        task that ran twice yields two lifecycles, the second pairing the
        second ``task_scheduled``/``task_inputs_ready`` with the second
        ``task_finished``.  Replays have no fresh submit event, so later
        executions carry ``submitted=None``.
        """
        gcs = self.runtime.gcs

        def by_task(category: str) -> Dict[str, List[Dict[str, object]]]:
            grouped: Dict[str, List[Dict[str, object]]] = {}
            for record in gcs.events(category):
                payload = record.as_dict()
                task = payload.get("task")
                if task is not None:
                    grouped.setdefault(str(task), []).append(payload)
            for entries in grouped.values():
                entries.sort(key=lambda p: p.get("t", p.get("start", 0.0)))
            return grouped

        submitted = by_task("task_submitted")
        scheduled = by_task("task_scheduled")
        ready = by_task("task_inputs_ready")
        finished = by_task("task_finished")

        out: List[TaskLifecycle] = []
        tasks = set(submitted) | set(scheduled) | set(ready) | set(finished)
        for task in tasks:
            fins = finished.get(task, [])
            runs = max(
                len(fins),
                len(scheduled.get(task, [])),
                len(ready.get(task, [])),
                len(submitted.get(task, [])),
            )
            for i in range(runs):
                sub = submitted.get(task, [])
                sch = scheduled.get(task, [])
                rdy = ready.get(task, [])
                fin = fins[i] if i < len(fins) else {}
                start = fin.get("start")
                duration = fin.get("duration")
                finish = (
                    start + duration
                    if isinstance(start, float) and isinstance(duration, float)
                    else None
                )
                out.append(
                    TaskLifecycle(
                        task=task,
                        name=str(
                            fin.get("name")
                            or (sch[i].get("name") if i < len(sch) else None)
                            or (sub[i].get("name") if i < len(sub) else None)
                            or "?"
                        ),
                        node=str(
                            fin.get("node")
                            or (sch[i].get("node") if i < len(sch) else None)
                            or "?"
                        ),
                        kind=str(fin.get("kind", "task")),
                        status=str(fin.get("status", "pending")),
                        submitted=sub[i].get("t") if i < len(sub) else None,
                        scheduled=sch[i].get("t") if i < len(sch) else None,
                        inputs_ready=rdy[i].get("t") if i < len(rdy) else None,
                        started=start if isinstance(start, float) else None,
                        finished=finish,
                    )
                )
        out.sort(key=lambda lc: (lc.submitted or lc.scheduled or lc.started or 0.0))
        return out

    def span_count(self) -> int:
        return len(self.spans())

    def makespan(self) -> float:
        spans = self.spans()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    # -- Chrome trace export -------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON: one lane per node, one X event per
        task, microsecond timestamps relative to the first span."""
        spans = self.spans()
        if not spans:
            return json.dumps({"traceEvents": []})
        epoch = min(s.start for s in spans)
        events = []
        node_pids: Dict[str, int] = {}
        for span in spans:
            pid = node_pids.setdefault(span.node, len(node_pids) + 1)
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": (span.start - epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {"task": span.task, "status": span.status},
                }
            )
        for node, pid in node_pids.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"node-{node}"},
                }
            )
        return json.dumps({"traceEvents": events})

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_chrome_trace())

    # -- terminal rendering ------------------------------------------------------

    def render_ascii(self, width: int = 72) -> str:
        """A lane-per-node ASCII chart (for quick terminal debugging)."""
        spans = self.spans()
        if not spans:
            return "(no spans)"
        epoch = min(s.start for s in spans)
        horizon = max(s.end for s in spans) - epoch
        if horizon <= 0:
            horizon = 1e-9
        by_node: Dict[str, List[TimelineSpan]] = {}
        for span in spans:
            by_node.setdefault(span.node, []).append(span)
        lines = [f"timeline: {len(spans)} tasks over {horizon * 1e3:.1f} ms"]
        for node, node_spans in sorted(by_node.items()):
            lane = [" "] * width
            for span in node_spans:
                lo = int((span.start - epoch) / horizon * (width - 1))
                hi = max(lo + 1, int((span.end - epoch) / horizon * (width - 1)))
                for i in range(lo, min(hi, width)):
                    lane[i] = "#" if lane[i] == " " else "%"
            lines.append(f"node {node}: |{''.join(lane)}|")
        return "\n".join(lines)
