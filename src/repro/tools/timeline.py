"""Task execution timeline from the GCS event log.

The paper's timeline visualization tool uses the GCS event log as its
backend (Section 7).  :class:`Timeline` reconstructs per-node execution
spans from ``task_finished`` events and exports them as Chrome trace JSON
(loadable in ``chrome://tracing`` / Perfetto) or as an ASCII lane chart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


@dataclass(frozen=True)
class TimelineSpan:
    """One task execution: [start, start+duration) on a node."""

    name: str
    task: str
    node: str
    start: float
    duration: float
    kind: str
    status: str

    @property
    def end(self) -> float:
        return self.start + self.duration


class Timeline:
    """Execution spans harvested from the GCS event log."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def spans(self) -> List[TimelineSpan]:
        out = []
        for record in self.runtime.gcs.events("task_finished"):
            payload = record.as_dict()
            if "start" not in payload:
                continue
            out.append(
                TimelineSpan(
                    name=payload.get("name", "?"),
                    task=payload.get("task", "?"),
                    node=payload.get("node", "?"),
                    start=payload["start"],
                    duration=payload.get("duration", 0.0),
                    kind=payload.get("kind", "task"),
                    status=payload.get("status", "finished"),
                )
            )
        return sorted(out, key=lambda s: s.start)

    def span_count(self) -> int:
        return len(self.spans())

    def makespan(self) -> float:
        spans = self.spans()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    # -- Chrome trace export -------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON: one lane per node, one X event per
        task, microsecond timestamps relative to the first span."""
        spans = self.spans()
        if not spans:
            return json.dumps({"traceEvents": []})
        epoch = min(s.start for s in spans)
        events = []
        node_pids: Dict[str, int] = {}
        for span in spans:
            pid = node_pids.setdefault(span.node, len(node_pids) + 1)
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": (span.start - epoch) * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": 1,
                    "args": {"task": span.task, "status": span.status},
                }
            )
        for node, pid in node_pids.items():
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "args": {"name": f"node-{node}"},
                }
            )
        return json.dumps({"traceEvents": events})

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            f.write(self.to_chrome_trace())

    # -- terminal rendering ------------------------------------------------------

    def render_ascii(self, width: int = 72) -> str:
        """A lane-per-node ASCII chart (for quick terminal debugging)."""
        spans = self.spans()
        if not spans:
            return "(no spans)"
        epoch = min(s.start for s in spans)
        horizon = max(s.end for s in spans) - epoch
        if horizon <= 0:
            horizon = 1e-9
        by_node: Dict[str, List[TimelineSpan]] = {}
        for span in spans:
            by_node.setdefault(span.node, []).append(span)
        lines = [f"timeline: {len(spans)} tasks over {horizon * 1e3:.1f} ms"]
        for node, node_spans in sorted(by_node.items()):
            lane = [" "] * width
            for span in node_spans:
                lo = int((span.start - epoch) / horizon * (width - 1))
                hi = max(lo + 1, int((span.end - epoch) / horizon * (width - 1)))
                for i in range(lo, min(hi, width)):
                    lane[i] = "#" if lane[i] == " " else "%"
            lines.append(f"node {node}: |{''.join(lane)}|")
        return "\n".join(lines)
