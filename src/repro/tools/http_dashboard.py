"""A minimal Web UI over the GCS (the "Web UI" box of Figure 5).

Serves the cluster inspector's snapshot, the per-function profile, the
Chrome trace, the metrics registry, and the critical-path report as
JSON/HTML/Prometheus text over HTTP on localhost.  Everything is read from
the GCS and the runtime's metrics registry — the dashboard asks no
component for anything, the paper's point about tooling on a centralized
control store.

    from repro.tools.http_dashboard import DashboardServer
    server = DashboardServer(runtime)
    server.start()           # serves http://127.0.0.1:<port>
    ...
    server.stop()

Endpoints:
  /               tiny HTML overview (links every endpoint below)
  /snapshot       cluster snapshot JSON
  /profile        per-function execution statistics JSON
  /trace          Chrome trace JSON (load in chrome://tracing)
  /timeline_trace Chrome trace with node lanes + cluster-event marks
  /tasks          task-status counts JSON
  /waits          wait-path / notification-layer statistics JSON
  /metrics        cluster metrics, Prometheus text-exposition format
  /metrics.json   the same metrics as JSON
  /critical_path  critical-path report JSON
  /nodes          per-node panels (reporter rows; nodes_info fallback)
  /nodes/<id>     one node's panel (full hex id or unique prefix)
  /cluster_load   aggregate pressure signals (the autoscaler's inputs)
  /events         merged cluster event timeline
                  (?since=<cursor>&limit=<n>&category=<cat> pagination)
  /serve          deployment rows + latest router metrics reports
  /config         RuntimeConfig.describe() joined with current values
"""

from __future__ import annotations

import json
import urllib.parse
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Optional

from repro.common.lockwatch import make_lock, make_thread
from repro.tools.critical_path import CriticalPath
from repro.tools.dashboard_head import DashboardHead
from repro.tools.inspect import ClusterInspector
from repro.tools.profiler import Profiler
from repro.tools.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    import threading

    from repro.core.runtime import Runtime


def _sanitize(obj: Any) -> Any:
    """Replace non-finite floats with None, recursively.

    ``json.dumps`` happily emits bare ``Infinity``/``NaN`` tokens, which
    are *not* JSON — strict parsers (browsers, jq) reject the whole body.
    A never-called function's ``min_seconds`` is ``inf``, so this is a
    real path, not an edge case.
    """
    if isinstance(obj, float):
        return obj if obj == obj and obj not in (float("inf"), float("-inf")) else None
    if isinstance(obj, dict):
        return {key: _sanitize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_sanitize(value) for value in obj]
    return obj


def _json_dumps(obj: Any) -> str:
    # allow_nan=False turns any non-finite float that slips past
    # _sanitize into a loud ValueError instead of invalid JSON.
    return json.dumps(_sanitize(obj), allow_nan=False)


def _snapshot_json(runtime: "Runtime") -> str:
    return _json_dumps(asdict(ClusterInspector(runtime).snapshot()))


def _profile_json(runtime: "Runtime") -> str:
    profiles = Profiler(runtime).profiles()
    return _json_dumps(
        {
            name: {
                "calls": p.calls,
                "total_seconds": p.total_seconds,
                "mean_seconds": p.mean_seconds,
                "min_seconds": p.min_seconds,
                "max_seconds": p.max_seconds,
                "failures": p.failures,
            }
            for name, p in profiles.items()
        }
    )


# Every JSON/text endpoint the server exposes, linked from the index page
# (kept here, next to the dispatch table, so the two cannot drift).
ENDPOINTS = (
    "/snapshot",
    "/profile",
    "/trace",
    "/timeline_trace",
    "/tasks",
    "/waits",
    "/metrics",
    "/metrics.json",
    "/critical_path",
    "/nodes",
    "/cluster_load",
    "/events",
    "/serve",
    "/config",
)


def _index_html(runtime: "Runtime") -> str:
    snapshot = ClusterInspector(runtime).snapshot()
    links = " · ".join(
        f'<a href="{path}">{path.lstrip("/")}</a>' for path in ENDPOINTS
    )
    return (
        "<html><head><title>repro dashboard</title></head><body>"
        "<h1>repro cluster</h1>"
        f"<pre>{snapshot.format()}</pre>"
        f"<p>{links}</p>"
        "</body></html>"
    )


class DashboardServer:
    """A threaded HTTP server exposing GCS-derived cluster state."""

    def __init__(self, runtime: "Runtime", host: str = "127.0.0.1", port: int = 0):
        self.runtime = runtime
        self.head = DashboardHead(runtime)
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence request logging
                pass

            def do_GET(self):
                parsed = urllib.parse.urlsplit(self.path)
                path = parsed.path
                query = urllib.parse.parse_qs(parsed.query)
                try:
                    if path == "/":
                        body, content_type = _index_html(outer.runtime), "text/html"
                    elif path == "/snapshot":
                        body, content_type = _snapshot_json(outer.runtime), "application/json"
                    elif path == "/profile":
                        body, content_type = _profile_json(outer.runtime), "application/json"
                    elif path == "/trace":
                        body, content_type = (
                            Timeline(outer.runtime).to_chrome_trace(),
                            "application/json",
                        )
                    elif path == "/timeline_trace":
                        body, content_type = (
                            outer.head.timeline_trace(),
                            "application/json",
                        )
                    elif path == "/tasks":
                        body, content_type = (
                            _json_dumps(ClusterInspector(outer.runtime).tasks_by_status()),
                            "application/json",
                        )
                    elif path == "/waits":
                        body, content_type = (
                            _json_dumps(ClusterInspector(outer.runtime).wait_path_stats()),
                            "application/json",
                        )
                    elif path == "/metrics":
                        body, content_type = (
                            outer.runtime.metrics.to_prometheus_text(),
                            "text/plain; version=0.0.4",
                        )
                    elif path == "/metrics.json":
                        body, content_type = (
                            _json_dumps(outer.runtime.metrics.to_dict()),
                            "application/json",
                        )
                    elif path == "/critical_path":
                        body, content_type = (
                            _json_dumps(CriticalPath(outer.runtime).analyze().as_dict()),
                            "application/json",
                        )
                    elif path == "/nodes":
                        body, content_type = (
                            _json_dumps(outer.head.nodes_summary()),
                            "application/json",
                        )
                    elif path.startswith("/nodes/"):
                        detail = outer.head.node_detail(path[len("/nodes/"):])
                        if detail is None:
                            self.send_response(404)
                            self.end_headers()
                            return
                        body, content_type = _json_dumps(detail), "application/json"
                    elif path == "/cluster_load":
                        body, content_type = (
                            _json_dumps(outer.head.cluster_load()),
                            "application/json",
                        )
                    elif path == "/serve":
                        body, content_type = (
                            _json_dumps(outer.head.serve_summary()),
                            "application/json",
                        )
                    elif path == "/config":
                        body, content_type = (
                            _json_dumps(outer.head.config_panel()),
                            "application/json",
                        )
                    elif path == "/events":
                        since = int(query.get("since", ["0"])[0])
                        limit_arg = query.get("limit", [None])[0]
                        limit = int(limit_arg) if limit_arg is not None else None
                        categories = query.get("category") or None
                        body, content_type = (
                            _json_dumps(
                                outer.head.events(
                                    since=since, limit=limit, categories=categories
                                )
                            ),
                            "application/json",
                        )
                    else:
                        self.send_response(404)
                        self.end_headers()
                        return
                except Exception as exc:  # noqa: BLE001 - surface as 500
                    self.send_response(500)
                    self.end_headers()
                    self.wfile.write(str(exc).encode())
                    return
                payload = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._thread: Optional["threading.Thread"] = None
        self._lifecycle_lock = make_lock("DashboardServer._lifecycle_lock")
        self._stopped = False

    @property
    def address(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "DashboardServer":
        with self._lifecycle_lock:
            if self._thread is None and not self._stopped:
                self._thread = make_thread(
                    self._server.serve_forever, name="repro-dashboard",
                    daemon=True,
                )
                self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and close the listening socket; idempotent (a
        second ``server_close`` on an already-closed socket is the classic
        double-stop hazard this guards against)."""
        with self._lifecycle_lock:
            if self._stopped:
                return
            self._stopped = True
            thread = self._thread
        if thread is not None:
            # shutdown() blocks on serve_forever's exit handshake, so it
            # must only run when the serving thread was actually started.
            self._server.shutdown()
        self._server.server_close()
        if thread is not None:
            thread.join(timeout=5)
