"""The dashboard head: aggregation over per-node reporter streams.

Sits between the GCS and the HTTP layer (:mod:`repro.tools.http_dashboard`)
and is the ops plane's read side:

* :meth:`DashboardHead.nodes_summary` — per-node panels, preferring
  reporter rows (:mod:`repro.tools.reporter`) and falling back to
  ``Runtime.nodes_info()`` when reporters are disabled, so ``/nodes``
  always answers.
* :meth:`DashboardHead.events` — the cluster event *timeline*: one
  seq-ordered strict-JSON stream merging task lifecycle events (PR 2),
  fault-injection events (PR 4), node death/rejoin, and autoscaler
  decisions, with since-cursor pagination.
* :meth:`DashboardHead.cluster_load` — the aggregate pressure signals
  (backlog per live node, store utilization) the autoscaler's policy loop
  watches; exposing them here keeps head and autoscaler reading the same
  numbers.
* :meth:`DashboardHead.timeline_trace` — Chrome trace export with one
  lane per node plus instant marks for cluster events, so scale-ups and
  node deaths are visible against the task spans that caused them.

Everything is derived from the GCS (reporter table + event log); the only
non-GCS input is the ``nodes_info()`` membership fallback — the paper's
Figure 5 tooling-on-the-control-store shape.
"""

from __future__ import annotations

import json
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.tools.timeline import Timeline

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime

__all__ = ["DashboardHead"]

# Event categories rendered as instant marks in the node-lane trace.
_TRACE_INSTANT_CATEGORIES = (
    "node_death",
    "node_restart",
    "autoscaler_decision",
    "fault_injected",
)


class DashboardHead:
    """Aggregates GCS reporter rows and event logs for serving."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    # -- per-node panels ---------------------------------------------------

    def nodes_summary(self) -> Dict[str, Any]:
        """Cluster membership with per-node load panels.

        Each node's entry starts from the runtime membership snapshot
        (``nodes_info()`` — always available) and is enriched with its
        reporter row when one exists; ``source`` says which mode the
        cluster is in so clients can tell a quiet cluster from a
        reporters-off one.
        """
        reports = self.runtime.gcs.node_reports()
        nodes: List[Dict[str, Any]] = []
        seen = set()
        for info in self.runtime.nodes_info():
            node_hex = info["node_id"]
            seen.add(node_hex)
            entry = dict(info)
            row = reports.get(node_hex)
            if row is not None:
                entry["report"] = row
            nodes.append(entry)
        # Tombstoned rows for nodes the runtime no longer lists (none
        # today — kill_node keeps membership — but the table is the
        # durable record, so serve it completely).
        for node_hex, row in sorted(reports.items()):
            if node_hex not in seen:
                nodes.append(
                    {"node_id": node_hex, "alive": False, "report": row}
                )
        return {
            "source": "reporters" if reports else "runtime",
            "num_nodes": len(nodes),
            "num_alive": sum(1 for n in nodes if n.get("alive")),
            "nodes": nodes,
        }

    def node_detail(self, node_ref: str) -> Optional[Dict[str, Any]]:
        """One node's panel, addressed by full hex id or unique prefix."""
        summary = self.nodes_summary()
        matches = [
            n for n in summary["nodes"]
            if n["node_id"] == node_ref or n["node_id"].startswith(node_ref)
        ]
        if len(matches) != 1:
            return None
        return matches[0]

    # -- aggregate load (shared with the autoscaler) -----------------------

    def cluster_load(self) -> Dict[str, Any]:
        """Aggregate pressure signals from the reporter rows.

        Falls back to sampling the runtime directly when no reporter rows
        exist yet, so the autoscaler still closes its loop with reporters
        disabled.  ``backlog_per_node`` is the primary scale signal:
        placed-but-unfinished tasks averaged over live nodes.
        """
        reports = self.runtime.gcs.node_reports()
        live = [r for r in reports.values() if r.get("alive")]
        if live:
            backlog = sum(r.get("backlog", 0) for r in live)
            queued = sum(r.get("queue_length", 0) for r in live)
            utilizations = [r.get("store_utilization", 0.0) for r in live]
            inflight = sum(r.get("transfers_inflight", 0) for r in live)
            num_live = len(live)
            source = "reporters"
        else:
            from repro.tools.reporter import sample_node

            rows = [
                sample_node(self.runtime, node)
                for node in self.runtime.live_nodes()
            ]
            backlog = sum(r["backlog"] for r in rows)
            queued = sum(r["queue_length"] for r in rows)
            utilizations = [r["store_utilization"] for r in rows]
            inflight = sum(r["transfers_inflight"] for r in rows)
            num_live = len(rows)
            source = "runtime"
        return {
            "source": source,
            "num_live_nodes": num_live,
            "backlog_total": backlog,
            "backlog_per_node": backlog / num_live if num_live else 0.0,
            "queue_total": queued,
            "store_utilization_max": max(utilizations) if utilizations else 0.0,
            "transfers_inflight": inflight,
        }

    # -- the serve plane ---------------------------------------------------

    def serve_summary(self) -> Dict[str, Any]:
        """Every deployment's current row joined with its latest router
        metrics report — both read purely from the GCS serve tables, so
        the panel works from any process with GCS access."""
        deployments = self.runtime.gcs.deployments()
        reports = self.runtime.gcs.serve_reports()
        out: Dict[str, Any] = {}
        for name, row in deployments.items():
            entry = dict(row)
            report = reports.get(name)
            if report is not None:
                entry["report"] = report
            out[name] = entry
        # Reports can outlive a deleted deployment row briefly; show them.
        for name, report in reports.items():
            out.setdefault(name, {})["report"] = report
        return out

    # -- runtime configuration ---------------------------------------------

    def config_panel(self) -> List[Dict[str, Any]]:
        """``RuntimeConfig.describe()`` joined with this cluster's actual
        values — the dashboard ``/config`` endpoint body."""
        from repro.core.runtime import RuntimeConfig

        current = self.runtime.config
        rows = []
        for row in RuntimeConfig.describe():
            entry = dict(row)
            entry["value"] = repr(getattr(current, row["name"], None))
            rows.append(entry)
        return rows

    # -- the event timeline ------------------------------------------------

    def events(
        self,
        since: int = 0,
        limit: Optional[int] = None,
        categories: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """One page of the merged cluster event timeline.

        ``since`` is the cursor returned by the previous page
        (``next_cursor``); the first call passes 0.  Events are ordered by
        their cluster-wide ``seq`` stamp, so interleavings across
        categories (a ``node_death`` between two ``autoscaler_decision``
        entries) are faithful to record order.
        """
        records, next_cursor = self.runtime.gcs.events_since(
            cursor=since, categories=categories, limit=limit
        )
        return {
            "events": [r.as_timeline_dict() for r in records],
            "next_cursor": next_cursor,
            "categories": self.runtime.gcs.event_categories(),
        }

    # -- Chrome trace with cluster-event marks -----------------------------

    def timeline_trace(self) -> str:
        """Node-lane Chrome trace plus instant marks for cluster events.

        Task spans carry ``perf_counter`` timestamps while event records
        carry wall-clock ``ts``; the export bridges them with the current
        offset between the two clocks (both advance in real time, so the
        offset is stable within a process).
        """
        timeline = Timeline(self.runtime)
        spans = timeline.spans()
        trace = json.loads(timeline.to_chrome_trace())
        events = trace["traceEvents"]
        node_pids = {
            e["args"]["name"][len("node-"):]: e["pid"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        epoch = min((s.start for s in spans), default=time.perf_counter())
        wall_to_pc = time.perf_counter() - time.time()
        marks_pid = max(node_pids.values(), default=0) + 1
        wrote_marks = False
        records, _cursor = self.runtime.gcs.events_since(0)
        for rec in records:
            if rec.category not in _TRACE_INSTANT_CATEGORIES or not rec.ts:
                continue
            payload = rec.as_dict()
            node = str(payload.get("node", ""))
            pid = next(
                (p for h, p in node_pids.items() if node and h.startswith(node)),
                marks_pid,
            )
            wrote_marks = wrote_marks or pid == marks_pid
            events.append(
                {
                    "name": rec.category,
                    "cat": "cluster",
                    "ph": "i",
                    "s": "g",
                    "ts": max(0.0, (rec.ts + wall_to_pc - epoch)) * 1e6,
                    "pid": pid,
                    "tid": 0,
                    "args": payload,
                }
            )
        if wrote_marks:
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": marks_pid,
                    "args": {"name": "cluster-events"},
                }
            )
        return json.dumps(trace)
