"""Per-node reporters: the sampling half of the ops plane.

Each :class:`NodeReporter` is attached to one :class:`~repro.core.runtime.Node`
and periodically snapshots that node's local state — scheduler queue depth
and backlog, worker busy/idle counts, object-store bytes and eviction/spill
pressure, and in-flight transfer count — into a versioned row in the GCS
node-report table (``gcs.publish_node_report``).

This preserves the paper's Figure 5 property: *tools ride on the GCS*.
The dashboard head (:mod:`repro.tools.dashboard_head`) and the autoscaler
(:mod:`repro.tools.autoscaler`) never touch node internals; they read only
the reporter rows.  When a node dies its last row survives as a tombstone
(``alive=False``) so operators can see the final state of a lost node.

Reporters default *off* (``RuntimeConfig.reporters_enabled``); disabled
mode costs one attribute check on the node-lifecycle paths, mirroring the
``NULL_FAULTS`` / ``NULL_REGISTRY`` pattern.
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.common.lockwatch import make_condition, make_thread

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.runtime import Node, Runtime

__all__ = ["NodeReporter", "sample_node"]


def sample_node(runtime: "Runtime", node: "Node") -> Dict[str, Any]:
    """One reporter snapshot of ``node``'s local state, as a plain dict.

    Every value is JSON-safe (str/int/float/bool); the row is published
    verbatim into the GCS and served verbatim by the dashboard head.
    Sampling takes each component's own lock briefly (via its accessor)
    but never holds any lock across components.
    """
    scheduler = node.local_scheduler
    store = node.store
    running = len(scheduler.running_tasks())
    total_cpu = float(node.resources.total.get("CPU", 0.0))
    capacity = store.capacity_bytes
    used = store.used_bytes
    return {
        "node_id": node.node_id.hex(),
        "alive": node.alive,
        # Scheduler pressure: the autoscaler's primary signal.
        "queue_length": scheduler.queue_length(),
        "backlog": scheduler.backlog(),
        "running_tasks": running,
        # Worker occupancy, derived from running count vs CPU slots.
        "workers_total": total_cpu,
        "workers_busy": float(running),
        "workers_idle": max(0.0, total_cpu - running),
        # Object-store pressure.
        "store_used_bytes": used,
        "store_num_objects": store.num_objects(),
        "store_capacity_bytes": capacity,
        "store_utilization": (used / capacity) if capacity else 0.0,
        "store_evictions": store.eviction_count,
        "store_spills": store.spill_count,
        "store_restores": store.restore_count,
        # Transfer plane: fetches currently in flight toward this node.
        "transfers_inflight": runtime.fetcher.inflight_count(node.node_id),
        "resources_total": dict(node.resources.total),
        "resources_available": dict(node.resources.available()),
    }


class NodeReporter:
    """Samples one node on an interval and publishes rows to the GCS.

    The sampling logic is the synchronous :meth:`report_once` so tests can
    drive it deterministically; :meth:`start` merely wraps it in a thin
    condition-wait interval thread.  ``stop`` is idempotent and joins the
    thread; ``stop(tombstone=True)`` additionally rewrites the node's row
    as a tombstone (the ``kill_node`` path).
    """

    def __init__(self, runtime: "Runtime", node: "Node",
                 interval: float = 0.25):
        self._runtime = runtime
        self._node = node
        self.interval = interval
        self._row_seq = itertools.count(1)
        short = node.node_id.hex()[:8]
        self._cond = make_condition(f"NodeReporter[{short}]._cond")
        self._stopped = False
        self._thread = None

    @property
    def node_hex(self) -> str:
        return self._node.node_id.hex()

    def report_once(self) -> Dict[str, Any]:
        """Take one snapshot and publish it; returns the published row."""
        row = sample_node(self._runtime, self._node)
        row["seq"] = next(self._row_seq)
        row["ts"] = time.time()
        self._runtime.gcs.publish_node_report(self.node_hex, row)
        return row

    # -- interval thread ---------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._thread is not None or self._stopped:
                return
            self._thread = make_thread(
                self._run,
                name=f"reporter-{self.node_hex[:8]}",
                daemon=True,
            )
        self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                self._cond.wait(timeout=self.interval)
                if self._stopped:
                    return
            # Sample and publish outside the condition: the GCS write must
            # not run under a held lock (RT-BLOCKING-UNDER-LOCK).
            self.report_once()

    def stop(self, tombstone: bool = False) -> None:
        """Stop the interval thread (idempotent); optionally tombstone the
        node's last-seen row (node-death path)."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        if tombstone:
            self._runtime.gcs.tombstone_node_report(self.node_hex)
