"""The closed-loop autoscaler: reporter metrics in, node lifecycle out.

The policy loop watches the aggregate pressure signals the dashboard head
derives from the per-node reporter rows (:meth:`DashboardHead.cluster_load`
— backlog per live node and object-store utilization) and compares them
against high/low watermarks:

* sustained pressure above the high watermark (``hysteresis`` consecutive
  observations) **scales up** — preferring to restart a dead node (the
  same machine rejoining, paper-style) and otherwise adding a fresh one;
* sustained idleness below the low watermark **scales down** — draining
  the least-loaded live node through the runtime's ``kill_node`` path,
  which reroutes its queue and replays its running tasks;
* every action observes a ``cooldown`` before the next, so the loop
  cannot flap.

Every decision is recorded as an ``autoscaler_decision`` event in the GCS
event log *with the metric values that triggered it*, so the dashboard's
``/events`` timeline shows exactly why the cluster changed size between
two task spans.  Like the reporters, the policy core is the synchronous
:meth:`Autoscaler.tick`; the thread is a thin interval driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

from repro.common.lockwatch import make_condition, make_thread
from repro.tools.dashboard_head import DashboardHead

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ReplicaAutoscaler",
    "ReplicaAutoscalerConfig",
]


@dataclass
class AutoscalerConfig:
    """Watermarks and damping for the scaling policy."""

    # Scale up when backlog-per-live-node sits at/above this...
    high_watermark: float = 4.0
    # ...or any node's store utilization reaches this fraction.
    store_high_watermark: float = 0.85
    # Scale down when backlog-per-live-node sits at/below this.
    low_watermark: float = 0.5
    # Consecutive over/under-watermark observations required before acting
    # (hysteresis: one noisy sample never resizes the cluster).
    hysteresis: int = 2
    # Minimum seconds between actions (damping after a resize, while the
    # rerouted queue redistributes).
    cooldown_seconds: float = 1.0
    min_nodes: int = 1
    max_nodes: int = 8
    # Interval of the background policy thread.
    interval: float = 0.25


class Autoscaler:
    """Watermark policy loop over the dashboard head's aggregate load.

    ``add_hook`` / ``drain_hook`` default to the runtime's own node
    lifecycle (``restart_node``-or-``add_node`` / ``kill_node`` of the
    least-loaded non-driver node) but are injectable for tests and for
    deployments where "add a node" means something external.  Each hook
    returns the hex id of the node acted on, or None to veto.
    """

    def __init__(
        self,
        runtime: "Runtime",
        config: Optional[AutoscalerConfig] = None,
        head: Optional[DashboardHead] = None,
        add_hook: Optional[Callable[[], Optional[str]]] = None,
        drain_hook: Optional[Callable[[], Optional[str]]] = None,
    ):
        self.runtime = runtime
        self.config = config or AutoscalerConfig()
        self.head = head or DashboardHead(runtime)
        self._add_hook = add_hook or self._default_add
        self._drain_hook = drain_hook or self._default_drain
        self._high_streak = 0
        self._low_streak = 0
        self._last_action_at: Optional[float] = None
        self.decisions = 0
        self._cond = make_condition("Autoscaler._cond")
        self._stopped = False
        self._thread = None

    # -- policy ------------------------------------------------------------

    def tick(self) -> Optional[Dict[str, Any]]:
        """One policy evaluation; returns the decision dict if an action
        was taken (and recorded), else None."""
        cfg = self.config
        load = self.head.cluster_load()
        num_live = load["num_live_nodes"]
        backlog = load["backlog_per_node"]
        store = load["store_utilization_max"]
        over = backlog >= cfg.high_watermark or store >= cfg.store_high_watermark
        under = backlog <= cfg.low_watermark and store < cfg.store_high_watermark
        if over:
            self._high_streak += 1
            self._low_streak = 0
        elif under:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        now = time.monotonic()
        if (
            self._last_action_at is not None
            and now - self._last_action_at < cfg.cooldown_seconds
        ):
            return None

        if self._high_streak >= cfg.hysteresis and num_live < cfg.max_nodes:
            node_hex = self._add_hook()
            if node_hex is None:
                return None
            return self._decide("scale_up", node_hex, load, now)
        if self._low_streak >= cfg.hysteresis and num_live > cfg.min_nodes:
            node_hex = self._drain_hook()
            if node_hex is None:
                return None
            return self._decide("scale_down", node_hex, load, now)
        return None

    def _decide(
        self, action: str, node_hex: str, load: Dict[str, Any], now: float
    ) -> Dict[str, Any]:
        self._last_action_at = now
        self._high_streak = 0
        self._low_streak = 0
        self.decisions += 1
        decision = {
            "action": action,
            "node": node_hex[:8],
            "backlog_per_node": load["backlog_per_node"],
            "backlog_total": load["backlog_total"],
            "store_utilization_max": load["store_utilization_max"],
            "num_live_nodes": load["num_live_nodes"],
            "high_watermark": self.config.high_watermark,
            "low_watermark": self.config.low_watermark,
        }
        self.runtime.gcs.record_event("autoscaler_decision", **decision)
        return decision

    # -- default lifecycle hooks ------------------------------------------

    def _default_add(self) -> Optional[str]:
        """Rejoin a dead node if one exists (same machine back), otherwise
        grow the cluster with a fresh node."""
        for node in self.runtime.nodes():
            if not node.alive:
                return self.runtime.restart_node(node.node_id).node_id.hex()
        return self.runtime.add_node().node_id.hex()

    def _default_drain(self) -> Optional[str]:
        """Kill the least-backlogged live node, never the driver's node."""
        driver_id = self.runtime.driver_node.node_id
        candidates = [
            node
            for node in self.runtime.live_nodes()
            if node.node_id != driver_id
        ]
        if not candidates:
            return None
        victim = min(candidates, key=lambda n: n.local_scheduler.backlog())
        self.runtime.kill_node(victim.node_id)
        return victim.node_id.hex()

    # -- interval thread ---------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._thread is not None or self._stopped:
                return
            self._thread = make_thread(
                self._run, name="autoscaler", daemon=True
            )
        self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                self._cond.wait(timeout=self.config.interval)
                if self._stopped:
                    return
            # Evaluate outside the condition: the tick reads the GCS and
            # may resize the cluster (RT-BLOCKING-UNDER-LOCK).
            self.tick()

    def stop(self) -> None:
        """Stop the policy thread; idempotent."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)


# ---------------------------------------------------------------------------
# Replica autoscaler: the serve plane's counterpart of the node policy
# ---------------------------------------------------------------------------


@dataclass
class ReplicaAutoscalerConfig:
    """Watermarks and damping for one deployment's replica-count policy."""

    # Scale up when queue depth per alive replica sits at/above this.
    high_watermark: float = 4.0
    # Scale down when queue depth per alive replica sits at/below this.
    low_watermark: float = 0.25
    # Consecutive over/under observations required before acting.
    hysteresis: int = 2
    cooldown_seconds: float = 1.0
    min_replicas: int = 1
    max_replicas: int = 8
    # Interval of the background policy thread.
    interval: float = 0.25


class ReplicaAutoscaler:
    """Closed loop over one deployment's GCS serve-report row.

    The signal chain is deliberately identical to the node autoscaler's:
    the router publishes per-replica queue-depth/latency rows into the GCS
    (:meth:`~repro.gcs.client.GlobalControlStore.publish_serve_report`),
    and this policy reads *only* that table — never the router directly —
    so it could run in any process with GCS access.  Actions go through
    :meth:`ServePlane.scale_to`; every tick also *reconciles*: permanently
    dead replicas are replaced at current size (the chaos-recovery path),
    and a scale-up first restarts a dead node when one exists, since a
    killed node is usually why a replica is missing capacity.
    """

    def __init__(
        self,
        runtime: "Runtime",
        deployment: str,
        config: Optional[ReplicaAutoscalerConfig] = None,
        restart_dead_nodes: bool = True,
    ):
        self.runtime = runtime
        self.deployment = deployment
        self.config = config or ReplicaAutoscalerConfig()
        self.restart_dead_nodes = restart_dead_nodes
        self._high_streak = 0
        self._low_streak = 0
        self._last_action_at: Optional[float] = None
        self.decisions = 0
        self.replaced = 0
        self._cond = make_condition("ReplicaAutoscaler._cond")
        self._stopped = False
        self._thread = None

    def _plane(self):
        from repro.serve.deployment import get_plane

        return get_plane(self.runtime)

    # -- policy ------------------------------------------------------------

    def tick(self) -> Optional[Dict[str, Any]]:
        """One policy evaluation; returns the decision dict if an action
        was taken (and recorded), else None."""
        cfg = self.config
        row = self.runtime.gcs.get_serve_report(self.deployment)
        if not row or row.get("tombstone"):
            return None
        plane = self._plane()

        # Reconcile first: replace permanently-dead replicas in place, and
        # repair node capacity so restarting replicas can actually place.
        dead_replicas = sum(1 for r in row.get("replicas", ()) if r.get("dead"))
        if dead_replicas:
            if self.restart_dead_nodes:
                self._restart_dead_node()
            replaced = plane.replace_dead_replicas(self.deployment)
            if replaced:
                self.replaced += replaced
                return self._decide("replace_replica", row, replaced=replaced)

        alive = row.get("alive_replicas") or 0
        num_replicas = row.get("num_replicas") or 0
        depth = row.get("queue_depth", 0) / max(1, alive)
        if depth >= cfg.high_watermark:
            self._high_streak += 1
            self._low_streak = 0
        elif depth <= cfg.low_watermark:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0

        now = time.monotonic()
        if (
            self._last_action_at is not None
            and now - self._last_action_at < cfg.cooldown_seconds
        ):
            return None

        if self._high_streak >= cfg.hysteresis and num_replicas < cfg.max_replicas:
            if self.restart_dead_nodes:
                self._restart_dead_node()
            plane.scale_to(self.deployment, num_replicas + 1)
            return self._decide("scale_up", row, now=now, target=num_replicas + 1)
        if self._low_streak >= cfg.hysteresis and num_replicas > cfg.min_replicas:
            plane.scale_to(self.deployment, num_replicas - 1)
            return self._decide("scale_down", row, now=now, target=num_replicas - 1)
        return None

    def _restart_dead_node(self) -> Optional[str]:
        """Capacity repair: rejoin one dead node so a blocked replica
        placement (or the replacement about to be created) can land."""
        for node in self.runtime.nodes():
            if not node.alive:
                return self.runtime.restart_node(node.node_id).node_id.hex()
        return None

    def _decide(
        self, action: str, row: Dict[str, Any], now: Optional[float] = None, **extra: Any
    ) -> Dict[str, Any]:
        self._last_action_at = time.monotonic() if now is None else now
        self._high_streak = 0
        self._low_streak = 0
        self.decisions += 1
        decision = {
            "action": action,
            "kind": "serve_replicas",
            "deployment": self.deployment,
            "queue_depth": row.get("queue_depth"),
            "alive_replicas": row.get("alive_replicas"),
            "num_replicas": row.get("num_replicas"),
            "p99_ms": row.get("p99_ms"),
            "high_watermark": self.config.high_watermark,
            "low_watermark": self.config.low_watermark,
            **extra,
        }
        self.runtime.gcs.record_event("autoscaler_decision", **decision)
        return decision

    # -- interval thread ---------------------------------------------------

    def start(self) -> None:
        with self._cond:
            if self._thread is not None or self._stopped:
                return
            self._thread = make_thread(
                self._run, name=f"replica-autoscaler-{self.deployment}", daemon=True
            )
        self._thread.start()

    def _run(self) -> None:
        while True:
            with self._cond:
                if self._stopped:
                    return
                self._cond.wait(timeout=self.config.interval)
                if self._stopped:
                    return
            # Evaluate outside the condition: the tick reads the GCS and
            # may create/drain actors (RT-BLOCKING-UNDER-LOCK).
            self.tick()

    def stop(self) -> None:
        """Stop the policy thread; idempotent."""
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
            thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
