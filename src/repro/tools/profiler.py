"""Per-function profiling from the GCS event log (Section 7's profiling
tools: no instrumentation beyond what the system already records)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


@dataclass
class FunctionProfile:
    """Aggregate execution statistics for one remote function/method."""

    name: str
    calls: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0
    failures: int = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def add(self, duration: float, failed: bool) -> None:
        self.calls += 1
        self.total_seconds += duration
        self.min_seconds = min(self.min_seconds, duration)
        self.max_seconds = max(self.max_seconds, duration)
        if failed:
            self.failures += 1


class Profiler:
    """Aggregates ``task_finished`` events by function name."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime

    def profiles(self) -> Dict[str, FunctionProfile]:
        out: Dict[str, FunctionProfile] = {}
        for record in self.runtime.gcs.events("task_finished"):
            payload = record.as_dict()
            name = payload.get("name", "?")
            profile = out.setdefault(name, FunctionProfile(name))
            profile.add(
                payload.get("duration", 0.0), payload.get("status") == "failed"
            )
        return out

    def top_by_total_time(self, limit: int = 10) -> List[FunctionProfile]:
        ranked = sorted(
            self.profiles().values(), key=lambda p: p.total_seconds, reverse=True
        )
        return ranked[:limit]

    def format(self, limit: int = 10) -> str:
        lines = [
            f"{'function':<32} {'calls':>6} {'total':>9} {'mean':>9} {'max':>9} {'fail':>5}"
        ]
        for profile in self.top_by_total_time(limit):
            lines.append(
                f"{profile.name:<32} {profile.calls:>6} "
                f"{profile.total_seconds * 1e3:>8.1f}m {profile.mean_seconds * 1e3:>8.2f}m "
                f"{profile.max_seconds * 1e3:>8.2f}m {profile.failures:>5}"
            )
        return "\n".join(lines)
