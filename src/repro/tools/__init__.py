"""Debugging, profiling, and visualization tools riding on the GCS.

The paper (Sections 4.2.1 and 7) highlights that because the GCS holds the
entire system state, tools need no cooperation from the components they
inspect — they simply read the GCS.  These are those tools:

* :class:`~repro.tools.inspect.ClusterInspector` — live cluster state:
  tasks by status, object-table statistics, actor liveness, node
  utilization (the "Web UI / error diagnosis" box of Figure 5).
* :class:`~repro.tools.timeline.Timeline` — per-task execution timeline
  from the event log, exportable to Chrome ``chrome://tracing`` format
  (the paper's timeline visualization tool).
* :class:`~repro.tools.profiler.Profiler` — per-function aggregate
  durations and counts from the same events.
* :class:`~repro.tools.critical_path.CriticalPath` — walks task-graph
  lineage to report the chain of task executions that bounded the job's
  wall clock, attributed to scheduling / transfer / execution phases.
* :class:`~repro.tools.chaos.ChaosRunner` — drives workloads under a
  seeded deterministic fault schedule and verifies same-seed replays
  inject the identical fault sequence.
* :mod:`repro.tools.analysis` — the repo-aware concurrency lint engine
  (``python -m repro.tools.analyze``).

Every tool CLI builds its parser with :func:`build_cli_parser` and prints /
persists its result through :func:`emit_report`, so output conventions
(``-o/--output`` JSON files, ``--json`` stdout mode) stay identical across
``repro.tools.chaos`` and ``repro.tools.analyze``.
"""

import argparse
import json as _json


def build_cli_parser(description: str) -> argparse.ArgumentParser:
    """Shared tool-CLI skeleton: every tool gets ``-o`` and ``--json``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "-o", "--output", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the JSON report to stdout instead of the text view",
    )
    return parser


def emit_report(payload, output=None, text=None, as_json=False) -> None:
    """Print a report (text view unless ``as_json``/no text) and optionally
    write the JSON payload to ``output``."""
    if text is not None and not as_json:
        print(text)
    else:
        print(_json.dumps(payload, indent=2))
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            _json.dump(payload, fh, indent=2)
            fh.write("\n")


# The helpers above are defined before the submodule imports below on
# purpose: submodules (chaos, analyze) import them from the partially
# initialized package during their own import.
from repro.tools.autoscaler import Autoscaler, AutoscalerConfig
from repro.tools.chaos import ChaosReport, ChaosRunner, standard_workload
from repro.tools.critical_path import CriticalPath, CriticalPathReport
from repro.tools.dashboard_head import DashboardHead
from repro.tools.inspect import ClusterInspector, ClusterSnapshot
from repro.tools.profiler import FunctionProfile, Profiler
from repro.tools.reporter import NodeReporter
from repro.tools.timeline import TaskLifecycle, Timeline, TimelineSpan
from repro.tools.http_dashboard import DashboardServer

__all__ = [
    "build_cli_parser",
    "emit_report",
    "Autoscaler",
    "AutoscalerConfig",
    "ChaosReport",
    "ChaosRunner",
    "standard_workload",
    "ClusterInspector",
    "ClusterSnapshot",
    "CriticalPath",
    "CriticalPathReport",
    "DashboardHead",
    "NodeReporter",
    "Timeline",
    "TimelineSpan",
    "TaskLifecycle",
    "Profiler",
    "FunctionProfile",
    "DashboardServer",
]
