"""Debugging, profiling, and visualization tools riding on the GCS.

The paper (Sections 4.2.1 and 7) highlights that because the GCS holds the
entire system state, tools need no cooperation from the components they
inspect — they simply read the GCS.  These are those tools:

* :class:`~repro.tools.inspect.ClusterInspector` — live cluster state:
  tasks by status, object-table statistics, actor liveness, node
  utilization (the "Web UI / error diagnosis" box of Figure 5).
* :class:`~repro.tools.timeline.Timeline` — per-task execution timeline
  from the event log, exportable to Chrome ``chrome://tracing`` format
  (the paper's timeline visualization tool).
* :class:`~repro.tools.profiler.Profiler` — per-function aggregate
  durations and counts from the same events.
* :class:`~repro.tools.critical_path.CriticalPath` — walks task-graph
  lineage to report the chain of task executions that bounded the job's
  wall clock, attributed to scheduling / transfer / execution phases.
* :class:`~repro.tools.chaos.ChaosRunner` — drives workloads under a
  seeded deterministic fault schedule and verifies same-seed replays
  inject the identical fault sequence.
"""

from repro.tools.chaos import ChaosReport, ChaosRunner, standard_workload
from repro.tools.critical_path import CriticalPath, CriticalPathReport
from repro.tools.inspect import ClusterInspector, ClusterSnapshot
from repro.tools.profiler import FunctionProfile, Profiler
from repro.tools.timeline import TaskLifecycle, Timeline, TimelineSpan
from repro.tools.http_dashboard import DashboardServer

__all__ = [
    "ChaosReport",
    "ChaosRunner",
    "standard_workload",
    "ClusterInspector",
    "ClusterSnapshot",
    "CriticalPath",
    "CriticalPathReport",
    "Timeline",
    "TimelineSpan",
    "TaskLifecycle",
    "Profiler",
    "FunctionProfile",
    "DashboardServer",
]
