"""Chaos harness: run workloads under a deterministic fault schedule.

The fault-injection subsystem (:mod:`repro.common.faults`) supplies the
*mechanism*; this module supplies the *operator loop*: build a cluster with
a seeded :class:`~repro.common.faults.FaultSchedule`, drive a workload
through it, collect the canonical injected-fault log, and — the property
the whole subsystem exists for — **replay** the run with a fresh schedule
built from the same seed and verify the identical fault sequence fired.

    from repro.tools.chaos import ChaosRunner

    runner = ChaosRunner(seed=7, num_nodes=4, kills=2)
    report = runner.run()                 # one chaotic run
    assert runner.verify_determinism()    # two more runs, logs must match

The standard workload is a wave-structured map (tiny tasks in dependent
waves): enough sustained task flow for count triggers to land mid-run, and
every wave's results are checked so a lost object that failed to
reconstruct is caught as a wrong answer, not a hang.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common import lockwatch
from repro.common.faults import FaultSchedule

__all__ = ["ChaosReport", "ChaosRunner", "standard_workload"]


def standard_workload(repro_module: Any, waves: int = 8, width: int = 25) -> int:
    """Dependent waves of tiny tasks; returns the number of tasks run.

    Wave ``i+1``'s tasks each consume one output of wave ``i``, so node
    deaths between waves force transfers and reconstructions, and a wrong
    or missing value surfaces as an assertion instead of silence.
    """
    repro = repro_module

    @repro.remote
    def bump(x):
        return x + 1

    refs = [bump.remote(i) for i in range(width)]
    for _wave in range(1, waves):
        refs = [bump.remote(r) for r in refs]
    values = repro.get(refs, timeout=120)
    assert values == [i + waves for i in range(width)], "workload corrupted"
    return waves * width


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    seed: int
    tasks_run: int
    duration_seconds: float
    event_log: Tuple[Tuple[Any, ...], ...]
    signature: str
    pending_faults: int
    lockwatch: Optional[Dict[str, Any]] = None
    applied: int = field(init=False)
    skipped: int = field(init=False)

    def __post_init__(self):
        outcomes = [e[-1] for e in self.event_log if e and e[0] == "planned"]
        self.applied = sum(1 for o in outcomes if o == "applied")
        self.skipped = sum(1 for o in outcomes if o == "skipped")

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "seed": self.seed,
            "tasks_run": self.tasks_run,
            "duration_seconds": round(self.duration_seconds, 3),
            "event_log": [list(e) for e in self.event_log],
            "signature": self.signature,
            "pending_faults": self.pending_faults,
            "applied": self.applied,
            "skipped": self.skipped,
        }
        if self.lockwatch is not None:
            payload["lockwatch"] = self.lockwatch
        return payload


class ChaosRunner:
    """Builds same-seed clusters and drives a workload through faults.

    Every ``run()`` constructs a *fresh* :class:`FaultSchedule` from the
    stored seed and schedule arguments (schedules are single-use), so runs
    are independent and comparable.
    """

    def __init__(
        self,
        seed: int = 0,
        num_nodes: int = 4,
        kills: int = 1,
        restart: bool = True,
        chain_kills: int = 0,
        first_kill_after: int = 40,
        workload: Optional[Callable[[Any], int]] = None,
        schedule_kwargs: Optional[Dict[str, Any]] = None,
        runtime_kwargs: Optional[Dict[str, Any]] = None,
        watch_locks: bool = False,
    ):
        self.seed = seed
        self.num_nodes = num_nodes
        self.kills = kills
        self.restart = restart
        self.chain_kills = chain_kills
        self.first_kill_after = first_kill_after
        self.workload = workload
        self.schedule_kwargs = dict(schedule_kwargs or {})
        self.runtime_kwargs = dict(runtime_kwargs or {})
        self.watch_locks = watch_locks

    def build_schedule(self) -> FaultSchedule:
        return FaultSchedule.random(
            self.seed,
            num_nodes=self.num_nodes,
            kills=self.kills,
            restart=self.restart,
            chain_kills=self.chain_kills,
            first_kill_after=self.first_kill_after,
            num_shards=self.runtime_kwargs.get("gcs_shards", 4),
            **self.schedule_kwargs,
        )

    def run(self) -> ChaosReport:
        """One chaotic run on a fresh cluster; returns its report."""
        import repro

        schedule = self.build_schedule()
        kwargs = dict(self.runtime_kwargs)
        kwargs.setdefault("num_nodes", self.num_nodes)
        # Chain kills need a reconfigurable chain (length > 1) to apply.
        if self.chain_kills:
            kwargs.setdefault("gcs_replicas", 2)
        # The witness must be in place before init(): locks are created at
        # cluster construction.  A watch installed via REPRO_LOCKWATCH (or
        # by the caller) is reused rather than replaced.
        watch = lockwatch.active()
        installed_here = False
        if self.watch_locks and watch is None:
            watch = lockwatch.install(lockwatch.LockWatch())
            installed_here = True
        runtime = repro.init(fault_schedule=schedule, **kwargs)
        started = time.monotonic()
        try:
            workload = self.workload or standard_workload
            tasks_run = workload(repro)
        finally:
            repro.shutdown()
            if installed_here:
                lockwatch.uninstall()
        duration = time.monotonic() - started
        del runtime
        return ChaosReport(
            seed=self.seed,
            tasks_run=tasks_run,
            duration_seconds=duration,
            event_log=schedule.event_log(),
            signature=schedule.signature(),
            pending_faults=schedule.pending_count(),
            lockwatch=watch.report() if watch is not None else None,
        )

    def verify_determinism(self, runs: int = 2) -> bool:
        """Run ``runs`` same-seed executions; True iff every canonical
        fault log is identical (the subsystem's replay guarantee)."""
        logs = [self.run().event_log for _ in range(max(2, runs))]
        return all(log == logs[0] for log in logs[1:])


def main(argv: Optional[List[str]] = None) -> int:
    from repro.tools import build_cli_parser, emit_report

    parser = build_cli_parser(
        "Run a workload under deterministic fault injection"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--kills", type=int, default=1)
    parser.add_argument("--chain-kills", type=int, default=0)
    parser.add_argument("--no-restart", action="store_true")
    parser.add_argument(
        "--verify", action="store_true", help="replay and compare fault logs"
    )
    parser.add_argument(
        "--lockwatch",
        action="store_true",
        help="run under the lock-order witness and include its report",
    )
    args = parser.parse_args(argv)

    runner = ChaosRunner(
        seed=args.seed,
        num_nodes=args.nodes,
        kills=args.kills,
        restart=not args.no_restart,
        chain_kills=args.chain_kills,
        watch_locks=args.lockwatch,
    )
    report = runner.run()
    payload = report.as_dict()
    if args.verify:
        payload["deterministic"] = runner.verify_determinism()
    emit_report(payload, output=args.output)
    if args.verify and not payload["deterministic"]:
        return 1
    if args.lockwatch and payload.get("lockwatch", {}).get("inversions"):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
