"""Cluster state inspection — everything read straight from the GCS.

No component is asked anything: tasks come from the task table, objects
from the object table, actors from the actor table, and the only node-side
reads are the public utilization counters.  This is the paper's argument
for the GCS ("it enabled us to query the entire system state while
debugging Ray itself") made executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

from repro.gcs.client import _ACTOR, _OBJ, _TASK
from repro.gcs.tables import TaskStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


@dataclass
class ClusterSnapshot:
    """A point-in-time summary of the whole cluster."""

    num_nodes: int
    live_nodes: int
    tasks_by_status: Dict[str, int]
    num_objects: int
    total_object_bytes: int
    actors_alive: int
    actors_dead: int
    node_utilization: Dict[str, float] = field(default_factory=dict)
    store_used_bytes: Dict[str, int] = field(default_factory=dict)
    # Notification-layer counters (blocking-path health): see
    # repro.common.events.WaitStats.
    wait_stats: Dict[str, int] = field(default_factory=dict)

    def format(self) -> str:
        lines = [
            f"nodes: {self.live_nodes}/{self.num_nodes} alive",
            "tasks: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.tasks_by_status.items())),
            f"objects: {self.num_objects} ({self.total_object_bytes:,} bytes registered)",
            f"actors: {self.actors_alive} alive, {self.actors_dead} dead",
        ]
        if self.wait_stats:
            lines.append(
                "waits: "
                + ", ".join(f"{k}={v}" for k, v in sorted(self.wait_stats.items()))
            )
        for node, utilization in sorted(self.node_utilization.items()):
            used = self.store_used_bytes.get(node, 0)
            lines.append(
                f"  node {node}: cpu {utilization * 100:.0f}%  store {used:,} B"
            )
        return "\n".join(lines)


class ClusterInspector:
    """Read-only views over a runtime's GCS."""

    def __init__(self, runtime: "Runtime"):
        self.runtime = runtime
        self.gcs = runtime.gcs

    # -- table scans --------------------------------------------------------

    def _rows(self, table: str):
        for key in self.gcs.kv.keys():
            if isinstance(key, tuple) and key[0] == table:
                value = self.gcs.kv.get(key)
                if value is not None:
                    yield key[1], value

    def tasks_by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _task_id, entry in self._rows(_TASK):
            counts[entry.status.value] = counts.get(entry.status.value, 0) + 1
        return counts

    def pending_tasks(self) -> List:
        """Tasks not yet finished — the first place to look when stuck."""
        out = []
        for _task_id, entry in self._rows(_TASK):
            if entry.status in (
                TaskStatus.PENDING,
                TaskStatus.SCHEDULED,
                TaskStatus.RUNNING,
            ):
                out.append(entry)
        return out

    def object_stats(self):
        count = 0
        total_bytes = 0
        for _object_id, (size, _task) in self._rows(_OBJ):
            count += 1
            total_bytes += size
        return count, total_bytes

    def objects_without_live_copies(self) -> List:
        """Registered objects every copy of which is gone (lost or evicted
        — retrievable only through reconstruction)."""
        out = []
        for object_id, _meta in self._rows(_OBJ):
            if not self.runtime.transfer.live_locations(object_id):
                out.append(object_id)
        return out

    def wait_path_stats(self) -> Dict[str, int]:
        """Notification-layer counters plus live GCS subscription count.

        ``backstop_recoveries`` > 0 means a wakeup was missed somewhere and
        the guard caught it — the first place to look for latency bugs.
        """
        stats = dict(self.runtime.wait_stats.snapshot())
        stats["gcs_subscriptions"] = self.gcs.num_subscriptions()
        return stats

    def critical_path(self):
        """The job's critical path (see :mod:`repro.tools.critical_path`)."""
        from repro.tools.critical_path import CriticalPath

        return CriticalPath(self.runtime).analyze()

    def actor_summary(self):
        alive = dead = 0
        for _actor_id, entry in self._rows(_ACTOR):
            if entry.alive:
                alive += 1
            else:
                dead += 1
        return alive, dead

    # -- the one-call overview --------------------------------------------------

    def snapshot(self) -> ClusterSnapshot:
        nodes = self.runtime.nodes()
        count, total_bytes = self.object_stats()
        alive, dead = self.actor_summary()
        return ClusterSnapshot(
            num_nodes=len(nodes),
            live_nodes=sum(1 for n in nodes if n.alive),
            tasks_by_status=self.tasks_by_status(),
            num_objects=count,
            total_object_bytes=total_bytes,
            actors_alive=alive,
            actors_dead=dead,
            node_utilization={
                n.node_id.hex()[:8]: n.resources.utilization("CPU")
                for n in nodes
                if n.alive
            },
            store_used_bytes={
                n.node_id.hex()[:8]: n.store.used_bytes for n in nodes if n.alive
            },
            wait_stats=self.wait_path_stats(),
        )
