"""CLI for the concurrency lint engine: ``python -m repro.tools.analyze``.

Exit codes: 0 clean (or findings all baselined / not ``--strict``), 1 new
findings under ``--strict``, 2 usage errors.  CI runs::

    PYTHONPATH=src python -m repro.tools.analyze --strict

which scans ``src/repro`` against the checked-in ``analysis_baseline.json``
at the repo root.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.tools import build_cli_parser, emit_report
from repro.tools.analysis import (
    Baseline,
    all_rules,
    analyze,
    render_text,
    report_payload,
)

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_REPO_ROOT = _PACKAGE_ROOT.parents[1]  # the checkout root


def default_scan_paths() -> List[Path]:
    return [_PACKAGE_ROOT]


def default_baseline_path() -> Path:
    return _REPO_ROOT / "analysis_baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_cli_parser(
        "Repo-aware concurrency lint: lock discipline, blocking-under-lock, "
        "lock-order cycles, poll loops, swallowed exceptions, thread leaks"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any finding is not covered by the baseline",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: analysis_baseline.json at the "
        "repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding counts as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in the text view",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.summary}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    paths = [Path(p) for p in args.paths] or default_scan_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    try:
        report = analyze(paths, baseline=baseline, rule_ids=rule_ids)
    except KeyError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        count = Baseline.save(baseline_path, report.findings, previous=baseline)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    emit_report(
        report_payload(report),
        output=args.output,
        text=render_text(report, verbose_baselined=args.show_baselined),
        as_json=args.json,
    )
    return report.exit_code if args.strict else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
