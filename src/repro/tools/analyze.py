"""CLI for the concurrency lint engine: ``python -m repro.tools.analyze``.

Exit codes: 0 clean (or findings all baselined / not ``--strict``), 1 new
findings under ``--strict`` (or stale baseline entries under
``--fail-stale``), 2 usage errors.  CI runs::

    PYTHONPATH=src python -m repro.tools.analyze --strict --fail-stale

which scans ``src/repro``, ``examples/`` and ``scripts/`` against the
checked-in ``analysis_baseline.json`` at the repo root.  Finding paths are
repo-root-relative (``src/repro/gcs/client.py``) so the three roots share
one namespace; ``--sarif PATH`` writes a SARIF 2.1.0 log for code-scanning
upload, and ``--rules`` accepts globs (``--rules 'DF-*'``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

from repro.tools import build_cli_parser, emit_report
from repro.tools.analysis import (
    Baseline,
    all_rules,
    analyze,
    render_text,
    report_payload,
    sarif_payload,
)

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_REPO_ROOT = _PACKAGE_ROOT.parents[1]  # the checkout root


def default_scan_paths() -> List[Path]:
    """The runtime package plus its first API consumers: examples, scripts."""
    paths = [_PACKAGE_ROOT]
    for extra in ("examples", "scripts"):
        candidate = _REPO_ROOT / extra
        if candidate.is_dir():
            paths.append(candidate)
    return paths


def default_scan_base() -> Path:
    """Base directory finding paths are relative to (the repo root)."""
    return _REPO_ROOT


def default_baseline_path() -> Path:
    return _REPO_ROOT / "analysis_baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_cli_parser(
        "Repo-aware concurrency lint: lock discipline, blocking-under-lock, "
        "lock-order cycles, poll loops, swallowed exceptions, thread leaks"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any finding is not covered by the baseline",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON path (default: analysis_baseline.json at the "
        "repo root)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding counts as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids or globs to run, e.g. 'DF-*' "
        "(default: all)",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="PATH",
        help="also write a SARIF 2.1.0 log to PATH (for CI code scanning)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse files on N threads (default: 1)",
    )
    parser.add_argument(
        "--fail-stale",
        action="store_true",
        help="with --strict, also exit 1 on stale baseline entries "
        "(entries whose finding no longer fires)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--show-baselined",
        action="store_true",
        help="include baselined findings in the text view",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}: {rule.summary}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [r.strip() for r in args.rules.split(",") if r.strip()]
    paths = [Path(p) for p in args.paths] or default_scan_paths()
    for path in paths:
        if not path.exists():
            parser.error(f"no such path: {path}")

    baseline_path = Path(args.baseline) if args.baseline else default_baseline_path()
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    try:
        report = analyze(
            paths,
            baseline=baseline,
            rule_ids=rule_ids,
            base=default_scan_base(),
            jobs=max(1, args.jobs),
        )
    except KeyError as exc:
        parser.error(str(exc))

    if args.write_baseline:
        count = Baseline.save(baseline_path, report.findings, previous=baseline)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} to {baseline_path}")
        return 0

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as fh:
            json.dump(sarif_payload(report), fh, indent=2)
            fh.write("\n")

    emit_report(
        report_payload(report),
        output=args.output,
        text=render_text(report, verbose_baselined=args.show_baselined),
        as_json=args.json,
    )
    if not args.strict:
        return 0
    if args.fail_stale and report.stale_baseline:
        return max(report.exit_code, 1)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
