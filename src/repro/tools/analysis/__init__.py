"""Repo-aware concurrency lint engine (stdlib-only, AST based).

Run it as ``python -m repro.tools.analyze``.  See docs/STATIC_ANALYSIS.md
for the rule catalog, and :mod:`repro.common.lockwatch` for the dynamic
lock-order witness that confirms or refutes static RT-LOCK-ORDER findings.
"""

from repro.tools.analysis.baseline import Baseline
from repro.tools.analysis.engine import (
    Project,
    Report,
    analyze,
    render_text,
    report_payload,
    run_rules,
    scan_paths,
)
from repro.tools.analysis.findings import ERROR, WARNING, Finding
from repro.tools.analysis.registry import RULES, all_rules
from repro.tools.analysis.sarif import sarif_payload

# Importing the rule modules registers them.
from repro.tools.analysis import rules_flow  # noqa: F401
from repro.tools.analysis import rules_locks  # noqa: F401
from repro.tools.analysis import rules_dataflow  # noqa: F401

__all__ = [
    "Baseline",
    "ERROR",
    "Finding",
    "Project",
    "Report",
    "RULES",
    "WARNING",
    "all_rules",
    "analyze",
    "render_text",
    "report_payload",
    "run_rules",
    "sarif_payload",
    "scan_paths",
]
