"""Rule registry.

A rule is a function ``check(project) -> Iterable[Finding]`` registered under
a stable ``RT-*`` identifier.  Rules receive the whole :class:`Project` so
cross-module rules (RT-LOCK-ORDER) and per-class rules share one parse.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List


@dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    check: Callable


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str):
    """Decorator registering an analysis rule under ``rule_id``."""

    def register(fn):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id=rule_id, summary=summary, check=fn)
        return fn

    return register


def all_rules() -> List[Rule]:
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def select_rules(rule_ids) -> List[Rule]:
    """Resolve ids and ``fnmatch`` globs ('DF-*', 'RT-LOCK-?????') to rules."""
    selected: Dict[str, Rule] = {}
    for pattern in rule_ids:
        pattern = pattern.upper()
        if pattern in RULES:
            selected[pattern] = RULES[pattern]
            continue
        matched = fnmatch.filter(sorted(RULES), pattern)
        if not matched:
            raise KeyError(
                f"unknown rule or pattern {pattern!r}; known: {sorted(RULES)}"
            )
        for rule_id in matched:
            selected[rule_id] = RULES[rule_id]
    return [selected[rule_id] for rule_id in sorted(selected)]
