"""Rule registry.

A rule is a function ``check(project) -> Iterable[Finding]`` registered under
a stable ``RT-*`` identifier.  Rules receive the whole :class:`Project` so
cross-module rules (RT-LOCK-ORDER) and per-class rules share one parse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List


@dataclass(frozen=True)
class Rule:
    rule_id: str
    summary: str
    check: Callable


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, summary: str):
    """Decorator registering an analysis rule under ``rule_id``."""

    def register(fn):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id=rule_id, summary=summary, check=fn)
        return fn

    return register


def all_rules() -> List[Rule]:
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def select_rules(rule_ids) -> List[Rule]:
    selected = []
    for rule_id in rule_ids:
        if rule_id not in RULES:
            raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(RULES)}")
        selected.append(RULES[rule_id])
    return selected
