"""Control-flow rules: RT-POLL-LOOP, RT-EXCEPT-SWALLOW, RT-THREAD-LEAK."""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.tools.analysis import astutil
from repro.tools.analysis.findings import ERROR, WARNING, Finding
from repro.tools.analysis.registry import rule

_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _inline_nodes(body: List[ast.stmt]) -> Iterator[ast.AST]:
    """All nodes in ``body`` that execute inline (skip nested defs)."""
    for stmt in body:
        if isinstance(stmt, _NESTED):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, _NESTED):
                continue
            yield node


# -- RT-POLL-LOOP ------------------------------------------------------------


def _loop_calls(body, in_handler: bool) -> Iterator[Tuple[ast.Call, bool]]:
    """Calls executing per-iteration of this loop (skip nested defs and
    nested while loops — an inner loop is checked on its own)."""
    for stmt in body:
        if isinstance(stmt, _NESTED):
            continue
        if isinstance(stmt, ast.While):
            continue
        if isinstance(stmt, ast.Try):
            yield from _loop_calls(stmt.body, in_handler)
            for handler in stmt.handlers:
                yield from _loop_calls(handler.body, True)
            yield from _loop_calls(stmt.orelse, in_handler)
            yield from _loop_calls(stmt.finalbody, in_handler)
            continue
        if isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith)):
            # Recurse explicitly so the handler/while exclusions compose.
            for header in _header_exprs(stmt):
                for node in ast.walk(header):
                    if isinstance(node, ast.Call):
                        yield node, in_handler
            blocks = [stmt.body]
            if hasattr(stmt, "orelse"):
                blocks.append(stmt.orelse)
            for block in blocks:
                yield from _loop_calls(block, in_handler)
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                yield node, in_handler


def _header_exprs(stmt):
    if isinstance(stmt, ast.If):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return []


def _call_last(call: ast.Call):
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


@rule(
    "RT-POLL-LOOP",
    "while-loop that polls with time.sleep instead of waiting on the "
    "event layer",
)
def check_poll_loop(project):
    for module in project.modules:
        if module.tree is None:
            continue
        for loop in ast.walk(module.tree):
            if not isinstance(loop, ast.While):
                continue
            sleeps = []
            waits = False
            for call, in_handler in _loop_calls(loop.body, False):
                last = _call_last(call)
                if last == "sleep" and not in_handler:
                    sleeps.append(call)
                elif last in ("wait", "wait_for", "wait_any"):
                    waits = True
            if waits:
                # A loop that *also* waits on a condition/completion is the
                # missed-wakeup backstop idiom, not a poll loop.
                continue
            for call in sleeps:
                yield Finding(
                    rule_id="RT-POLL-LOOP",
                    severity=WARNING,
                    path=module.relpath,
                    line=call.lineno,
                    symbol=module.symbol_of(loop),
                    message=(
                        "sleep-polling loop: wait on a Completion / "
                        "condition (with a timed backstop) instead of "
                        "time.sleep"
                    ),
                )


# -- RT-EXCEPT-SWALLOW -------------------------------------------------------

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True

    def broad_name(node):
        if isinstance(node, ast.Name):
            return node.id in _BROAD
        if isinstance(node, ast.Attribute):
            return node.attr in _BROAD
        return False

    if isinstance(handler.type, ast.Tuple):
        return any(broad_name(element) for element in handler.type.elts)
    return broad_name(handler.type)


def _handles_error(handler: ast.ExceptHandler) -> bool:
    """Does the body re-raise, log (any call), or record state?"""
    for node in _inline_nodes(handler.body):
        if isinstance(node, (ast.Raise, ast.Call, ast.Assign, ast.AugAssign)):
            return True
        if isinstance(node, ast.Return) and node.value is not None:
            if not (
                isinstance(node.value, ast.Constant) and node.value.value is None
            ):
                return True
    return False


@rule(
    "RT-EXCEPT-SWALLOW",
    "broad except that neither re-raises, logs, nor records finish state",
)
def check_except_swallow(project):
    for module in project.modules:
        if module.tree is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _handles_error(node):
                continue
            yield Finding(
                rule_id="RT-EXCEPT-SWALLOW",
                severity=WARNING,
                path=module.relpath,
                line=node.lineno,
                symbol=module.symbol_of(node),
                message=(
                    "broad except swallows the error: re-raise, log, or "
                    "record completion state (or add a justified noqa)"
                ),
            )


# -- RT-THREAD-LEAK ----------------------------------------------------------


@rule(
    "RT-THREAD-LEAK",
    "thread created without an explicit daemon= decision",
)
def check_thread_leak(project):
    for module in project.modules:
        if module.tree is None:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = astutil.dotted_name(node.func)
            if dotted not in ("threading.Thread", "Thread", "threading.Timer", "Timer"):
                continue
            keywords = {kw.arg for kw in node.keywords}
            if "daemon" in keywords:
                continue
            yield Finding(
                rule_id="RT-THREAD-LEAK",
                severity=ERROR,
                path=module.relpath,
                line=node.lineno,
                symbol=module.symbol_of(node),
                message=(
                    "thread created without daemon=: pass daemon=True (and "
                    "join it in shutdown) or daemon=False with an owner "
                    "that joins it"
                ),
            )
