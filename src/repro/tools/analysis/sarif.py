"""SARIF 2.1.0 export for CI code-scanning annotation.

One run, one driver ("repro-analyze"), every registered rule in the rule
catalog, one result per finding.  Baselined findings are emitted with a
``suppressions`` entry (kind ``external``) so scanners show them as
reviewed rather than new; fix suggestions ride in each result's
``fixes[].description`` free text.  Fingerprints reuse the engine's
line-independent ``(rule, path, symbol, message)`` identity so results
track across unrelated edits exactly like the baseline does.
"""

from __future__ import annotations

import hashlib

from repro.tools.analysis.findings import Finding
from repro.tools.analysis.registry import all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _fingerprint_hash(finding: Finding) -> str:
    blob = "\x1f".join(finding.fingerprint()).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _result(finding: Finding, baselined: bool) -> dict:
    result = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": f"[{finding.symbol}] {finding.message}"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, finding.line)},
                }
            }
        ],
        "partialFingerprints": {
            "reproAnalyzeFingerprint/v1": _fingerprint_hash(finding)
        },
    }
    if finding.suggestion:
        result["fixes"] = [{"description": {"text": finding.suggestion}}]
    if baselined:
        result["suppressions"] = [
            {"kind": "external", "justification": "analysis_baseline.json"}
        ]
    return result


def sarif_payload(report) -> dict:
    """The SARIF log dict for an engine :class:`~.engine.Report`."""
    baselined = {f.fingerprint() for f in report.baselined}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://example.invalid/repro/docs/STATIC_ANALYSIS.md"
                        ),
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "shortDescription": {"text": rule.summary},
                            }
                            for rule in all_rules()
                        ],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///."}},
                "results": [
                    _result(f, f.fingerprint() in baselined)
                    for f in report.findings
                ],
            }
        ],
    }
