"""Analysis engine: scan -> parse -> run rules -> apply noqa + baseline.

Self-contained (stdlib ``ast`` only).  Entry points:

* :func:`scan_paths` — collect ``*.py`` files under the given roots into a
  :class:`Project` (one shared parse per module).
* :func:`analyze` — run rules over a project and split findings into
  new / baselined / inline-suppressed.
* :func:`render_text` / :func:`report_payload` — human and JSON views.
"""

from __future__ import annotations

import ast
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.tools.analysis import astutil
from repro.tools.analysis.baseline import Baseline
from repro.tools.analysis.findings import ERROR, Finding
from repro.tools.analysis.registry import all_rules, select_rules

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\-\s]+))?", re.IGNORECASE)

_SKIP_DIRS = {"__pycache__", ".git"}


@dataclass
class ModuleInfo:
    path: Path
    relpath: str
    source: str
    tree: Optional[ast.Module]
    error: Optional[str] = None
    _noqa: Optional[Dict[int, Optional[Set[str]]]] = None
    _classes: Optional[List[astutil.ClassInfo]] = None
    _symbols: Optional[Dict[ast.AST, str]] = None

    def noqa_rules(self, line: int) -> Optional[Set[str]]:
        """Rule ids suppressed on ``line`` (None entry => suppress all)."""
        if self._noqa is None:
            table: Dict[int, Optional[Set[str]]] = {}
            for lineno, text in enumerate(self.source.splitlines(), start=1):
                match = _NOQA_RE.search(text)
                if not match:
                    continue
                codes = match.group("codes")
                if codes:
                    table[lineno] = {
                        c.strip().upper() for c in codes.split(",") if c.strip()
                    }
                else:
                    table[lineno] = None  # bare noqa: everything
            self._noqa = table
        return self._noqa.get(line, set())

    def suppressed(self, finding: Finding) -> bool:
        rules = self.noqa_rules(finding.line)
        if rules is None:
            return True
        return finding.rule_id in rules

    @property
    def classes(self) -> List[astutil.ClassInfo]:
        if self._classes is None:
            self._classes = []
            if self.tree is not None:
                for node in ast.walk(self.tree):
                    if isinstance(node, ast.ClassDef):
                        self._classes.append(astutil.build_class_info(node))
        return self._classes

    @property
    def symbols(self) -> Dict[ast.AST, str]:
        if self._symbols is None:
            self._symbols = (
                astutil.symbol_map(self.tree) if self.tree is not None else {}
            )
        return self._symbols

    def symbol_of(self, node: ast.AST) -> str:
        return self.symbols.get(node, "<module>")


class Project:
    def __init__(self, modules: List[ModuleInfo]):
        self.modules = modules
        self._by_relpath = {m.relpath: m for m in modules}

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        return self._by_relpath.get(relpath)

    def lock_owners(self) -> Dict[str, Set[str]]:
        """attr name -> class names that create a lock under that attr."""
        owners: Dict[str, Set[str]] = {}
        for module in self.modules:
            for cls in module.classes:
                for attr in cls.lock_attrs:
                    owners.setdefault(attr, set()).add(cls.name)
        return owners


def _collect_files(path: Path) -> List[Path]:
    if path.is_file():
        return [path]
    files = []
    for candidate in sorted(path.rglob("*.py")):
        if not any(part in _SKIP_DIRS for part in candidate.parts):
            files.append(candidate)
    return files


def _load_module(file: Path, relpath: str) -> ModuleInfo:
    source = file.read_text(encoding="utf-8")
    tree, error = None, None
    try:
        tree = ast.parse(source, filename=str(file))
    except SyntaxError as exc:  # pragma: no cover - repo always parses
        error = f"{exc.msg} (line {exc.lineno})"
    return ModuleInfo(
        path=file, relpath=relpath, source=source, tree=tree, error=error
    )


def scan_paths(
    paths: Sequence[Union[str, Path]],
    base: Optional[Union[str, Path]] = None,
    jobs: int = 1,
) -> Project:
    """Collect ``*.py`` files under ``paths`` into a :class:`Project`.

    ``base`` anchors relpaths (for multi-root scans where per-root relpaths
    would collide); files outside ``base`` fall back to root-relative.
    ``jobs > 1`` reads and parses files on a thread pool.
    """
    base_path = Path(base).resolve() if base is not None else None
    work: List[tuple] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw).resolve()
        for file in _collect_files(root):
            if file in seen:
                continue
            seen.add(file)
            if base_path is not None and base_path in file.parents:
                relpath = file.relative_to(base_path).as_posix()
            elif file == root:
                relpath = file.name
            else:
                relpath = file.relative_to(root).as_posix()
            work.append((file, relpath))
    if jobs > 1 and len(work) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            modules = list(pool.map(lambda w: _load_module(*w), work))
    else:
        modules = [_load_module(file, relpath) for file, relpath in work]
    return Project(modules)


@dataclass
class Report:
    findings: List[Finding] = field(default_factory=list)
    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_inline: int = 0
    stale_baseline: List[dict] = field(default_factory=list)
    files_scanned: int = 0
    duration_seconds: float = 0.0

    @property
    def exit_code(self) -> int:
        return 1 if self.new else 0


def run_rules(project: Project, rule_ids: Optional[Iterable[str]] = None):
    rules = select_rules(rule_ids) if rule_ids else all_rules()
    findings: List[Finding] = []
    for module in project.modules:
        if module.error is not None:
            findings.append(
                Finding(
                    rule_id="RT-PARSE",
                    severity=ERROR,
                    path=module.relpath,
                    line=1,
                    symbol="<module>",
                    message=f"file does not parse: {module.error}",
                )
            )
    for rule in rules:
        findings.extend(rule.check(project))
    return sorted(findings, key=Finding.sort_key)


def analyze(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    rule_ids: Optional[Iterable[str]] = None,
    base: Optional[Union[str, Path]] = None,
    jobs: int = 1,
) -> Report:
    start = time.perf_counter()
    project = scan_paths(paths, base=base, jobs=jobs)
    raw = run_rules(project, rule_ids)
    report = Report(files_scanned=len(project.modules))
    baseline = baseline or Baseline()
    matched = set()
    for finding in raw:
        module = project.module(finding.path)
        if module is not None and module.suppressed(finding):
            report.suppressed_inline += 1
            continue
        report.findings.append(finding)
        entry = baseline.match(finding)
        if entry is not None:
            matched.add(id(entry))
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = [
        entry for entry in baseline.entries if id(entry) not in matched
    ]
    report.duration_seconds = time.perf_counter() - start
    return report


def render_text(report: Report, verbose_baselined: bool = False) -> str:
    lines = []
    for finding in report.new:
        lines.append(finding.format())
        if finding.suggestion:
            lines.append(f"    fix: {finding.suggestion}")
    if verbose_baselined:
        for finding in report.baselined:
            lines.append(f"{finding.format()} (baselined)")
    for entry in report.stale_baseline:
        lines.append(
            "stale baseline entry (no longer fires): "
            f"{entry['rule']} {entry['path']} [{entry['symbol']}]"
        )
    lines.append(
        f"{len(report.findings)} finding(s): {len(report.new)} new, "
        f"{len(report.baselined)} baselined, "
        f"{report.suppressed_inline} inline-suppressed; "
        f"{report.files_scanned} files in {report.duration_seconds:.2f}s"
    )
    return "\n".join(lines)


def report_payload(report: Report) -> dict:
    baselined = {f.fingerprint() for f in report.baselined}
    return {
        "findings": [
            dict(f.as_dict(), baselined=f.fingerprint() in baselined)
            for f in report.findings
        ],
        "stale_baseline": list(report.stale_baseline),
        "summary": {
            "total": len(report.findings),
            "new": len(report.new),
            "baselined": len(report.baselined),
            "inline_suppressed": report.suppressed_inline,
            "files_scanned": report.files_scanned,
            "duration_seconds": round(report.duration_seconds, 4),
            "exit_code": report.exit_code,
        },
    }
