"""Interprocedural ObjectRef dataflow model for the DF-* rule family.

The RT-* rules reason about locks; the DF-* rules reason about *futures*.
This module builds, once per :class:`~repro.tools.analysis.engine.ModuleInfo`,
a model of how the repro API is used in that module:

* which names are bound to the API (``import repro``, ``import repro as r``,
  ``from repro import get, remote``, ``from repro import serve``), so calls
  like ``r.get(...)`` and bare ``get(...)`` resolve to the same primitive;
* which definitions are remote functions (``@repro.remote`` bare or called),
  actor classes, or ``@serve.deployment`` classes;
* every **production** of an ObjectRef — ``.remote()`` on a remote function,
  actor class, or actor method (``.options(...)`` chains peeled),
  ``submit_many``, ``repro.put`` — with its enclosing function and loop;
* every **blocking** call (``repro.get`` / ``repro.wait``) with a tag for
  where its argument came from (fresh production, local ``put``, a
  ``wait``-derived ready list, ...);
* a per-function fact table (:class:`FuncInfo`) closed under three bounded
  fixed points over the per-module call graph:

  - ``remote_context`` — executes inside a worker (remote fn / actor or
    deployment method, or any function they transitively call);
  - ``returns_ref`` — provably returns a fresh ObjectRef;
  - ``param_remote_flow`` — parameters that flow into the arguments of a
    ``.remote(...)`` call (directly or through a local callee), i.e. values
    whose consumption genuinely serializes the caller.

Name tracking is a single in-order pass per function — deliberately flow-
insensitive across branches, like the rest of this engine: good enough to
lint real code, cheap enough for the 5 s CI budget.  The model is memoized
on the ``ModuleInfo`` so all six DF rules share one walk per file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.tools.analysis.astutil import dotted_name

# Argument-origin tags for blocking calls and name bindings.
TAG_REF = "ref"  # a single fresh ObjectRef
TAG_REFS = "refs"  # a container of fresh ObjectRefs
TAG_PUT = "put"  # ref from a local repro.put
TAG_HANDLE = "handle"  # actor handle
TAG_HANDLES = "handles"  # container of actor handles
TAG_WAIT = "wait"  # ready/pending list out of repro.wait
TAG_UNKNOWN = "unknown"

_API_FUNCS = {"get", "wait", "put", "kill", "cancel", "nodes", "init", "shutdown"}
_BLOCKING = {"get", "wait"}
_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
_NESTED = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

# Conservative size threshold for DF-LARGE-CAPTURE: below this, inline
# serialization is noise; above it, repeated per-task copies dominate.
LARGE_ELEMENTS = 10_000

_BUILDER_CALLS = {
    "zeros",
    "ones",
    "full",
    "arange",
    "empty",
    "rand",
    "randn",
    "bytes",
    "bytearray",
}


class ApiEnv:
    """Resolves which local names mean the repro API in one module."""

    def __init__(self, tree: Optional[ast.Module]):
        self.repro_aliases: Set[str] = set()
        self.serve_aliases: Set[str] = set()
        self.direct: Dict[str, str] = {}  # local name -> api function name
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    if alias.name == "repro":
                        self.repro_aliases.add(local)
                    elif alias.name == "repro.serve":
                        self.serve_aliases.add(alias.asname or "serve")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "repro":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name == "serve":
                            self.serve_aliases.add(local)
                        elif alias.name in _API_FUNCS or alias.name == "remote":
                            self.direct[local] = alias.name
                elif node.module == "repro.serve":
                    for alias in node.names:
                        if alias.name == "deployment":
                            self.direct[alias.asname or "deployment"] = "deployment"

    def api_call(self, call: ast.Call) -> Optional[str]:
        """``"get"``/``"wait"``/``"put"``/... if this call hits the API."""
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in self.repro_aliases and func.attr in _API_FUNCS:
                return func.attr
        elif isinstance(func, ast.Name):
            mapped = self.direct.get(func.id)
            if mapped in _API_FUNCS:
                return mapped
        return None

    def _decorator_is(self, dec: ast.AST, api_name: str, serve: bool) -> bool:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            aliases = self.serve_aliases if serve else self.repro_aliases
            return target.value.id in aliases and target.attr == api_name
        if isinstance(target, ast.Name):
            return self.direct.get(target.id) == api_name
        return False

    def is_remote_decorator(self, dec: ast.AST) -> bool:
        return self._decorator_is(dec, "remote", serve=False)

    def is_deployment_decorator(self, dec: ast.AST) -> bool:
        return self._decorator_is(dec, "deployment", serve=True)


@dataclass
class Invocation:
    """One ObjectRef-producing call site."""

    kind: str  # "task" | "actor_method" | "actor_create" | "submit_many" | "put"
    call: ast.Call
    target: str  # display name: "preprocess", "metrics.record", "MetricsActor"
    func: Optional["FuncInfo"]  # enclosing function, None at module level
    loop: Optional[ast.stmt]  # nearest enclosing for/while in the same function
    in_comprehension: bool = False


@dataclass
class BlockingCall:
    """One ``repro.get`` / ``repro.wait`` call site."""

    call: ast.Call
    api: str  # "get" | "wait"
    func: Optional["FuncInfo"]
    loop: Optional[ast.stmt]
    arg_tag: str  # TAG_* of the first argument's origin
    arg_target: str  # display name of the production, when fresh
    result_names: Tuple[str, ...]  # names the result unpacks into
    fresh_invocation: Optional[Invocation] = None


@dataclass
class RefBinding:
    """A name bound to a ref/handle production, for consumption analysis."""

    name: str
    tag: str
    node: ast.AST  # the assignment statement
    invocation: Optional[Invocation]
    loop: Optional[ast.stmt]


@dataclass
class LocalCall:
    """A call to a same-module function/method, the call-graph edge."""

    key: str  # resolved FuncInfo key ("helper" or "Cls.method")
    call: ast.Call
    loop: Optional[ast.stmt]


@dataclass
class FuncInfo:
    key: str  # "fn", "Cls.method", "outer.inner"
    node: ast.AST
    cls: Optional[str]  # enclosing class name for methods
    params: List[str] = field(default_factory=list)
    is_remote_fn: bool = False
    in_actor_class: bool = False
    in_deployment: bool = False
    remote_context: bool = False
    remote_via: str = ""  # human-readable seed/propagation reason
    returns_ref: bool = False
    param_remote_flow: Set[str] = field(default_factory=set)
    local_calls: List[LocalCall] = field(default_factory=list)
    blocking: List[BlockingCall] = field(default_factory=list)
    invocations: List[Invocation] = field(default_factory=list)
    bindings: List[RefBinding] = field(default_factory=list)
    discards: List[Invocation] = field(default_factory=list)  # Expr-stmt drops
    loaded_names: Set[str] = field(default_factory=set)
    assigned_names: Set[str] = field(default_factory=set)
    large_names: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    consumed_names: Set[str] = field(default_factory=set)  # stored/passed/returned
    returned_exprs: List[ast.AST] = field(default_factory=list)
    # Blocking gets on refs produced in this function outside any loop and
    # not loop/param-exempt — serial if the *caller* invokes us in a loop.
    fresh_gets: List[BlockingCall] = field(default_factory=list)


class ModuleModel:
    """Everything the DF rules need to know about one module."""

    def __init__(self, module) -> None:
        self.module = module
        self.env = ApiEnv(module.tree)
        self.funcs: Dict[str, FuncInfo] = {}
        self.remote_fns: Set[str] = set()
        self.actor_classes: Set[str] = set()
        self.deployment_classes: Set[str] = set()
        self.module_invocations: List[Invocation] = []
        self.module_discards: List[Invocation] = []
        self.module_blocking: List[BlockingCall] = []
        self.module_large: Dict[str, Tuple[int, str]] = {}  # name -> (line, desc)
        if module.tree is not None:
            self._collect_defs(module.tree)
            _FunctionScanner(self, None, None, module.tree.body).run()
            self._fixed_points()

    # -- definition collection ----------------------------------------------

    def _collect_defs(self, tree: ast.Module) -> None:
        env = self.env
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                if any(env.is_remote_decorator(d) for d in node.decorator_list):
                    self.actor_classes.add(node.name)
                if any(env.is_deployment_decorator(d) for d in node.decorator_list):
                    self.deployment_classes.add(node.name)
        # Register every function; nested defs get dotted keys.
        def register(body, prefix: str, cls: Optional[str]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    key = f"{prefix}{stmt.name}"
                    info = FuncInfo(key=key, node=stmt, cls=cls)
                    info.params = [a.arg for a in stmt.args.args]
                    if info.params and info.params[0] in ("self", "cls"):
                        info.params = info.params[1:]
                    info.is_remote_fn = any(
                        self.env.is_remote_decorator(d) for d in stmt.decorator_list
                    )
                    if info.is_remote_fn and cls is None:
                        self.remote_fns.add(stmt.name)
                    info.in_actor_class = cls in self.actor_classes
                    info.in_deployment = cls in self.deployment_classes
                    self.funcs[key] = info
                    register(stmt.body, f"{key}.", cls)
                elif isinstance(stmt, ast.ClassDef):
                    register(stmt.body, f"{stmt.name}.", stmt.name)
        register(tree.body, "", None)
        # A class decorated @repro.remote is a class, not a remote fn, even
        # though `ClassName.remote()` produces a handle; handled by kind.

    # -- fixed points over the call graph ------------------------------------

    def _fixed_points(self) -> None:
        funcs = self.funcs
        # Scan every function body (module-level code was scanned by __init__).
        for info in funcs.values():
            _FunctionScanner(self, info, None, info.node.body).run()

        # 1. remote_context: seeded by decorators, closed over local calls.
        for info in funcs.values():
            if info.is_remote_fn and info.cls is None:
                info.remote_context = True
                info.remote_via = "remote function"
            elif info.in_actor_class:
                info.remote_context = True
                info.remote_via = "actor method"
            elif info.in_deployment:
                info.remote_context = True
                info.remote_via = "deployment method"
            elif info.is_remote_fn:  # decorated method — treat as actor-side
                info.remote_context = True
                info.remote_via = "remote method"
        for _ in range(len(funcs) + 1):
            changed = False
            for info in funcs.values():
                if not info.remote_context:
                    continue
                for edge in info.local_calls:
                    callee = funcs.get(edge.key)
                    if callee is not None and not callee.remote_context:
                        callee.remote_context = True
                        callee.remote_via = f"called from {info.key} ({info.remote_via})"
                        changed = True
            if not changed:
                break

        # 2. returns_ref: a return of a production, a ref-tagged name, or a
        #    call to a local returns_ref function.
        ref_tags = {TAG_REF, TAG_REFS, TAG_PUT}
        for _ in range(len(funcs) + 1):
            changed = False
            for info in funcs.values():
                if info.returns_ref:
                    continue
                tagged = {
                    b.name for b in info.bindings if b.tag in ref_tags
                }
                for expr in info.returned_exprs:
                    if isinstance(expr, ast.Name) and expr.id in tagged:
                        info.returns_ref = True
                    elif isinstance(expr, ast.Call):
                        inv = self.classify_call(expr, None, None)
                        if inv is not None and inv.kind != "actor_create":
                            info.returns_ref = True
                        else:
                            key = self._call_key(expr, info)
                            callee = funcs.get(key) if key else None
                            if callee is not None and callee.returns_ref:
                                info.returns_ref = True
                    if info.returns_ref:
                        changed = True
                        break
            if not changed:
                break

        # 3. param_remote_flow: params appearing inside remote-call args,
        #    directly or through a local callee's flowing parameter.
        for _ in range(len(funcs) + 1):
            changed = False
            for info in funcs.values():
                params = set(info.params)
                if not params:
                    continue
                flowing = set(info.param_remote_flow)
                for inv in info.invocations:
                    if inv.kind == "put":
                        continue
                    for name in _names_in_args(inv.call):
                        if name in params:
                            flowing.add(name)
                for edge in info.local_calls:
                    callee = funcs.get(edge.key)
                    if callee is None or not callee.param_remote_flow:
                        continue
                    for pos, arg in enumerate(edge.call.args):
                        if pos >= len(callee.params):
                            break
                        if callee.params[pos] not in callee.param_remote_flow:
                            continue
                        for name in _names_in(arg):
                            if name in params:
                                flowing.add(name)
                    for kw in edge.call.keywords:
                        if kw.arg in callee.param_remote_flow:
                            for name in _names_in(kw.value):
                                if name in params:
                                    flowing.add(name)
                if flowing != info.param_remote_flow:
                    info.param_remote_flow = flowing
                    changed = True
            if not changed:
                break

        # 4. fresh_gets: blocking gets on refs produced in the same function,
        #    outside loops, whose get-result does not feed a later remote
        #    call — a caller invoking this function in a loop serializes.
        for info in funcs.values():
            for bc in info.blocking:
                if bc.api != "get" or bc.loop is not None:
                    continue
                if bc.arg_tag != TAG_REF or bc.fresh_invocation is None:
                    continue
                if bc.result_names and self.results_flow_remote(
                    bc.result_names, info, info.node.body, exclude=bc.call
                ):
                    continue
                info.fresh_gets.append(bc)

    # -- shared classification helpers ---------------------------------------

    def _call_key(self, call: ast.Call, info: Optional[FuncInfo]) -> Optional[str]:
        """FuncInfo key for a local call (``helper()`` / ``self.m()``)."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.funcs:
                return func.id
            if info is not None:
                nested = f"{info.key}.{func.id}"
                if nested in self.funcs:
                    return nested
            return None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and info is not None
            and info.cls is not None
        ):
            key = f"{info.cls}.{func.attr}"
            return key if key in self.funcs else None
        return None

    def classify_call(
        self,
        call: ast.Call,
        func: Optional[FuncInfo],
        loop: Optional[ast.stmt],
        in_comprehension: bool = False,
        project_model: Optional["ProjectModel"] = None,
    ) -> Optional[Invocation]:
        """Is this call a ref/handle production?  None if not."""
        api = self.env.api_call(call)
        if api == "put":
            return Invocation("put", call, "repro.put", func, loop, in_comprehension)
        f = call.func
        if not isinstance(f, ast.Attribute):
            return None
        if f.attr == "remote":
            base = f.value
            # Peel `.options(...)` chains: X.options(...).remote(...)
            if (
                isinstance(base, ast.Call)
                and isinstance(base.func, ast.Attribute)
                and base.func.attr == "options"
            ):
                base = base.func.value
            if isinstance(base, ast.Name):
                name = base.id
                actor_classes = self.actor_classes
                remote_fns = self.remote_fns
                if project_model is not None:
                    actor_classes = actor_classes | project_model.actor_classes
                    remote_fns = remote_fns | project_model.remote_fns
                if name in actor_classes or name in self.deployment_classes:
                    return Invocation(
                        "actor_create", call, name, func, loop, in_comprehension
                    )
                if name in remote_fns:
                    return Invocation("task", call, name, func, loop, in_comprehension)
                # Unknown Name.remote(): a remote fn or actor class imported
                # from elsewhere — produces *something* lineage-pinned.
                return Invocation("task", call, name, func, loop, in_comprehension)
            if isinstance(base, ast.Attribute):
                target = dotted_name(base) or f"<expr>.{base.attr}"
                if target.startswith("self."):
                    target = target[len("self."):]
                return Invocation(
                    "actor_method", call, target, func, loop, in_comprehension
                )
            return None
        if f.attr == "submit_many" and isinstance(f.value, ast.Name):
            # Name base only: `fn.submit_many(...)` is the API; dotted bases
            # like `node.local_scheduler.submit_many(...)` are the runtime's
            # internal scheduler call, not a ref production.
            return Invocation(
                "submit_many", call, f.value.id, func, loop, in_comprehension
            )
        return None

    def results_flow_remote(
        self,
        names: Tuple[str, ...],
        info: Optional[FuncInfo],
        region: List[ast.stmt],
        exclude: Optional[ast.Call] = None,
    ) -> bool:
        """Do any of ``names`` feed a remote call / put / flowing local callee
        anywhere in ``region``?  Used for the loop-carried-dependency and
        interprocedural get-in-loop exemptions (checks the *whole* region
        because a loop wraps around: the consumer may precede the get)."""
        wanted = set(names)
        if not wanted:
            return False
        for stmt in region:
            for node in ast.walk(stmt):
                if isinstance(node, _NESTED):
                    continue
                if not isinstance(node, ast.Call) or node is exclude:
                    continue
                inv = self.classify_call(node, info, None)
                if inv is not None:
                    if wanted & _names_in_args(node):
                        return True
                    continue
                key = self._call_key(node, info)
                callee = self.funcs.get(key) if key else None
                if callee is None or not callee.param_remote_flow:
                    continue
                for pos, arg in enumerate(node.args):
                    if pos >= len(callee.params):
                        break
                    if callee.params[pos] in callee.param_remote_flow and (
                        wanted & _names_in(arg)
                    ):
                        return True
                for kw in node.keywords:
                    if kw.arg in callee.param_remote_flow and (
                        wanted & _names_in(kw.value)
                    ):
                        return True
        return False


def _names_in(expr: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _names_in_args(call: ast.Call) -> Set[str]:
    names: Set[str] = set()
    for arg in call.args:
        names |= _names_in(arg)
    for kw in call.keywords:
        names |= _names_in(kw.value)
    return names


def large_expr(node: ast.AST) -> Optional[str]:
    """A description if ``node`` builds a large value inline, else None."""
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)) and len(node.elts) >= 1000:
        return f"{len(node.elts)}-element literal"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        for side in (node.left, node.right):
            if (
                isinstance(side, ast.Constant)
                and isinstance(side.value, int)
                and side.value >= LARGE_ELEMENTS
            ):
                other = node.right if side is node.left else node.left
                if isinstance(other, (ast.List, ast.Constant)):
                    return f"sequence repeated {side.value}x"
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    big_const = any(
        isinstance(a, ast.Constant)
        and isinstance(a.value, (int, float))
        and a.value >= LARGE_ELEMENTS
        for a in node.args
    )
    if last in _BUILDER_CALLS and big_const:
        return f"{name}(...) of >= {LARGE_ELEMENTS} elements"
    if last == "list" and node.args:
        inner = node.args[0]
        if (
            isinstance(inner, ast.Call)
            and dotted_name(inner.func) == "range"
            and any(
                isinstance(a, ast.Constant)
                and isinstance(a.value, int)
                and a.value >= LARGE_ELEMENTS
                for a in inner.args
            )
        ):
            return f"list(range(>= {LARGE_ELEMENTS}))"
    return None


class _FunctionScanner:
    """One in-order pass over a function (or module) body.

    Records productions, blocking calls, call-graph edges, name bindings and
    loads into the :class:`FuncInfo` (or the module-level lists)."""

    def __init__(
        self,
        model: ModuleModel,
        info: Optional[FuncInfo],
        loop: Optional[ast.stmt],
        body: List[ast.stmt],
    ) -> None:
        self.model = model
        self.info = info
        self.body = body
        self.loop = loop
        self.tags: Dict[str, RefBinding] = {}

    def run(self) -> None:
        self._walk(self.body, self.loop)
        # Module-level large constants feed DF-LARGE-CAPTURE's closure check.
        if self.info is None:
            for stmt in self.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    desc = large_expr(stmt.value)
                    if isinstance(target, ast.Name) and desc is not None:
                        self.model.module_large[target.id] = (stmt.lineno, desc)

    # -- statement dispatch ---------------------------------------------------

    def _walk(self, body: List[ast.stmt], loop: Optional[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, _NESTED):
                continue  # separate FuncInfo scans nested defs
            if isinstance(stmt, _LOOPS):
                self._scan_exprs(self._loop_header(stmt), loop)
                self._walk(stmt.body, stmt if loop is None else loop)
                self._walk(stmt.orelse, loop)
                continue
            if isinstance(stmt, (ast.If,)):
                self._scan_exprs([stmt.test], loop)
                self._walk(stmt.body, loop)
                self._walk(stmt.orelse, loop)
                continue
            if isinstance(stmt, ast.Try):
                self._walk(stmt.body, loop)
                for handler in stmt.handlers:
                    self._walk(handler.body, loop)
                self._walk(stmt.orelse, loop)
                self._walk(stmt.finalbody, loop)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_exprs([i.context_expr for i in stmt.items], loop)
                self._walk(stmt.body, loop)
                continue
            self._statement(stmt, loop)

    @staticmethod
    def _loop_header(stmt: ast.stmt) -> List[ast.AST]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        return [stmt.test]

    def _statement(self, stmt: ast.stmt, loop: Optional[ast.stmt]) -> None:
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self.info is not None:
                self.info.returned_exprs.append(stmt.value)
                self.info.consumed_names |= _names_in(stmt.value)
        assign_targets = None
        if isinstance(stmt, ast.Assign):
            assign_targets = stmt.targets
            self._assign(stmt, stmt.targets, stmt.value, loop)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            assign_targets = [stmt.target]
            self._assign(stmt, [stmt.target], stmt.value, loop)
        elif isinstance(stmt, ast.Expr):
            inv = self._classify(stmt.value, loop)
            if inv is not None:
                if self.info is not None:
                    self.info.discards.append(inv)
                else:
                    self.model.module_discards.append(inv)
        self._scan_exprs([stmt], loop, assign_targets=assign_targets)

    # -- expression scanning --------------------------------------------------

    def _classify(self, expr: ast.AST, loop) -> Optional[Invocation]:
        if not isinstance(expr, ast.Call):
            return None
        return self.model.classify_call(expr, self.info, loop)

    def _scan_exprs(self, roots: List[ast.AST], loop, assign_targets=None) -> None:
        """Record every production / blocking call / local-call edge / name
        load reachable in ``roots`` (nested defs skipped).  ``assign_targets``
        is the enclosing Assign's target list, so a get() nested anywhere in
        the value (e.g. inside a comprehension) still knows its result names."""
        model, info = self.model, self.info
        for root in roots:
            stack: List[Tuple[ast.AST, bool]] = [(root, False)]
            while stack:
                node, in_comp = stack.pop()
                if isinstance(node, _NESTED):
                    continue
                if isinstance(node, _COMPREHENSIONS):
                    in_comp = True
                for child in ast.iter_child_nodes(node):
                    stack.append((child, in_comp))
                if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                    if info is not None:
                        info.loaded_names.add(node.id)
                    continue
                if not isinstance(node, ast.Call):
                    continue
                inv = model.classify_call(node, info, loop, in_comprehension=in_comp)
                if inv is not None:
                    if info is not None:
                        info.invocations.append(inv)
                        # Names feeding a remote call are consumed.
                        info.consumed_names |= _names_in_args(node)
                    else:
                        model.module_invocations.append(inv)
                    continue
                api = model.env.api_call(node)
                if api in _BLOCKING:
                    self._blocking(node, api, loop, assign_targets)
                    if info is not None:
                        info.consumed_names |= _names_in_args(node)
                    continue
                if info is not None:
                    key = model._call_key(node, info)
                    if key is not None:
                        info.local_calls.append(LocalCall(key, node, loop))
                    # Any call consumes the names passed to it (append,
                    # helper(ref), dict.setdefault, ...): they are "stored".
                    info.consumed_names |= _names_in_args(node)
                    if isinstance(node.func, ast.Attribute):
                        base = node.func.value
                        if isinstance(base, ast.Name):
                            info.consumed_names.add(base.id)

    # -- assignment tagging ---------------------------------------------------

    def _assign(self, stmt, targets, value, loop) -> None:
        info = self.info
        names = self._target_names(targets)
        if info is not None:
            info.assigned_names |= set(names)
        desc = large_expr(value)
        if desc is not None and info is not None and len(names) == 1:
            info.large_names[names[0]] = (stmt.lineno, desc)
        inv = self._classify(value, loop)
        api = self.model.env.api_call(value) if isinstance(value, ast.Call) else None
        tag = None
        if inv is not None:
            tag = {
                "task": TAG_REF,
                "actor_method": TAG_REF,
                "submit_many": TAG_REFS,
                "actor_create": TAG_HANDLE,
                "put": TAG_PUT,
            }[inv.kind]
        elif api == "wait":
            tag = TAG_WAIT
        elif api == "get":
            # get() yields plain values: clear stale ref tags on the targets.
            for name in names:
                self.tags.pop(name, None)
            return
        elif isinstance(value, (ast.ListComp, ast.List, ast.SetComp, ast.Set)):
            elements = (
                [value.elt]
                if isinstance(value, (ast.ListComp, ast.SetComp))
                else value.elts
            )
            kinds = set()
            for element in elements:
                element_inv = self._classify(element, loop)
                if element_inv is not None:
                    kinds.add(element_inv.kind)
            if kinds <= {"task", "actor_method", "put"} and kinds:
                tag = TAG_REFS
            elif kinds == {"actor_create"}:
                tag = TAG_HANDLES
        elif isinstance(value, ast.Name) and value.id in self.tags:
            tag = self.tags[value.id].tag  # plain alias keeps the tag
        elif (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
            and value.args
            and isinstance(value.args[0], ast.Name)
            and value.args[0].id in self.tags
        ):
            tag = self.tags[value.args[0].id].tag
        elif isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
            source = self.tags.get(value.value.id)
            if source is not None and source.tag in (TAG_WAIT, TAG_REFS, TAG_HANDLES):
                # An element of a wait list stays wait-derived; an element of
                # a ref/handle container is a single ref/handle.
                tag = {
                    TAG_WAIT: TAG_WAIT,
                    TAG_REFS: TAG_REF,
                    TAG_HANDLES: TAG_HANDLE,
                }[source.tag]
        if tag is None:
            for name in names:
                self.tags.pop(name, None)
            return
        for name in names:
            binding = RefBinding(name, tag, stmt, inv, loop)
            self.tags[name] = binding
            if info is not None:
                info.bindings.append(binding)

    @staticmethod
    def _target_names(targets) -> List[str]:
        names: List[str] = []
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        names.append(element.id)
        return names

    # -- blocking-call tagging ------------------------------------------------

    def _blocking(self, call: ast.Call, api: str, loop, assign_targets=None) -> None:
        arg = call.args[0] if call.args else None
        tag, target, fresh = TAG_UNKNOWN, "", None
        if arg is not None:
            inv = self._classify(arg, loop)
            if inv is not None:
                if inv.kind == "put":
                    tag = TAG_PUT
                else:
                    tag, target, fresh = TAG_REF, inv.target, inv
            elif isinstance(arg, ast.Name):
                binding = self.tags.get(arg.id)
                if binding is not None:
                    tag = binding.tag
                    if binding.invocation is not None:
                        target = binding.invocation.target
                    else:
                        target = arg.id
                    # Fresh only if produced under the *same* loop.
                    if tag in (TAG_REF, TAG_REFS) and binding.loop is not loop:
                        tag = TAG_UNKNOWN
                    elif tag in (TAG_REF, TAG_REFS):
                        fresh = binding.invocation
            elif isinstance(arg, ast.Subscript) and isinstance(arg.value, ast.Name):
                binding = self.tags.get(arg.value.id)
                if binding is not None and binding.tag == TAG_WAIT:
                    tag = TAG_WAIT
            elif isinstance(arg, (ast.List, ast.Tuple)):
                # get([a, b]) over same-loop fresh names
                kinds = set()
                for element in arg.elts:
                    if isinstance(element, ast.Name):
                        binding = self.tags.get(element.id)
                        if binding is not None and binding.loop is loop:
                            kinds.add(binding.tag)
                        else:
                            kinds.add(TAG_UNKNOWN)
                    else:
                        element_inv = self._classify(element, loop)
                        kinds.add(TAG_REF if element_inv else TAG_UNKNOWN)
                if kinds == {TAG_REF}:
                    tag = TAG_REFS
        result_names: Tuple[str, ...] = ()
        if assign_targets is not None:
            result_names = tuple(self._target_names(assign_targets))
        bc = BlockingCall(
            call=call,
            api=api,
            func=self.info,
            loop=loop,
            arg_tag=tag,
            arg_target=target,
            result_names=result_names,
            fresh_invocation=fresh,
        )
        if self.info is not None:
            self.info.blocking.append(bc)
        else:
            self.model.module_blocking.append(bc)


class ProjectModel:
    """Project-wide name registries: actor classes and remote functions
    defined in *any* scanned module, so `Worker.remote()` classifies as an
    actor creation even when `Worker` was imported from a sibling module."""

    def __init__(self, project) -> None:
        self.actor_classes: Set[str] = set()
        self.remote_fns: Set[str] = set()
        self.models: List[ModuleModel] = []
        for module in project.modules:
            model = model_for(module)
            self.models.append(model)
            self.actor_classes |= model.actor_classes | model.deployment_classes
            self.remote_fns |= model.remote_fns


def model_for(module) -> ModuleModel:
    """Memoized per-ModuleInfo dataflow model (one walk per file)."""
    model = getattr(module, "_df_model", None)
    if model is None:
        model = ModuleModel(module)
        module._df_model = model
    return model


def project_model(project) -> ProjectModel:
    model = getattr(project, "_df_project_model", None)
    if model is None:
        model = ProjectModel(project)
        project._df_project_model = model
    return model
