"""Distributed-dataflow rules (DF-*): ObjectRef usage over the repro API.

Where the RT-* family lints the runtime's own locking, the DF-* family
lints *users* of the programming model (paper §3.1): examples, RL
workloads, benchmark scripts, the serve plane.  All six rules read the
shared per-module :mod:`~repro.tools.analysis.dfgraph` model, so the AST
is walked once per file no matter how many rules run.

Catalog (see docs/STATIC_ANALYSIS.md for before/after snippets):

* DF-NESTED-GET — blocking ``get``/``wait`` inside worker-side code.
* DF-GET-IN-LOOP — per-iteration ``get`` on a ref produced in the same
  loop (directly, or inside a function the loop calls).
* DF-UNCONSUMED-REF — a produced ref that is never consumed.
* DF-LARGE-CAPTURE — a large inline value serialized per task instead of
  ``repro.put`` once.
* DF-UNBOUNDED-FANOUT — ``.remote()`` in a while-loop with no ``wait``/
  ``get`` backpressure.
* DF-ACTOR-CREATE-IN-LOOP — an actor created per iteration and leaked.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.tools.analysis import dfgraph
from repro.tools.analysis.dfgraph import (
    TAG_PUT,
    TAG_REF,
    TAG_REFS,
    BlockingCall,
    Invocation,
    ModuleModel,
)
from repro.tools.analysis.findings import ERROR, WARNING, Finding
from repro.tools.analysis.registry import rule


def _models(project) -> Iterator[Tuple["dfgraph.ProjectModel", ModuleModel]]:
    pm = dfgraph.project_model(project)
    for model in pm.models:
        if model.module.tree is not None:
            yield pm, model


def _all_blocking(model: ModuleModel) -> List[BlockingCall]:
    calls = list(model.module_blocking)
    for info in model.funcs.values():
        calls.extend(info.blocking)
    return calls


def _all_invocations(model: ModuleModel) -> List[Invocation]:
    invs = list(model.module_invocations)
    for info in model.funcs.values():
        invs.extend(info.invocations)
    return invs


def _loops_with_backpressure(model: ModuleModel) -> Set[int]:
    return {id(bc.loop) for bc in _all_blocking(model) if bc.loop is not None}


# -- DF-NESTED-GET -----------------------------------------------------------


@rule(
    "DF-NESTED-GET",
    "blocking get/wait inside a remote function or actor method",
)
def check_nested_get(project):
    for _pm, model in _models(project):
        module = model.module
        for info in model.funcs.values():
            if not info.remote_context:
                continue
            for bc in info.blocking:
                if bc.arg_tag == TAG_PUT:
                    # get on a ref the function put itself: a pure local
                    # store round trip, no worker is consumed waiting.
                    continue
                yield Finding(
                    rule_id="DF-NESTED-GET",
                    severity=WARNING,
                    path=module.relpath,
                    line=bc.call.lineno,
                    symbol=module.symbol_of(bc.call),
                    message=(
                        f"blocking repro.{bc.api} inside a {info.remote_via}: "
                        "the worker sits occupied while it waits, which can "
                        "deadlock the pool when nesting exceeds cluster slots"
                    ),
                    suggestion=(
                        "Return the ObjectRef(s) to the caller and get() at "
                        "the driver, or pass the upstream refs as task "
                        "arguments so the scheduler chains them. If this is "
                        "the paper's deliberate nested-parallelism pattern, "
                        "baseline it with a justification."
                    ),
                )


# -- DF-GET-IN-LOOP ----------------------------------------------------------


@rule(
    "DF-GET-IN-LOOP",
    "per-iteration blocking get on refs produced in the same loop",
)
def check_get_in_loop(project):
    for _pm, model in _models(project):
        module = model.module
        for bc in _all_blocking(model):
            if bc.api != "get" or bc.loop is None:
                continue
            if bc.arg_tag != TAG_REF:
                # Container gets (TAG_REFS) are the *batched* idiom — one
                # round trip per wave — and wait-derived / put / stale refs
                # are fine; only a single fresh ref per iteration serializes.
                continue
            if bc.result_names and model.results_flow_remote(
                bc.result_names, bc.func, bc.loop.body, exclude=bc.call
            ):
                # Loop-carried dependency: the fetched value feeds a later
                # remote call (directly or through a local helper), so the
                # round trip is semantically required.
                continue
            yield Finding(
                rule_id="DF-GET-IN-LOOP",
                severity=WARNING,
                path=module.relpath,
                line=bc.call.lineno,
                symbol=module.symbol_of(bc.call),
                message=(
                    f"per-iteration repro.get on '{bc.arg_target}' serializes "
                    "the loop: each round trip completes before the next "
                    "task is submitted"
                ),
                suggestion=(
                    "Submit all refs first and repro.get(refs) once after "
                    "the loop, consume completions with a repro.wait window, "
                    "or use submit_many for homogeneous calls."
                ),
            )
        # Interprocedural case: a local function that blocks on a ref it
        # produces, invoked from a loop — same serialization, one call away.
        seen = set()
        for info in model.funcs.values():
            for edge in info.local_calls:
                if edge.loop is None:
                    continue
                callee = model.funcs.get(edge.key)
                if callee is None or not callee.fresh_gets:
                    continue
                for fg in callee.fresh_gets:
                    key = (info.key, callee.key, id(fg.call))
                    if key in seen:
                        continue
                    seen.add(key)
                    yield Finding(
                        rule_id="DF-GET-IN-LOOP",
                        severity=WARNING,
                        path=module.relpath,
                        line=fg.call.lineno,
                        symbol=module.symbol_of(fg.call),
                        message=(
                            f"'{callee.key}' blocks on a fresh ref from "
                            f"'{fg.arg_target}' and is called from a loop in "
                            f"'{info.key}': one serial round trip per iteration"
                        ),
                        suggestion=(
                            "Let the helper return the ref (or queue it) and "
                            "batch the gets at the call site, or drop the get "
                            "if the result is unused — actor mailbox order "
                            "already guarantees execution order."
                        ),
                    )


# -- DF-UNCONSUMED-REF -------------------------------------------------------


@rule(
    "DF-UNCONSUMED-REF",
    "ObjectRef never consumed (get/wait/return/store): result stays pinned",
)
def check_unconsumed_ref(project):
    for _pm, model in _models(project):
        module = model.module
        for inv in model.module_discards:
            if inv.kind == "actor_create":
                continue  # handle leaks are DF-ACTOR-CREATE-IN-LOOP's beat
            yield _unconsumed(module, inv, name=None)
        for info in model.funcs.values():
            for inv in info.discards:
                if inv.kind == "actor_create":
                    continue
                yield _unconsumed(module, inv, name=None)
            reported: Set[str] = set()
            for binding in info.bindings:
                if binding.tag not in (TAG_REF, TAG_REFS, TAG_PUT):
                    continue
                if binding.name in info.loaded_names:
                    continue
                if binding.name in reported:
                    continue
                reported.add(binding.name)
                yield _unconsumed(module, binding.invocation, name=binding.name,
                                  node=binding.node)


def _unconsumed(module, inv: Optional[Invocation], name: Optional[str],
                node: Optional[ast.AST] = None) -> Finding:
    target = inv.target if inv is not None else "<ref>"
    if name is None:
        message = (
            f"ObjectRef from '{target}' is discarded immediately: the task "
            "still runs and its result stays pinned in the store/lineage"
        )
    else:
        message = (
            f"'{name}' holds ObjectRef(s) from '{target}' but is never "
            "consumed: result and lineage stay pinned"
        )
    anchor = node if node is not None else (inv.call if inv is not None else None)
    return Finding(
        rule_id="DF-UNCONSUMED-REF",
        severity=WARNING,
        path=module.relpath,
        line=getattr(anchor, "lineno", 1),
        symbol=module.symbol_of(anchor) if anchor is not None else "<module>",
        message=message,
        suggestion=(
            "get()/wait() the ref (a batched drain is fine), return it to "
            "the caller, or repro.cancel the task if the result is truly "
            "unneeded."
        ),
    )


# -- DF-LARGE-CAPTURE --------------------------------------------------------


@rule(
    "DF-LARGE-CAPTURE",
    "large inline value serialized per task instead of repro.put once",
)
def check_large_capture(project):
    for _pm, model in _models(project):
        module = model.module
        # Case 1: a large expression built directly inside a repeated
        # remote call's arguments.
        for inv in _all_invocations(model):
            if inv.kind == "put":
                continue
            if inv.loop is None and not inv.in_comprehension:
                continue
            for arg in list(inv.call.args) + [k.value for k in inv.call.keywords]:
                for node in ast.walk(arg):
                    desc = dfgraph.large_expr(node)
                    if desc is None:
                        continue
                    yield Finding(
                        rule_id="DF-LARGE-CAPTURE",
                        severity=WARNING,
                        path=module.relpath,
                        line=inv.call.lineno,
                        symbol=module.symbol_of(inv.call),
                        message=(
                            f"large value ({desc}) built inline in the "
                            f"arguments of '{inv.target}' inside a loop: "
                            "serialized again for every task"
                        ),
                        suggestion=(
                            "Build it once, repro.put() it, and pass the ref; "
                            "tasks then share one store copy (zero-copy reads)."
                        ),
                    )
                    break
        # Case 2: a name bound to a large value fanned out by value.
        for info in model.funcs.values():
            for name, (line, desc) in sorted(info.large_names.items()):
                uses = [
                    inv
                    for inv in info.invocations
                    if inv.kind != "put"
                    and name in dfgraph._names_in_args(inv.call)
                ]
                if not uses:
                    continue
                looped = [
                    u for u in uses if u.loop is not None or u.in_comprehension
                ]
                if not looped and len(uses) < 2:
                    continue
                anchor = (looped or uses)[0]
                yield Finding(
                    rule_id="DF-LARGE-CAPTURE",
                    severity=WARNING,
                    path=module.relpath,
                    line=anchor.call.lineno,
                    symbol=module.symbol_of(anchor.call),
                    message=(
                        f"'{name}' ({desc}) is passed by value to "
                        f"'{anchor.target}' repeatedly: one serialized copy "
                        "per task"
                    ),
                    suggestion=(
                        f"ref = repro.put({name}) once, then pass ref — "
                        "every task reads the same store object."
                    ),
                )
        # Case 3: worker-side code closing over a module-level large value.
        for info in model.funcs.values():
            if not (info.is_remote_fn or info.in_actor_class or info.in_deployment):
                continue
            captured = (
                (info.loaded_names & set(model.module_large))
                - info.assigned_names
                - set(info.params)
            )
            for name in sorted(captured):
                _line, desc = model.module_large[name]
                yield Finding(
                    rule_id="DF-LARGE-CAPTURE",
                    severity=WARNING,
                    path=module.relpath,
                    line=info.node.lineno,
                    symbol=module.symbol_of(info.node.body[0])
                    if info.node.body
                    else module.symbol_of(info.node),
                    message=(
                        f"worker-side function captures module-level "
                        f"'{name}' ({desc}): shipped with the function "
                        "instead of living in the object store"
                    ),
                    suggestion=(
                        f"repro.put({name}) at the driver and pass the ref "
                        "as an argument."
                    ),
                )


# -- DF-UNBOUNDED-FANOUT -----------------------------------------------------


@rule(
    "DF-UNBOUNDED-FANOUT",
    ".remote() in a while-loop with no wait/get backpressure window",
)
def check_unbounded_fanout(project):
    for _pm, model in _models(project):
        module = model.module
        backpressured = _loops_with_backpressure(model)
        seen = set()
        for inv in _all_invocations(model):
            if inv.kind in ("put", "actor_create"):
                continue
            if not isinstance(inv.loop, ast.While):
                continue
            if id(inv.loop) in backpressured:
                continue
            key = (id(inv.loop), inv.target)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                rule_id="DF-UNBOUNDED-FANOUT",
                severity=WARNING,
                path=module.relpath,
                line=inv.call.lineno,
                symbol=module.symbol_of(inv.call),
                message=(
                    f"unbounded fan-out: '{inv.target}' is submitted in a "
                    "while-loop that never waits on results — in-flight "
                    "tasks and pinned refs grow without limit"
                ),
                suggestion=(
                    "Keep a pending list and bound it with a wait window: "
                    "ready, pending = repro.wait(pending, num_returns=1) "
                    "once len(pending) exceeds the budget."
                ),
            )


# -- DF-ACTOR-CREATE-IN-LOOP -------------------------------------------------


@rule(
    "DF-ACTOR-CREATE-IN-LOOP",
    "actor created per loop iteration without retention or kill",
)
def check_actor_create_in_loop(project):
    for pm, model in _models(project):
        module = model.module
        for inv in _all_invocations(model):
            if not _is_actor_create(inv, pm):
                continue
            if inv.loop is None or inv.in_comprehension:
                continue  # comprehension = pool built into a container
            name = _binding_name(inv)
            if name is not None and _handle_retained_or_killed(
                model, inv, name
            ):
                continue
            if name is None and not _is_discard(model, inv):
                continue  # e.g. pool.append(Worker.remote()) — retained
            yield Finding(
                rule_id="DF-ACTOR-CREATE-IN-LOOP",
                severity=ERROR,
                path=module.relpath,
                line=inv.call.lineno,
                symbol=module.symbol_of(inv.call),
                message=(
                    f"actor '{inv.target}' is created every loop iteration "
                    "and neither retained nor killed: each replica (process "
                    "+ mailbox + GCS rows) leaks until shutdown"
                ),
                suggestion=(
                    "Create the actor pool once before the loop and reuse "
                    "the handles, or repro.kill(handle) before the iteration "
                    "ends if per-iteration actors are intended."
                ),
            )


def _is_actor_create(inv: Invocation, pm) -> bool:
    if inv.kind == "actor_create":
        return True
    # Cross-module: `Worker` imported from a sibling module that decorates
    # it with @repro.remote as a class.
    return inv.kind == "task" and inv.target in pm.actor_classes


def _binding_name(inv: Invocation) -> Optional[str]:
    # The scanner classifies an assigned call twice (expression walk and
    # assignment tagging), so match by the underlying Call node, not by
    # Invocation instance.
    if inv.func is None:
        return None
    for binding in inv.func.bindings:
        if binding.invocation is not None and binding.invocation.call is inv.call:
            return binding.name
    return None


def _is_discard(model: ModuleModel, inv: Invocation) -> bool:
    if inv.func is None:
        return inv in model.module_discards
    return inv in inv.func.discards


def _handle_retained_or_killed(model: ModuleModel, inv: Invocation, name: str) -> bool:
    env = model.env
    for stmt in inv.loop.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                if name in dfgraph._names_in(node.value):
                    return True
            if isinstance(node, ast.Assign):
                stored = any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                )
                if stored and name in dfgraph._names_in(node.value):
                    return True
            if not isinstance(node, ast.Call):
                continue
            api = env.api_call(node)
            if api == "kill" and name in dfgraph._names_in_args(node):
                return True
            if api is not None:
                continue
            if model.classify_call(node, inv.func, None) is not None:
                continue  # using the handle (`h.m.remote()`) is not retention
            if name in dfgraph._names_in_args(node):
                return True  # pool.append(h), helper(h), dict.setdefault(...)
    return False
