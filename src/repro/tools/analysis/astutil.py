"""Shared AST machinery for the concurrency rules.

The lock rules all need the same three ingredients:

* which expressions *are* locks (creation calls, name conventions, class
  lock attributes),
* which locks are held at any given AST node (``with`` nesting, plus the
  repo's documented conventions for lock-held helper methods), and
* per-class metadata (lock attributes, methods, inferred held-methods).

``iter_held`` is the core walker: it yields ``(node, held)`` for every node
in a function body where ``held`` is the frozenset of lock *tokens*
(``"self._lock"``, ``"state.cond"``, ``"gate"``) textually held at that
point.  Nested ``def``s are not entered inline — their bodies execute at
call time — but :func:`iter_function_regions` re-walks each closure with the
union of lock sets held at its call sites, which is how e.g. a blocking call
inside a helper closure invoked under a lock is still caught.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

LOCK_NAME_RE = re.compile(
    r"(?:^|_)(lock|rlock|cond|condition|mutex|gate|sem|semaphore|latch)s?$",
    re.IGNORECASE,
)

_LOCK_FACTORIES = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "make_lock",
    "make_rlock",
    "make_condition",
}

_HELD_DOC_RE = re.compile(r"lock\s+held|held\s+lock|caller\s+holds", re.IGNORECASE)

# Method calls on a guarded attribute that mutate it in place.
MUTATORS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``self.gcs.kv.put`` for an Attribute/Name chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def is_lock_creation(node: ast.AST) -> bool:
    """True for ``threading.Lock()``, ``make_condition(...)`` and kin."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    return name.rsplit(".", 1)[-1] in _LOCK_FACTORIES


def lock_token(expr: ast.AST) -> Optional[str]:
    """Token for a ``with`` context expression, or None if not nameable."""
    return dotted_name(expr)


def make_is_lock(class_lock_attrs: Set[str]):
    """Predicate: does this token name a lock, by convention or by class?"""

    def is_lock(token: str) -> bool:
        last = token.rsplit(".", 1)[-1]
        if token.startswith("self.") and last in class_lock_attrs:
            return True
        return bool(LOCK_NAME_RE.search(last))

    return is_lock


_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _iter_expr(expr: Optional[ast.AST], held) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    if expr is None:
        return
    for node in ast.walk(expr):
        yield node, held


def iter_held(
    body: List[ast.stmt],
    held: FrozenSet[str],
    is_lock,
) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    """Yield ``(node, held_tokens)`` for every node reachable inline."""
    for stmt in body:
        yield from _iter_stmt(stmt, held, is_lock)


def _iter_stmt(stmt, held, is_lock):
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        yield stmt, held
        acquired = set(held)
        for item in stmt.items:
            yield from _iter_expr(item.context_expr, held)
            yield from _iter_expr(item.optional_vars, held)
            token = lock_token(item.context_expr)
            if token is not None and is_lock(token):
                acquired.add(token)
        yield from iter_held(stmt.body, frozenset(acquired), is_lock)
    elif isinstance(stmt, _NESTED_SCOPES):
        yield stmt, held  # body runs at call time, not here
    elif isinstance(stmt, ast.Try):
        yield stmt, held
        yield from iter_held(stmt.body, held, is_lock)
        for handler in stmt.handlers:
            yield handler, held
            yield from _iter_expr(handler.type, held)
            yield from iter_held(handler.body, held, is_lock)
        yield from iter_held(stmt.orelse, held, is_lock)
        yield from iter_held(stmt.finalbody, held, is_lock)
    elif isinstance(stmt, (ast.If, ast.While)):
        yield stmt, held
        yield from _iter_expr(stmt.test, held)
        yield from iter_held(stmt.body, held, is_lock)
        yield from iter_held(stmt.orelse, held, is_lock)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt, held
        yield from _iter_expr(stmt.target, held)
        yield from _iter_expr(stmt.iter, held)
        yield from iter_held(stmt.body, held, is_lock)
        yield from iter_held(stmt.orelse, held, is_lock)
    else:
        yield stmt, held
        for node in ast.walk(stmt):
            if node is not stmt:
                yield node, held


def iter_function_regions(
    fn: ast.AST,
    entry_held: FrozenSet[str],
    is_lock,
) -> Iterator[Tuple[ast.AST, FrozenSet[str]]]:
    """``iter_held`` over a function body, then over each closure.

    Each directly nested ``def`` is re-walked with the union of lock sets
    held at its call sites inside this function (empty if never called or
    only called unlocked), so helpers like a ``try_transfer`` closure
    invoked under a lock are analyzed in their real lock context.
    """
    closures: Dict[str, ast.AST] = {}
    for stmt in fn.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            closures[stmt.name] = stmt
    call_held: Dict[str, Set[str]] = {name: set() for name in closures}
    for node, held in iter_held(fn.body, entry_held, is_lock):
        yield node, held
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in call_held
        ):
            call_held[node.func.id] |= held
    for name, closure in closures.items():
        yield from iter_function_regions(
            closure, frozenset(call_held[name]), is_lock
        )


# -- per-class metadata ------------------------------------------------------


@dataclass
class ClassInfo:
    node: ast.ClassDef
    name: str
    lock_attrs: Dict[str, int] = field(default_factory=dict)  # attr -> line
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    # method -> lock attrs (not tokens) held on entry, by convention or
    # by call-graph inference
    method_held: Dict[str, Set[str]] = field(default_factory=dict)

    def is_lock(self):
        return make_is_lock(set(self.lock_attrs))

    def entry_tokens(self, method: str) -> FrozenSet[str]:
        return frozenset(
            f"self.{attr}" for attr in self.method_held.get(method, ())
        )


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def build_class_info(classdef: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(node=classdef, name=classdef.name)
    for stmt in classdef.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
    # Lock attributes: assigned from a lock-creation call anywhere in the
    # class, or used as ``with self.X`` where X follows the lock-name
    # convention.
    for fn in info.methods.values():
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and is_lock_creation(node.value):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        info.lock_attrs.setdefault(attr, node.lineno)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and LOCK_NAME_RE.search(attr):
                        info.lock_attrs.setdefault(attr, node.lineno)
    _infer_method_held(info)
    return info


def _doc_claims_held(fn: ast.AST) -> bool:
    doc = ast.get_docstring(fn)
    return bool(doc and _HELD_DOC_RE.search(doc))


def _infer_method_held(info: ClassInfo) -> None:
    """Which methods run with a class lock already held?

    Seeds: the repo's two documented conventions — a ``_locked`` name
    suffix, or a docstring saying "lock held".  Then a bounded fixed point
    over the intra-class call graph: a private method whose every ``self.``
    call site holds lock L is itself treated as holding L.
    """
    all_locks = set(info.lock_attrs)
    if not all_locks:
        return
    held: Dict[str, Set[str]] = {}
    for name, fn in info.methods.items():
        if name.endswith("_locked") or _doc_claims_held(fn):
            held[name] = set(all_locks)
    for _ in range(4):
        call_sites: Dict[str, List[Set[str]]] = {m: [] for m in info.methods}
        for caller, fn in info.methods.items():
            entry = frozenset(f"self.{a}" for a in held.get(caller, ()))
            for node, tokens in iter_function_regions(
                fn, entry, info.is_lock()
            ):
                if not isinstance(node, ast.Call):
                    continue
                attr = _self_attr(node.func)
                if attr in call_sites:
                    call_sites[attr].append(
                        {
                            t[len("self."):]
                            for t in tokens
                            if t.startswith("self.") and t[len("self."):] in all_locks
                        }
                    )
        changed = False
        for method, sites in call_sites.items():
            if method in held or method == "__init__":
                continue
            if not method.startswith("_") or method.startswith("__"):
                continue  # public methods have unknowable external callers
            if not sites:
                continue
            common = set.intersection(*sites)
            if common and held.get(method) != common:
                held[method] = common
                changed = True
        if not changed:
            break
    info.method_held = held


# -- symbol map --------------------------------------------------------------


def symbol_map(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every node to its enclosing scope name ("Class.method", "fn",
    "<module>").  Nested defs keep the outermost two components."""
    symbols: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _NESTED_SCOPES):
                if scope == "<module>":
                    child_scope = child.name
                elif scope.count(".") == 0:
                    child_scope = f"{scope}.{child.name}"
                else:
                    child_scope = scope  # deeper nesting: keep Class.method
                symbols[child] = scope
                visit(child, child_scope)
            else:
                symbols[child] = scope
                visit(child, scope)

    symbols[tree] = "<module>"
    visit(tree, "<module>")
    return symbols
