"""Lock-discipline rules: RT-LOCK-GUARD, RT-BLOCKING-UNDER-LOCK, RT-LOCK-ORDER."""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.tools.analysis import astutil
from repro.tools.analysis.findings import ERROR, WARNING, Finding
from repro.tools.analysis.registry import rule

# -- RT-LOCK-GUARD -----------------------------------------------------------


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _target_writes(target: ast.AST):
    """(attr, node, is_in_place) for self-attributes an assignment target
    writes.  ``self.x = v`` is a whole-reference rebind (False);
    ``self.x[k] = v`` mutates the referenced object in place (True)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_writes(element)
        return
    if isinstance(target, ast.Starred):
        yield from _target_writes(target.value)
        return
    attr = _self_attr(target)
    if attr is not None:
        yield attr, target, False
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr, target.value, True


_CONTAINER_CTORS = {
    "dict",
    "list",
    "set",
    "deque",
    "OrderedDict",
    "defaultdict",
    "Counter",
    "bytearray",
}

_CONTAINER_LITERALS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def _container_attrs(cls: astutil.ClassInfo) -> Set[str]:
    """Attrs assigned a builtin container somewhere in the class.

    Mutator calls (``self.x.clear()``) only count as guarded writes for
    these: a custom object (e.g. a cache with its own lock) is responsible
    for its own thread safety, and calling its methods is not a write to
    the *attribute*.
    """
    attrs: Set[str] = set()
    for fn in cls.methods.values():
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            is_container = isinstance(value, _CONTAINER_LITERALS) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _CONTAINER_CTORS
            )
            if not is_container:
                continue
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.add(attr)
    return attrs


def _class_accesses(cls: astutil.ClassInfo):
    """Yield (attr, kind, mutation, line, method, held_lock_attrs).

    ``mutation`` marks in-place writes (aug-assign, subscript store,
    container-mutator call) as opposed to whole-reference rebinds.
    """
    skip = set(cls.lock_attrs) | set(cls.methods)
    containers = _container_attrs(cls)
    is_lock = cls.is_lock()
    for method_name, fn in cls.methods.items():
        consumed: Set[int] = set()
        for node, held in astutil.iter_function_regions(
            fn, cls.entry_tokens(method_name), is_lock
        ):
            held_attrs = frozenset(
                token[5:]
                for token in held
                if token.startswith("self.") and token[5:] in cls.lock_attrs
            )
            # (attr, node marking the write, is in-place mutation)
            writes: List[Tuple[str, ast.AST, bool]] = []
            if isinstance(node, (ast.Assign, ast.Delete)):
                for target in node.targets:
                    writes.extend(_target_writes(target))
            elif isinstance(node, ast.AnnAssign):
                writes.extend(_target_writes(node.target))
            elif isinstance(node, ast.AugAssign):
                for attr, attr_node, _mut in _target_writes(node.target):
                    writes.append((attr, attr_node, True))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in astutil.MUTATORS
                ):
                    attr = _self_attr(func.value)
                    if attr is not None and attr in containers:
                        writes.append((attr, func.value, True))
            for attr, attr_node, mutation in writes:
                consumed.add(id(attr_node))
                if attr not in skip:
                    yield attr, "write", mutation, node.lineno, method_name, held_attrs
            if (
                isinstance(node, ast.Attribute)
                and id(node) not in consumed
                and isinstance(node.ctx, ast.Load)
            ):
                attr = _self_attr(node)
                if attr is not None and attr not in skip:
                    yield attr, "read", False, node.lineno, method_name, held_attrs


@rule(
    "RT-LOCK-GUARD",
    "class attribute written under a lock in one method but accessed "
    "without it elsewhere",
)
def check_lock_guard(project):
    for module in project.modules:
        for cls in module.classes:
            if not cls.lock_attrs:
                continue
            accesses = list(_class_accesses(cls))
            # Infer each attribute's guard: the lock(s) held at *every*
            # locked write outside __init__.  No locked writes, or writes
            # under disjoint locks => no inferable discipline, stay silent.
            locked_writes: Dict[str, List[FrozenSet[str]]] = {}
            mutated: Set[str] = set()
            for attr, kind, mutation, _line, method, held in accesses:
                if kind != "write" or method == "__init__":
                    continue
                if held:
                    locked_writes.setdefault(attr, []).append(held)
                if mutation:
                    mutated.add(attr)
            for attr, held_sets in locked_writes.items():
                guard_set = frozenset.intersection(*held_sets)
                if not guard_set:
                    continue
                guard = sorted(guard_set)[0]
                for acc_attr, kind, _mutation, line, method, held in accesses:
                    if acc_attr != attr or method == "__init__":
                        continue
                    if guard_set & held:
                        continue
                    if kind == "read" and attr not in mutated:
                        # Rebind-only attribute: an unguarded read is a
                        # benign stale-reference snapshot (reference loads
                        # are atomic); only in-place-mutated objects can be
                        # observed mid-update.
                        continue
                    verb = "written" if kind == "write" else "read"
                    yield Finding(
                        rule_id="RT-LOCK-GUARD",
                        severity=ERROR if kind == "write" else WARNING,
                        path=module.relpath,
                        line=line,
                        symbol=f"{cls.name}.{method}",
                        message=(
                            f"attribute '{attr}' is written under "
                            f"'self.{guard}' elsewhere but {verb} here "
                            f"without holding it"
                        ),
                    )


# -- RT-BLOCKING-UNDER-LOCK --------------------------------------------------

_THREADISH_RE = re.compile(
    r"thread|worker|proc|dispatch|flusher|server|runner", re.IGNORECASE
)
_GCS_SEGMENT_RE = re.compile(r"^_*(gcs|kv)$", re.IGNORECASE)


def _call_parts(call: ast.Call) -> Tuple[Optional[str], Optional[str], Optional[ast.AST]]:
    """(last_segment, receiver_token, receiver_node) of a call target."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id, None, None
    if isinstance(func, ast.Attribute):
        return func.attr, astutil.dotted_name(func.value), func.value
    return None, None, None


def _blocking_reason(call: ast.Call, held: FrozenSet[str]) -> Optional[str]:
    last, receiver, receiver_node = _call_parts(call)
    if last is None:
        return None
    dotted = astutil.dotted_name(call.func) or last
    if last == "sleep":
        return f"'{dotted}' sleeps while holding a lock"
    if last == "wait_any":
        return f"'{dotted}' blocks on completions while holding a lock"
    if last in ("wait", "wait_for"):
        # Waiting on the *held* condition is the correct event-layer idiom
        # (the wait releases that lock); waiting on anything else blocks
        # with the lock held.
        if receiver is not None and receiver in held:
            return None
        return f"'{dotted}' waits on an object other than the held lock"
    if last == "acquire":
        if receiver is not None and receiver in held:
            return None
        return f"'{dotted}' may block acquiring another resource"
    if last == "join":
        if receiver is None or not _THREADISH_RE.search(receiver):
            return None  # str.join / os.path.join and friends
        return f"'{dotted}' joins a thread while holding a lock"
    if last in ("fetch", "fetch_to_node", "ensure_local"):
        return f"'{dotted}' performs an object transfer while holding a lock"
    if receiver is not None and any(
        _GCS_SEGMENT_RE.match(segment) for segment in receiver.split(".")
    ):
        return f"GCS RPC '{dotted}' issued while holding a lock"
    return None


def _iter_scopes(module):
    """Yield (symbol, fn, entry_held, is_lock) for every function to walk."""
    if module.tree is None:
        return
    class_funcs = set()
    for cls in module.classes:
        is_lock = cls.is_lock()
        for method_name, fn in cls.methods.items():
            class_funcs.add(id(fn))
            yield (
                f"{cls.name}.{method_name}",
                fn,
                cls.entry_tokens(method_name),
                is_lock,
            )
    plain_is_lock = astutil.make_is_lock(set())
    for node in module.tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and id(node) not in class_funcs
        ):
            yield node.name, node, frozenset(), plain_is_lock


@rule(
    "RT-BLOCKING-UNDER-LOCK",
    "blocking call (sleep / wait / transfer / GCS RPC) inside a with-lock body",
)
def check_blocking_under_lock(project):
    for module in project.modules:
        for symbol, fn, entry, is_lock in _iter_scopes(module):
            for node, held in astutil.iter_function_regions(fn, entry, is_lock):
                if not held or not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node, held)
                if reason is None:
                    continue
                yield Finding(
                    rule_id="RT-BLOCKING-UNDER-LOCK",
                    severity=ERROR,
                    path=module.relpath,
                    line=node.lineno,
                    symbol=symbol,
                    message=f"{reason} (holding {', '.join(sorted(held))})",
                )


# -- RT-LOCK-ORDER -----------------------------------------------------------


def _canonical(token, cls, module, symbol, owners):
    if token.startswith("self.") and cls is not None:
        attr = token[len("self."):]
        if attr in cls.lock_attrs:
            return f"{cls.name}.{attr}"
    last = token.rsplit(".", 1)[-1]
    owning = owners.get(last, set())
    if len(owning) == 1:
        return f"{next(iter(owning))}.{last}"
    # Ambiguous or function-local: scope the node to this function so
    # unrelated ``_lock``s across the project never merge into one node.
    return f"{module.relpath}:{symbol}:{token}"


@rule(
    "RT-LOCK-ORDER",
    "cycle in the static lock-acquisition-order graph (nested with "
    "statements across modules)",
)
def check_lock_order(project):
    owners = project.lock_owners()
    edges: Dict[str, Set[str]] = {}
    witness: Dict[Tuple[str, str], Tuple[str, str, int]] = {}

    def add_edge(src, dst, module, symbol, line):
        if src == dst:
            return  # same canonical lock: reentrancy, not an order edge
        edges.setdefault(src, set())
        edges.setdefault(dst, set())
        if dst not in edges[src]:
            edges[src].add(dst)
            witness[(src, dst)] = (module.relpath, symbol, line)

    for module in project.modules:
        cls_by_fn = {}
        for cls in module.classes:
            for fn in cls.methods.values():
                cls_by_fn[id(fn)] = cls
        for symbol, fn, entry, is_lock in _iter_scopes(module):
            cls = cls_by_fn.get(id(fn))
            for node, held in astutil.iter_function_regions(fn, entry, is_lock):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                acquired = [
                    token
                    for token in (
                        astutil.lock_token(item.context_expr)
                        for item in node.items
                    )
                    if token is not None and is_lock(token)
                ]
                current = [
                    _canonical(t, cls, module, symbol, owners) for t in held
                ]
                for token in acquired:
                    canon = _canonical(token, cls, module, symbol, owners)
                    for holder in current:
                        add_edge(holder, canon, module, symbol, node.lineno)
                    current.append(canon)

    for cycle in _find_cycles(edges):
        members = set(cycle)
        pair = next(
            (
                (a, b)
                for (a, b) in sorted(witness)
                if a in members and b in members
            ),
            None,
        )
        path, symbol, line = (
            witness[pair] if pair is not None else ("?", "<module>", 1)
        )
        chain = " -> ".join(cycle + [cycle[0]])
        yield Finding(
            rule_id="RT-LOCK-ORDER",
            severity=ERROR,
            path=path,
            line=line,
            symbol=symbol,
            message=f"lock-order cycle: {chain}",
        )


def _find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Strongly connected components of size >= 2, as ordered cycles."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    sccs: List[List[str]] = []

    def strongconnect(root):
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) >= 2:
                    sccs.append(sorted(component))

    for node in sorted(edges):
        if node not in index:
            strongconnect(node)
    return sccs
