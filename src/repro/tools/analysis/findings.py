"""Finding records produced by analysis rules.

A finding is stable across unrelated edits: its baseline fingerprint is
``(rule_id, path, symbol, message)`` — deliberately *without* the line
number, so adding a line above a grandfathered finding does not resurrect
it in ``--strict`` CI runs.  Messages therefore never embed line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

ERROR = "error"
WARNING = "warning"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    rule_id: str
    severity: str
    path: str  # repo-relative, posix separators
    line: int
    symbol: str  # enclosing scope, e.g. "LocalObjectStore.put" or "<module>"
    message: str
    suggestion: str = ""  # how to fix it; excluded from the fingerprint

    def fingerprint(self) -> Tuple[str, str, str, str]:
        return (self.rule_id, self.path, self.symbol, self.message)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.severity} {self.rule_id} "
            f"[{self.symbol}] {self.message}"
        )

    def as_dict(self) -> dict:
        payload = {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }
        if self.suggestion:
            payload["suggestion"] = self.suggestion
        return payload

    def sort_key(self):
        return (
            self.path,
            self.line,
            _SEVERITY_RANK.get(self.severity, 9),
            self.rule_id,
        )
