"""Grandfathered-finding baseline.

The checked-in ``analysis_baseline.json`` lists findings that are known and
*justified* — each entry carries a human-written ``justification`` string.
``--strict`` fails only on findings absent from the baseline, so the gate
ratchets: existing debt is visible but frozen, new debt fails CI.

Entries are keyed by the finding fingerprint (rule, path, symbol, message),
never by line number, so unrelated edits don't churn the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.tools.analysis.findings import Finding

VERSION = 1


class Baseline:
    def __init__(self, entries: Optional[List[dict]] = None):
        self.entries: List[dict] = entries or []
        self._index = {}
        for entry in self.entries:
            self._index[self._key(entry)] = entry

    @staticmethod
    def _key(entry: dict):
        return (entry["rule"], entry["path"], entry["symbol"], entry["message"])

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(entries=list(data.get("entries", [])))

    def match(self, finding: Finding) -> Optional[dict]:
        return self._index.get(finding.fingerprint())

    @staticmethod
    def save(
        path: Union[str, Path],
        findings: Iterable[Finding],
        justification: str = "TODO: justify this suppression",
        previous: Optional["Baseline"] = None,
    ) -> int:
        """Write a baseline covering ``findings``.

        Justifications from ``previous`` are preserved for entries that
        still fire, so regenerating never loses the written rationale.
        """
        entries = []
        seen = set()
        for finding in findings:
            key = finding.fingerprint()
            if key in seen:
                continue
            seen.add(key)
            entry = {
                "rule": finding.rule_id,
                "path": finding.path,
                "symbol": finding.symbol,
                "message": finding.message,
                "justification": justification,
            }
            if previous is not None:
                old = previous.match(finding)
                if old is not None and old.get("justification"):
                    entry["justification"] = old["justification"]
            entries.append(entry)
        entries.sort(key=lambda e: (e["path"], e["rule"], e["symbol"]))
        payload = {"version": VERSION, "entries": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return len(entries)
