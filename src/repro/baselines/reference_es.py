"""Evolution Strategies scaling models (Figure 14a).

The reference ES system (Salimans et al.) is special-purpose: a single
driver broadcasts the policy, collects ~10,000 rollout results per
iteration over Redis, and aggregates them itself.  Beyond ~1024 cores the
result arrival rate exceeds the driver's processing capacity, the backlog
grows without bound, and the system fails to complete — the paper's "✗"
points at 2048+ cores.

The Ray implementation aggregates through a tree of actors, so the root
only sees ``sqrt(W)``-ish partial sums and keeps scaling; the paper reports
a median of 3.7 minutes at 8192 cores, with each doubling of cores giving
a ~1.6× speedup.

Both models share :class:`ESWorkloadModel` so the comparison differs only
in the aggregation structure — exactly the paper's framing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ESWorkloadModel:
    """The Humanoid-v1 ES workload as the paper describes it."""

    tasks_per_iteration: int = 10_000  # rollouts aggregated per update
    mean_task_seconds: float = 0.12  # 10–1000 sim steps per rollout
    iterations_to_solve: int = 300  # updates until score 6000
    broadcast_seconds: float = 0.15  # policy broadcast per iteration
    driver_per_result_seconds: float = 80e-6  # driver-side handling cost
    aggregator_per_result_seconds: float = 60e-6  # tree-node handling cost
    update_seconds: float = 0.45  # the SGD-style policy update


def reference_es_time_to_solve(
    num_cores: int, model: ESWorkloadModel = ESWorkloadModel()
) -> float:
    """Seconds to solve for the single-driver reference system.

    Returns ``inf`` when the driver is saturated: results arrive faster
    than it can process them, so iterations never complete (the paper's
    failure beyond 1024 cores).
    """
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    arrival_rate = num_cores / model.mean_task_seconds  # results/second
    service_rate = 1.0 / model.driver_per_result_seconds
    utilization = arrival_rate / service_rate
    if utilization >= 1.0:
        return math.inf
    compute = model.tasks_per_iteration * model.mean_task_seconds / num_cores
    # The driver serially processes every result; near saturation the
    # backlog inflates the effective aggregation time (M/M/1-style).
    aggregation = (
        model.tasks_per_iteration * model.driver_per_result_seconds
    ) / (1.0 - utilization)
    iteration = model.broadcast_seconds + max(compute, aggregation) + model.update_seconds
    return model.iterations_to_solve * iteration


def ray_es_time_to_solve(
    num_cores: int,
    model: ESWorkloadModel = ESWorkloadModel(),
    hierarchical: bool = True,
    fanout: int = 64,
) -> float:
    """Seconds to solve for the Ray implementation.

    With ``hierarchical`` aggregation (the paper's actor tree), each of
    ``ceil(W / fanout)`` aggregators absorbs its children's results in
    parallel and the driver only folds the aggregator outputs.  Without it
    the driver degrades like the reference system (but with Ray's cheaper
    result path, since objects arrive through the local store).
    """
    if num_cores <= 0:
        raise ValueError("num_cores must be positive")
    compute = model.tasks_per_iteration * model.mean_task_seconds / num_cores
    if hierarchical:
        num_aggregators = max(1, math.ceil(num_cores / fanout))
        per_aggregator = (
            model.tasks_per_iteration / num_aggregators
        ) * model.aggregator_per_result_seconds
        driver_fold = num_aggregators * model.driver_per_result_seconds
        aggregation = per_aggregator + driver_fold
    else:
        arrival_rate = num_cores / model.mean_task_seconds
        service_rate = 1.0 / model.driver_per_result_seconds
        utilization = arrival_rate / service_rate
        if utilization >= 1.0:
            return math.inf
        aggregation = (
            model.tasks_per_iteration * model.driver_per_result_seconds
        ) / (1.0 - utilization)
    iteration = model.broadcast_seconds + max(compute, aggregation) + model.update_seconds
    return model.iterations_to_solve * iteration
