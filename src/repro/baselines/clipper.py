"""Clipper-style REST serving baseline (Table 3).

Clipper serves predictions to external clients over REST: every query is
JSON-serialized, sent over HTTP, deserialized, evaluated, and the response
travels the same path back.  Ray's embedded serving instead hands the
state to a co-located actor through the shared-memory object store.

The baseline performs the *real* encode/decode work of the REST path —
base64-wrapped payloads inside JSON envelopes, both directions — so its
throughput penalty on large inputs (the paper's 100 KB states: 290
states/s vs Ray's 6900) emerges from actual CPU cost rather than a fudge
factor.  The model-evaluation cost itself is injected, identical for both
systems, exactly as the paper holds the model fixed across systems.
"""

from __future__ import annotations

import base64
import json
import time
from typing import Callable, List, Sequence


class ClipperLikeServer:
    """In-process stand-in for a REST prediction service."""

    def __init__(
        self,
        evaluate: Callable[[List[bytes]], List[float]],
        http_overhead: float = 0.8e-3,
    ):
        """``evaluate`` maps a batch of raw states to predictions;
        ``http_overhead`` models connection + framing cost per request."""
        self._evaluate = evaluate
        self.http_overhead = http_overhead
        self.requests = 0

    # -- the REST path, for real -------------------------------------------------

    @staticmethod
    def _encode_request(states: Sequence[bytes]) -> str:
        return json.dumps(
            {"states": [base64.b64encode(s).decode("ascii") for s in states]}
        )

    @staticmethod
    def _decode_request(payload: str) -> List[bytes]:
        body = json.loads(payload)
        return [base64.b64decode(s) for s in body["states"]]

    @staticmethod
    def _encode_response(predictions: Sequence[float]) -> str:
        return json.dumps({"predictions": list(predictions)})

    @staticmethod
    def _decode_response(payload: str) -> List[float]:
        return json.loads(payload)["predictions"]

    def query(self, states: Sequence[bytes]) -> List[float]:
        """One client request: encode → 'send' → decode → eval → back."""
        self.requests += 1
        request_payload = self._encode_request(states)
        if self.http_overhead:
            time.sleep(self.http_overhead)
        server_states = self._decode_request(request_payload)
        predictions = self._evaluate(server_states)
        response_payload = self._encode_response(predictions)
        return self._decode_response(response_payload)

    # -- measurement -------------------------------------------------------------

    def measure_throughput(
        self,
        states: Sequence[bytes],
        duration_seconds: float = 1.0,
    ) -> float:
        """States served per second for repeated batches of ``states``."""
        served = 0
        start = time.perf_counter()
        while time.perf_counter() - start < duration_seconds:
            self.query(states)
            served += len(states)
        elapsed = time.perf_counter() - start
        return served / elapsed
