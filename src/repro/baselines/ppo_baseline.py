"""PPO scaling models: MPI-symmetric vs Ray heterogeneity-aware (Fig 14b).

The paper's PPO experiment collects 320,000 simulation steps per iteration
(tasks of 10–1000 steps), then runs 20 SGD steps on the gathered batch.
The baseline (OpenAI Baselines MPI PPO) runs *symmetric* processes: every
process needs a GPU (1 GPU per 8 CPUs), rollouts are gathered with
bulk-synchronous allgather barriers, and scale-out requires GPU machines.

Ray expresses the same algorithm as an asynchronous scatter-gather:
CPU-only simulation tasks stream rollouts to GPU driver actors as they
finish (``wait``-based), so (a) collection suffers no barrier straggler
penalty, and (b) at most 8 GPUs are needed regardless of CPU count — the
basis of the paper's 4.5× cost reduction.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PPOWorkloadModel:
    steps_per_iteration: int = 320_000
    steps_per_cpu_second: float = 420.0  # Humanoid-v1 simulation rate
    sgd_steps: int = 20
    sgd_step_seconds: float = 0.55  # one minibatch (32768) on one GPU
    iterations_to_solve: int = 100  # until score 6000
    bsp_straggler_factor: float = 1.45  # barrier penalty on 10–1000-step tasks
    gather_overhead: float = 0.5  # allgather + broadcast per iteration


def mpi_ppo_time_to_solve(
    num_cpus: int, num_gpus: int, model: PPOWorkloadModel = PPOWorkloadModel()
) -> float:
    """Symmetric MPI PPO: BSP collection, data-parallel SGD on all GPUs.

    The MPI implementation requires ``num_gpus = num_cpus / 8`` (every
    process pins a GPU); callers pass the paper's configurations.
    """
    if num_cpus <= 0 or num_gpus <= 0:
        raise ValueError("cpus and gpus must be positive")
    collection = (
        model.steps_per_iteration
        / (num_cpus * model.steps_per_cpu_second)
        * model.bsp_straggler_factor
    )
    # Data-parallel SGD with allreduce efficiency loss at scale.
    sgd_efficiency = 0.75 if num_gpus > 8 else 1.0
    update = model.sgd_steps * model.sgd_step_seconds / (num_gpus * sgd_efficiency)
    iteration = collection + update + model.gather_overhead
    return model.iterations_to_solve * iteration


def ray_ppo_time_to_solve(
    num_cpus: int,
    num_gpus: int,
    model: PPOWorkloadModel = PPOWorkloadModel(),
    max_gpus: int = 8,
) -> float:
    """Ray PPO: asynchronous collection on CPUs, SGD on at most 8 GPUs.

    Collection and (pinned-in-GPU-memory) batching overlap, so there is no
    straggler penalty; GPUs beyond ``max_gpus`` are simply not needed.
    """
    if num_cpus <= 0 or num_gpus <= 0:
        raise ValueError("cpus and gpus must be positive")
    effective_gpus = min(num_gpus, max_gpus)
    collection = model.steps_per_iteration / (num_cpus * model.steps_per_cpu_second)
    update = model.sgd_steps * model.sgd_step_seconds / effective_gpus
    # Asynchronous scatter-gather: rollouts stream into GPU memory as they
    # finish, so batching and much of the SGD work overlap the tail of
    # collection instead of serializing behind a barrier.
    iteration = max(collection, update) + 0.25 * model.gather_overhead
    return model.iterations_to_solve * iteration
