"""Centralized-scheduler baseline (Spark / CIEL / Dask style).

Most cluster computing frameworks route every task through one scheduler
process.  That gives the scheduler a global view but caps task throughput
at the scheduler's service rate and puts its latency on every task's
critical path.  The paper cites centralized scheduler overheads in the
tens of milliseconds (Spark, CIEL) and Dask's reported maximum of ~3 k
tasks/s on 512 cores — versus Ray's 1.8 M tasks/s.

The model is an M/D/1-style pipe: tasks arrive, are serviced sequentially
at ``1 / service_time`` per second, then run on any of ``num_cores``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.bsp import async_makespan


@dataclass(frozen=True)
class CentralizedSchedulerModel:
    """A single scheduler with fixed per-task service time and latency.

    ``service_time`` bounds throughput (Dask ≈ 1/3000 s); ``decision
    latency`` is added to each task's completion (Spark ≈ 10–30 ms).
    """

    service_time: float = 1.0 / 3000.0
    decision_latency: float = 0.01

    @property
    def max_tasks_per_second(self) -> float:
        return 1.0 / self.service_time

    def makespan(self, durations: Sequence[float], num_cores: int) -> float:
        """Makespan of a task set: scheduler-limited dispatch + execution.

        Dispatch is serialized through the scheduler; cores execute with
        list scheduling once tasks are released.
        """
        if num_cores <= 0:
            raise ValueError("num_cores must be positive")
        # Completion is bounded below both by the dispatch pipe draining and
        # by the compute capacity; the pipe also delays the last task.
        dispatch_done = len(durations) * self.service_time
        compute = async_makespan(durations, num_cores)
        return max(dispatch_done, compute) + self.decision_latency

    def allreduce_round_penalty(self, tasks_per_round: int) -> float:
        """Scheduling delay added to one allreduce round: the round's tasks
        serialize through the central scheduler (the Related-Work Dask
        arithmetic: 16 tasks ≈ 5 ms of scheduling per round)."""
        return tasks_per_round * self.service_time + self.decision_latency
