"""OpenMPI-style ring allreduce cost model (Figure 12a).

The paper attributes Ray's win at large object sizes to multithreaded
transfers: "OpenMPI sequentially sends and receives data on a single
thread".  We model that directly — each ring round serializes the send and
the receive on one thread at single-stream TCP bandwidth — and reproduce
OpenMPI's *small-message* advantage with the algorithm switch the paper
mentions: below a threshold OpenMPI uses a lower-overhead
recursive-doubling algorithm with log₂(n) rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class OpenMPIConfig:
    num_nodes: int = 16
    stream_bandwidth: float = 1.2e9  # one TCP stream, bytes/s
    per_round_overhead: float = 0.2e-3  # software overhead per ring round
    small_message_threshold: int = 32 * 1024 * 1024  # algorithm switch point
    small_round_latency: float = 150e-6  # per recursive-doubling round


def _ring_time(size: int, config: OpenMPIConfig) -> float:
    n = config.num_nodes
    chunk = size / n
    rounds = 2 * (n - 1)
    # Send and receive serialized on a single thread: 2 chunk times/round.
    per_round = 2 * chunk / config.stream_bandwidth + config.per_round_overhead
    return rounds * per_round


def _recursive_doubling_time(size: int, config: OpenMPIConfig) -> float:
    rounds = max(1, math.ceil(math.log2(config.num_nodes)))
    per_round = size / config.stream_bandwidth + config.small_round_latency
    return rounds * per_round


def openmpi_allreduce_time(
    object_size: int, config: OpenMPIConfig = OpenMPIConfig()
) -> float:
    """Completion time of one OpenMPI allreduce of ``object_size`` bytes.

    OpenMPI picks its algorithm by message size; we take the faster of the
    two models, with the configured switch point as a tie-breaker — this
    reproduces the paper's observation that OpenMPI beats Ray for smaller
    objects but loses 1.5–2× at 100 MB–1 GB.
    """
    ring = _ring_time(object_size, config)
    if object_size <= config.small_message_threshold:
        return min(ring, _recursive_doubling_time(object_size, config))
    return ring
