"""Bulk-synchronous-parallel (MPI-style) execution baseline.

BSP systems (MapReduce, Spark, and the paper's MPI comparison program) run
tasks in *rounds* separated by global barriers: the next round starts only
when the slowest task of the current round finishes.  With heterogeneous
task durations — exactly the profile of RL simulations (10–1000 steps per
rollout, Table 4) — every round wastes the idle time between each worker's
finish and the round's maximum.

Ray's asynchronous task model instead backfills: a finished core
immediately takes the next task (list scheduling).  ``bsp_makespan`` vs
``async_makespan`` quantifies the gap.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence


def bsp_makespan(
    durations: Sequence[float],
    num_workers: int,
    barrier_cost: float = 0.0,
) -> float:
    """Makespan of tasks run in rounds of ``num_workers`` with barriers.

    Tasks are taken in submission order, ``num_workers`` at a time (the
    paper's MPI program submits 3n tasks on n cores in 3 rounds); each
    round costs its maximum duration plus ``barrier_cost``.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    total = 0.0
    for start in range(0, len(durations), num_workers):
        round_tasks = durations[start : start + num_workers]
        total += max(round_tasks) + barrier_cost
    return total


def simulate_bsp_rounds(
    rounds: Sequence[Sequence[float]], barrier_cost: float = 0.0
) -> float:
    """Makespan with explicit per-round task lists."""
    return sum(max(r) + barrier_cost for r in rounds if r)


def async_makespan(
    durations: Sequence[float],
    num_workers: int,
    per_task_overhead: float = 0.0,
) -> float:
    """List-scheduling makespan (Ray-style asynchronous tasks).

    Each task is assigned to the earliest-available worker as soon as it
    frees up; ``per_task_overhead`` models scheduling cost added to every
    task (Ray's is tens of microseconds).
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    workers: List[float] = [0.0] * min(num_workers, max(1, len(durations)))
    heapq.heapify(workers)
    finish = 0.0
    for duration in durations:
        start = heapq.heappop(workers)
        end = start + duration + per_task_overhead
        finish = max(finish, end)
        heapq.heappush(workers, end)
    return finish


def bsp_efficiency_ratio(
    durations: Sequence[float], num_workers: int
) -> float:
    """async/BSP throughput ratio for the same workload (>= 1)."""
    bsp = bsp_makespan(durations, num_workers)
    asy = async_makespan(durations, num_workers)
    return bsp / asy if asy > 0 else float("inf")
