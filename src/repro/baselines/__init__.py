"""Baseline systems the paper compares against.

Each baseline implements the *execution structure* of the system it stands
in for — the structural property that drives the paper's comparison —
rather than wrapping the (unavailable) original binary:

* :mod:`repro.baselines.bsp` — bulk-synchronous-parallel execution with
  global barriers between rounds (MPI-style; Table 4, Fig 14b).
* :mod:`repro.baselines.centralized` — a single centralized scheduler with
  bounded throughput and per-task latency (Spark/CIEL/Dask-style; the
  Related-Work Dask comparison and the Fig 12b discussion).
* :mod:`repro.baselines.mpi_allreduce` — OpenMPI's allreduce: sequential
  single-threaded send/receive, with an algorithm switch for small
  messages (Fig 12a).
* :mod:`repro.baselines.clipper` — REST-style model serving with real
  JSON/base64 encode-decode on the query path (Table 3).
* :mod:`repro.baselines.reference_es` — the special-purpose ES system:
  a single driver aggregates all rollout results and becomes the
  bottleneck beyond ~1024 cores (Fig 14a).
* :mod:`repro.baselines.sgd_baselines` — Horovod-style and Distributed-
  TensorFlow-style synchronous SGD cost models (Fig 13).
"""

from repro.baselines.bsp import async_makespan, bsp_makespan, simulate_bsp_rounds
from repro.baselines.centralized import CentralizedSchedulerModel
from repro.baselines.mpi_allreduce import openmpi_allreduce_time
from repro.baselines.clipper import ClipperLikeServer
from repro.baselines.reference_es import (
    ESWorkloadModel,
    ray_es_time_to_solve,
    reference_es_time_to_solve,
)
from repro.baselines.ppo_baseline import (
    PPOWorkloadModel,
    mpi_ppo_time_to_solve,
    ray_ppo_time_to_solve,
)
from repro.baselines.sgd_baselines import (
    SGDWorkloadModel,
    distributed_tf_images_per_second,
    horovod_images_per_second,
    ray_sgd_images_per_second,
)

__all__ = [
    "bsp_makespan",
    "async_makespan",
    "simulate_bsp_rounds",
    "CentralizedSchedulerModel",
    "openmpi_allreduce_time",
    "ClipperLikeServer",
    "ESWorkloadModel",
    "reference_es_time_to_solve",
    "ray_es_time_to_solve",
    "PPOWorkloadModel",
    "mpi_ppo_time_to_solve",
    "ray_ppo_time_to_solve",
    "SGDWorkloadModel",
    "horovod_images_per_second",
    "distributed_tf_images_per_second",
    "ray_sgd_images_per_second",
]
