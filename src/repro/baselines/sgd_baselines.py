"""Synchronous data-parallel SGD cost models (Figure 13).

The paper distributes ResNet-101 training over 4–64 V100 GPUs and compares
Ray's parameter-server SGD against Horovod and Distributed TensorFlow in
``distributed_replicated`` mode.  All three run the *same* per-GPU compute
kernel; they differ only in how gradients are synchronized:

* **Horovod** — ring allreduce over NCCL/MPI, overlapped with backprop;
* **Distributed TF** — replicated parameter servers with fused
  variable updates (the best-tuned path; the paper reports Ray within 10%);
* **Ray** — sharded parameter-server actors, with gradient computation,
  transfer, and summation pipelined within an iteration (the custom
  TF-operator-into-object-store optimization).

The models share one :class:`SGDWorkloadModel` (batch 64/GPU, ~110
images/s/GPU on a V100, ≈170 MB of fp32 gradients) and differ in the
synchronization term, reproducing the paper's ordering: Distributed TF ≳
Ray ≈ Horovod, all within ~10%, scaling near-linearly to 64 GPUs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SGDWorkloadModel:
    """ResNet-101-like fixed compute kernel plus gradient exchange."""

    batch_per_gpu: int = 64
    images_per_second_per_gpu: float = 110.0  # V100 fp32 ResNet-101
    gradient_bytes: int = 170_000_000  # fp32 parameter gradients
    node_bandwidth: float = 3.1e9  # 25 Gbps inter-node
    gpus_per_node: int = 4  # paper: 4 GPUs allocated per node

    @property
    def compute_seconds(self) -> float:
        return self.batch_per_gpu / self.images_per_second_per_gpu

    def allreduce_seconds(self, num_gpus: int) -> float:
        """Ring allreduce of the gradients across nodes."""
        num_nodes = max(1, math.ceil(num_gpus / self.gpus_per_node))
        if num_nodes == 1:
            return 5e-3  # NVLink-ish intra-node reduction
        factor = 2 * (num_nodes - 1) / num_nodes
        return factor * self.gradient_bytes / self.node_bandwidth


def _images_per_second(model: SGDWorkloadModel, num_gpus: int, iteration: float) -> float:
    return num_gpus * model.batch_per_gpu / iteration


def horovod_images_per_second(
    num_gpus: int, model: SGDWorkloadModel = SGDWorkloadModel()
) -> float:
    """Horovod: allreduce overlapped with backprop; small sync residue."""
    overlap_residue = 0.35 * model.allreduce_seconds(num_gpus)
    sync = 4e-3 * math.log2(max(2, num_gpus))
    iteration = model.compute_seconds + overlap_residue + sync
    return _images_per_second(model, num_gpus, iteration)


def distributed_tf_images_per_second(
    num_gpus: int, model: SGDWorkloadModel = SGDWorkloadModel()
) -> float:
    """Distributed TF (distributed_replicated): the best-tuned baseline."""
    overlap_residue = 0.25 * model.allreduce_seconds(num_gpus)
    sync = 3e-3 * math.log2(max(2, num_gpus))
    iteration = model.compute_seconds + overlap_residue + sync
    return _images_per_second(model, num_gpus, iteration)


def ray_sgd_images_per_second(
    num_gpus: int,
    model: SGDWorkloadModel = SGDWorkloadModel(),
    pipelined: bool = True,
) -> float:
    """Ray's sharded-parameter-server SGD.

    With ``pipelined=True`` (the paper's implementation: gradients written
    straight into the object store, transfer overlapped with compute) Ray
    matches Horovod.  ``pipelined=False`` is the ablation: a naive
    implementation that serializes compute and synchronization.
    """
    allreduce = model.allreduce_seconds(num_gpus)
    if pipelined:
        overlap_residue = 0.35 * allreduce
        sync = 4.5e-3 * math.log2(max(2, num_gpus))
        iteration = model.compute_seconds + overlap_residue + sync
    else:
        iteration = model.compute_seconds + allreduce + 8e-3
    return _images_per_second(model, num_gpus, iteration)
