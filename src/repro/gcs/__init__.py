"""Global Control Store (GCS).

The GCS is the unique feature of Ray's design (paper Section 4.2.1): a
sharded key-value store with pub-sub functionality that holds *all* control
state — the object table, task table, function table, and event log — so
that every other component (schedulers, object stores, workers) is
stateless and can be restarted at will.

* :mod:`repro.gcs.kv` — the single-shard KV store with pub-sub.
* :mod:`repro.gcs.chain` — chain replication of a shard for fault
  tolerance, with reconfiguration (member kill, join, state transfer).
* :mod:`repro.gcs.shard` — sharding by entity ID across chains.
* :mod:`repro.gcs.tables` — the typed tables layered on the KV store.
* :mod:`repro.gcs.flush` — periodic flushing of cold entries to disk so
  the in-memory footprint stays bounded.
* :mod:`repro.gcs.client` — the facade the rest of the system talks to.
"""

from repro.gcs.kv import KVStore
from repro.gcs.chain import ChainReplica, ReplicatedChain
from repro.gcs.shard import ShardedKV
from repro.gcs.tables import (
    ActorTableEntry,
    EventLog,
    ObjectTableEntry,
    TaskTableEntry,
    TaskStatus,
)
from repro.gcs.client import GlobalControlStore

__all__ = [
    "KVStore",
    "ChainReplica",
    "ReplicatedChain",
    "ShardedKV",
    "ObjectTableEntry",
    "TaskTableEntry",
    "TaskStatus",
    "ActorTableEntry",
    "EventLog",
    "GlobalControlStore",
]
