"""The Global Control Store facade.

Every stateless component (local schedulers, global schedulers, object
stores, workers) shares system state exclusively through this interface:
object locations, task lineage, function definitions, actor liveness, and
the event log.  All operations are single-key against the sharded,
chain-replicated KV store, mirroring the paper's Redis usage.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.lockwatch import make_rlock
from repro.common.ids import ActorID, FunctionID, NodeID, ObjectID, TaskID
from repro.gcs.shard import ShardedKV
from repro.gcs.tables import (
    ActorTableEntry,
    EventRecord,
    ObjectTableEntry,
    TaskStatus,
    TaskTableEntry,
)

_OBJ = "object"  # object metadata (size, producing task)
_OBJ_LOC = "object_loc"  # per-object location log
_TASK = "task"  # task table (lineage)
_FUNC = "function"  # function table
_ACTOR = "actor"  # actor table
_ACTOR_NAME = "actor_name"  # user-visible name -> actor id
_EVENT = "event"  # event log
_NODE_REPORT = "node_report"  # per-node reporter snapshot rows
_DEPLOYMENT = "deployment"  # serve: current row per deployment name
_DEPLOYMENT_LOG = "deployment_log"  # serve: append-only version history
_SERVE_REPORT = "serve_report"  # serve: per-deployment router metrics row


class GlobalControlStore:
    """Typed tables over :class:`ShardedKV` (the system's only state)."""

    def __init__(
        self,
        num_shards: int = 1,
        num_replicas: int = 2,
        hop_delay: float = 0.0,
        metrics: Any = None,
        faults: Any = None,
        client_cache: bool = True,
    ):
        self.kv = ShardedKV(
            num_shards=num_shards,
            num_replicas=num_replicas,
            hop_delay=hop_delay,
            metrics=metrics,
            faults=faults,
        )
        self._lock = make_rlock("GlobalControlStore._lock")
        # Cluster-wide event sequence: itertools.count() is C-implemented,
        # so next() is atomic — every recorded event gets a unique,
        # monotonically increasing timeline position without a lock.
        self._event_seq = itertools.count(1)
        # Write-through function cache: registration flows through this
        # client, and function rows are immutable for a given FunctionID,
        # so workers can skip the remote read that would otherwise tax
        # every single task execution with a chain hop.  ``client_cache``
        # False turns lookups back into remote reads (the pre-cache
        # control plane, kept measurable for benchmarks).
        self._client_cache = client_cache
        self._function_cache: Dict[FunctionID, Any] = {}
        # Location-publication hint: every location append flows through
        # this client, so an ID absent from this set has never had a copy
        # anywhere.  Fetchers that also hold the object's lineage locally
        # use this to skip the authoritative (remote) location read and
        # wait on the pub-sub subscription alone.  Never cleared — a
        # retracted location keeps its hint, which only forces the full
        # (checked) path.  GIL-atomic set add/lookup; no lock needed.
        self._published_locations: Set[ObjectID] = set()

    # ------------------------------------------------------------------
    # Function table
    # ------------------------------------------------------------------

    def register_function(self, function_id: FunctionID, function: Any) -> None:
        """Publish a remote function to all workers.

        In the paper the pickled function is broadcast to every node; in our
        single-process cluster the function table *is* the distribution
        mechanism — workers look functions up here by ID.
        """
        self.kv.put((_FUNC, function_id), function)
        self._function_cache[function_id] = function

    def get_function(self, function_id: FunctionID) -> Any:
        fn = self._function_cache.get(function_id) if self._client_cache else None
        if fn is None:
            fn = self.kv.get((_FUNC, function_id))
            if fn is None:
                raise KeyError(f"function {function_id!r} not registered")
            self._function_cache[function_id] = fn
        return fn

    # ------------------------------------------------------------------
    # Object table
    # ------------------------------------------------------------------

    def add_object(
        self, object_id: ObjectID, size: int, task_id: Optional[TaskID]
    ) -> None:
        """Record object metadata (idempotent across reconstruction)."""
        self.kv.put((_OBJ, object_id), (size, task_id))

    def add_object_location(self, object_id: ObjectID, node_id: NodeID) -> None:
        # Hint before write: a reader that subscribes and *then* misses
        # the hint is guaranteed the publication has not happened yet.
        self._published_locations.add(object_id)
        self.kv.append((_OBJ_LOC, object_id), ("add", node_id))

    def remove_object_location(self, object_id: ObjectID, node_id: NodeID) -> None:
        self.kv.append((_OBJ_LOC, object_id), ("remove", node_id))

    def add_task_outputs(
        self,
        entries: List[Tuple[ObjectID, int, Optional[TaskID], Optional[NodeID]]],
        batched: bool = True,
    ) -> None:
        """Publish all outputs of one task finish in coalesced shard writes.

        Each entry is ``(object_id, size, task_id, node_id_or_None)``; a
        ``None`` node means the store put failed and no location is
        published.  Per object the location append precedes the metadata
        put (a reader that sees metadata with no locations may legitimately
        trigger reconstruction), and both keys of one object shard
        together, so the batch is one chain round-trip per shard instead
        of two per output.  ``batched=False`` falls back to per-op writes
        (the pre-batching path, kept for benchmarks/ablation).
        """
        if not batched:
            for object_id, size, task_id, node_id in entries:
                if node_id is not None:
                    self.add_object_location(object_id, node_id)
                self.add_object(object_id, size, task_id)
            return
        ops: List[tuple] = []
        for object_id, size, task_id, node_id in entries:
            if node_id is not None:
                self._published_locations.add(object_id)
                ops.append((
                    "append", (_OBJ_LOC, object_id), ("add", node_id)
                ))
            ops.append(("put", (_OBJ, object_id), (size, task_id)))
        if ops:
            self.kv.batch(ops)

    def finish_task(
        self,
        task_id: TaskID,
        status: TaskStatus,
        node_id: Optional[NodeID],
        entries: List[Tuple[ObjectID, int, Optional[TaskID], Optional[NodeID]]],
        event: Optional[Tuple[str, Dict[str, Any]]] = None,
        batched: bool = True,
        spec: Any = None,
    ) -> None:
        """Coalesce *every* GCS write of one task finish into batched shard
        writes: the per-output rows (as in :meth:`add_task_outputs`), the
        task-table status update, and the ``task_finished`` event append.
        Output rows precede the status put, so a reader that observes
        ``FINISHED`` can already see the outputs' metadata.  ``batched=False``
        issues the same writes per-op (the pre-batching path).

        When the caller passes the task's ``spec`` (workers hold it — they
        just executed it), the task row is rebuilt in place and the finish
        costs zero reads; without it the row is read back first."""
        if not batched:
            self.add_task_outputs(entries, batched=False)
            self.update_task_status(task_id, status, node_id=node_id)
            if event is not None:
                self.record_event(event[0], **event[1])
            return
        if spec is None or node_id is None:
            task_entry = self.kv.get((_TASK, task_id))
            if task_entry is None:
                raise KeyError(f"task {task_id!r} not in task table")
            spec = task_entry.spec
            if node_id is None:
                node_id = task_entry.node_id
        ops: List[tuple] = []
        for object_id, size, producer, node in entries:
            if node is not None:
                self._published_locations.add(object_id)
                ops.append(("append", (_OBJ_LOC, object_id), ("add", node)))
            ops.append(("put", (_OBJ, object_id), (size, producer)))
        ops.append((
            "put",
            (_TASK, task_id),
            TaskTableEntry(
                task_id=task_id,
                spec=spec,
                status=status,
                node_id=node_id,
            ),
        ))
        if event is not None:
            ops.append((
                "append",
                (_EVENT, event[0]),
                self._stamped_event(event[0], event[1]),
            ))
        self.kv.batch(ops)

    def has_location_hint(self, object_id: ObjectID) -> bool:
        """Has any location for ``object_id`` ever been published through
        this client?  ``False`` means no copy has ever existed (the object
        may still be in production) — an in-process invariant, because all
        location appends flow through this client.  A cheap local
        pre-check only: when ``True``, callers still need the
        authoritative :meth:`get_object_locations` read."""
        return object_id in self._published_locations

    def get_object_locations(self, object_id: ObjectID) -> Set[NodeID]:
        locations: Set[NodeID] = set()
        for op, node_id in self.kv.log((_OBJ_LOC, object_id)):
            if op == "add":
                locations.add(node_id)
            else:
                locations.discard(node_id)
        return locations

    def get_object_entry(self, object_id: ObjectID) -> Optional[ObjectTableEntry]:
        meta = self.kv.get((_OBJ, object_id))
        if meta is None:
            return None
        size, task_id = meta
        return ObjectTableEntry(
            object_id=object_id,
            size=size,
            task_id=task_id,
            locations=frozenset(self.get_object_locations(object_id)),
        )

    def subscribe_object_locations(
        self, object_id: ObjectID, callback: Callable[[str, NodeID], None]
    ) -> Callable[[], None]:
        """Fire ``callback(op, node_id)`` whenever a location is added or
        removed — the Figure 7b step-2 registration."""

        def on_publish(_key: Any, entry: Any) -> None:
            op, node_id = entry
            callback(op, node_id)

        return self.kv.subscribe((_OBJ_LOC, object_id), on_publish)

    def creating_task(self, object_id: ObjectID) -> Optional[TaskID]:
        """Lineage lookup: which task produces this object?"""
        meta = self.kv.get((_OBJ, object_id))
        return None if meta is None else meta[1]

    # ------------------------------------------------------------------
    # Task table (durable lineage)
    # ------------------------------------------------------------------

    def add_task(self, task_id: TaskID, spec: Any, check_existing: bool = True) -> None:
        """Record a task row.  ``check_existing=False`` skips the replay
        read — only valid for *first* submissions (a fresh deterministic
        task ID that cannot already be in the table); replayed parents must
        keep the check so lineage stays stable (exactly-once bookkeeping)."""
        if check_existing:
            existing = self.kv.get((_TASK, task_id))
            if existing is not None:
                # Replay of an already-recorded task: keep the original spec
                # so lineage stays stable.
                return
        self.kv.put(
            (_TASK, task_id),
            TaskTableEntry(task_id=task_id, spec=spec, status=TaskStatus.PENDING),
        )

    def add_tasks(
        self,
        specs: List[Any],
        events: Optional[List[Tuple[str, Dict[str, Any]]]] = None,
        batched: bool = True,
    ) -> None:
        """Record many first-submission task rows (plus their
        ``task_submitted`` trace events) in coalesced shard writes.

        The submit-side mirror of :meth:`finish_task`: one
        :meth:`ShardedKV.batch` call groups every row into one chain write
        per shard instead of one round-trip per task, and the submit events
        ride in the same batch.  Events are seq-stamped here in submission
        order, so the cluster timeline ordering invariant holds exactly as
        it does for per-op writes.  All specs must be first submissions
        (see :meth:`add_task`); ``batched=False`` issues the same writes
        per-op (the pre-batching path, kept for benchmarks/ablation).
        """
        if not batched:
            for spec in specs:
                self.add_task(spec.task_id, spec, check_existing=False)
            for category, payload in events or ():
                self.record_event(category, **payload)
            return
        ops: List[tuple] = []
        for spec in specs:
            ops.append((
                "put",
                (_TASK, spec.task_id),
                TaskTableEntry(
                    task_id=spec.task_id, spec=spec, status=TaskStatus.PENDING
                ),
            ))
        for category, payload in events or ():
            ops.append((
                "append",
                (_EVENT, category),
                self._stamped_event(category, payload),
            ))
        if ops:
            self.kv.batch(ops)

    def set_task_states(
        self,
        updates: List[Tuple[Any, TaskStatus, Optional[NodeID]]],
        events: Optional[List[Tuple[str, Dict[str, Any]]]] = None,
        batched: bool = True,
    ) -> None:
        """Write task rows for ``[(spec, status, node_id), ...]`` plus trace
        events in one coalesced shard write.

        The scheduler-side mirror of :meth:`finish_task`: a local scheduler
        moving a batch of queued tasks to SCHEDULED/RUNNING already holds
        their specs, so the rows are rebuilt directly — no per-row
        read-modify-write round-trip — and every row plus the batch's
        ``task_scheduled``/``task_inputs_ready`` events collapse into one
        chain write per shard.  Only valid for tasks whose status the
        caller currently owns (placed/queued on its node); events are
        seq-stamped in list order so timeline ordering holds.
        ``batched=False`` issues the same writes per-op.
        """
        if not batched:
            for spec, status, node_id in updates:
                self.kv.put(
                    (_TASK, spec.task_id),
                    TaskTableEntry(
                        task_id=spec.task_id,
                        spec=spec,
                        status=status,
                        node_id=node_id,
                    ),
                )
            for category, payload in events or ():
                self.record_event(category, **payload)
            return
        ops: List[tuple] = []
        for spec, status, node_id in updates:
            ops.append((
                "put",
                (_TASK, spec.task_id),
                TaskTableEntry(
                    task_id=spec.task_id,
                    spec=spec,
                    status=status,
                    node_id=node_id,
                ),
            ))
        for category, payload in events or ():
            ops.append((
                "append",
                (_EVENT, category),
                self._stamped_event(category, payload),
            ))
        if ops:
            self.kv.batch(ops)

    def update_task_status(
        self,
        task_id: TaskID,
        status: TaskStatus,
        node_id: Optional[NodeID] = None,
    ) -> None:
        entry = self.kv.get((_TASK, task_id))
        if entry is None:
            raise KeyError(f"task {task_id!r} not in task table")
        self.kv.put(
            (_TASK, task_id),
            TaskTableEntry(
                task_id=task_id,
                spec=entry.spec,
                status=status,
                node_id=node_id if node_id is not None else entry.node_id,
            ),
        )

    def get_task(self, task_id: TaskID) -> Optional[TaskTableEntry]:
        return self.kv.get((_TASK, task_id))

    def num_tasks(self) -> int:
        return sum(
            1 for key in self.kv.keys() if isinstance(key, tuple) and key[0] == _TASK
        )

    # ------------------------------------------------------------------
    # Actor table
    # ------------------------------------------------------------------

    def register_actor(
        self, actor_id: ActorID, class_name: str, node_id: Optional[NodeID]
    ) -> None:
        self.kv.put(
            (_ACTOR, actor_id),
            ActorTableEntry(actor_id=actor_id, class_name=class_name, node_id=node_id),
        )

    def update_actor(self, actor_id: ActorID, **changes: Any) -> ActorTableEntry:
        entry = self.kv.get((_ACTOR, actor_id))
        if entry is None:
            raise KeyError(f"actor {actor_id!r} not registered")
        updated = ActorTableEntry(
            actor_id=entry.actor_id,
            class_name=entry.class_name,
            node_id=changes.get("node_id", entry.node_id),
            alive=changes.get("alive", entry.alive),
            methods_executed=changes.get("methods_executed", entry.methods_executed),
            checkpoint_index=changes.get("checkpoint_index", entry.checkpoint_index),
        )
        self.kv.put((_ACTOR, actor_id), updated)
        return updated

    def get_actor(self, actor_id: ActorID) -> Optional[ActorTableEntry]:
        return self.kv.get((_ACTOR, actor_id))

    # ------------------------------------------------------------------
    # Actor names (the ``.options(name=...)`` / ``get_actor`` registry)
    # ------------------------------------------------------------------

    def register_actor_name(self, name: str, actor_id: ActorID) -> None:
        """Claim ``name`` for ``actor_id``; duplicate names are rejected.

        Check-then-put under the client lock: all name claims in this
        process serialize here, so two concurrent registrations of the
        same name cannot both win.  (Baselined RT-BLOCKING-UNDER-LOCK:
        the lock exists to make these two RPCs atomic.)
        """
        with self._lock:
            existing = self.kv.get((_ACTOR_NAME, name))
            if existing is not None:
                raise ValueError(f"actor name {name!r} is already taken")
            self.kv.put((_ACTOR_NAME, name), actor_id)

    def lookup_actor_name(self, name: str) -> Optional[ActorID]:
        return self.kv.get((_ACTOR_NAME, name))

    def release_actor_name(self, name: str, actor_id: Optional[ActorID] = None) -> None:
        """Free ``name`` (idempotent).  With ``actor_id`` given, only the
        current owner's registration is released.  (Baselined
        RT-BLOCKING-UNDER-LOCK: get+delete must be atomic against
        concurrent claims.)"""
        with self._lock:
            if actor_id is not None:
                owner = self.kv.get((_ACTOR_NAME, name))
                if owner is not None and owner != actor_id:
                    return
            self.kv.delete((_ACTOR_NAME, name))

    # ------------------------------------------------------------------
    # Event log
    # ------------------------------------------------------------------

    def _stamped_event(self, category: str, payload: Dict[str, Any]) -> EventRecord:
        return EventRecord.make(category, **payload).stamp(
            next(self._event_seq), time.time()
        )

    def record_event(self, category: str, **payload: Any) -> None:
        self.kv.append((_EVENT, category), self._stamped_event(category, payload))

    def events(self, category: str) -> List[EventRecord]:
        return self.kv.log((_EVENT, category))

    def event_categories(self) -> List[str]:
        """All event categories with at least one recorded entry."""
        return sorted(
            key[1]
            for key in self.kv.keys()
            if isinstance(key, tuple) and key[0] == _EVENT
        )

    def events_since(
        self,
        cursor: int = 0,
        categories: Optional[List[str]] = None,
        limit: Optional[int] = None,
    ) -> Tuple[List[EventRecord], int]:
        """The merged cluster event timeline: every event with
        ``seq > cursor``, across all (or the given) categories, in global
        sequence order.

        Returns ``(events, next_cursor)``; passing ``next_cursor`` back
        yields only events recorded after this call — the dashboard's
        since-cursor pagination.  ``limit`` caps the page size (the
        remainder is picked up by the next page; ``next_cursor`` is the
        last *returned* seq so nothing is skipped).  Unstamped legacy rows
        (``seq == 0``) are only visible on a full read (``cursor=0``).
        """
        merged: List[EventRecord] = []
        for category in categories or self.event_categories():
            for record in self.kv.log((_EVENT, category)):
                if record.seq > cursor or (cursor == 0 and record.seq == 0):
                    merged.append(record)
        merged.sort(key=lambda r: r.seq)
        if limit is not None:
            merged = merged[:limit]
        next_cursor = merged[-1].seq if merged else cursor
        return merged, next_cursor

    # ------------------------------------------------------------------
    # Node reporter table (the ops plane's per-node snapshot rows)
    # ------------------------------------------------------------------

    def publish_node_report(self, node_hex: str, row: Dict[str, Any]) -> None:
        """Store the latest reporter snapshot for one node.

        One row per node (put, not append): the row itself carries its
        version (``seq``) and sample time (``ts``), so the head can detect
        staleness without the GCS growing per sample.  Rows survive node
        death as tombstones — ``tombstone_node_report`` rewrites the
        last-seen row rather than deleting it.
        """
        self.kv.put((_NODE_REPORT, node_hex), dict(row))

    def get_node_report(self, node_hex: str) -> Optional[Dict[str, Any]]:
        return self.kv.get((_NODE_REPORT, node_hex))

    def node_reports(self) -> Dict[str, Dict[str, Any]]:
        """All reporter rows, keyed by node hex id (tombstones included)."""
        out: Dict[str, Dict[str, Any]] = {}
        for key in self.kv.keys():
            if isinstance(key, tuple) and key[0] == _NODE_REPORT:
                row = self.kv.get(key)
                if row is not None:
                    out[key[1]] = row
        return out

    def tombstone_node_report(self, node_hex: str) -> None:
        """Mark a node's last-seen row dead, preserving its final sample."""
        row = dict(self.kv.get((_NODE_REPORT, node_hex)) or {"node_id": node_hex})
        row["alive"] = False
        row["tombstone"] = True
        row["tombstoned_at"] = time.time()
        self.kv.put((_NODE_REPORT, node_hex), row)

    # ------------------------------------------------------------------
    # Serve tables: versioned deployments + router metrics rows
    # ------------------------------------------------------------------

    def put_deployment(self, name: str, row: Dict[str, Any]) -> None:
        """Store the current row for one deployment and append it to the
        deployment's version history log.

        The row is expected to carry ``version`` plus replica membership
        (``replicas``: list of actor hex ids); the current-row key is
        always the latest version, while the append-only log preserves
        every deploy for the dashboard timeline and debugging.
        """
        row = dict(row)
        row["updated_at"] = time.time()
        self.kv.put((_DEPLOYMENT, name), row)
        self.kv.append((_DEPLOYMENT_LOG, name), dict(row))

    def get_deployment(self, name: str) -> Optional[Dict[str, Any]]:
        return self.kv.get((_DEPLOYMENT, name))

    def deployments(self) -> Dict[str, Dict[str, Any]]:
        """All current deployment rows, keyed by deployment name."""
        out: Dict[str, Dict[str, Any]] = {}
        for key in self.kv.keys():
            if isinstance(key, tuple) and key[0] == _DEPLOYMENT:
                row = self.kv.get(key)
                if row is not None:
                    out[key[1]] = row
        return out

    def deployment_history(self, name: str) -> List[Dict[str, Any]]:
        """Every version row ever written for ``name``, in deploy order."""
        return list(self.kv.log((_DEPLOYMENT_LOG, name)))

    def delete_deployment(self, name: str) -> None:
        """Tombstone a deployment (history survives for the timeline)."""
        row = dict(self.kv.get((_DEPLOYMENT, name)) or {"name": name})
        row["deleted"] = True
        row["deleted_at"] = time.time()
        self.kv.put((_DEPLOYMENT, name), row)

    def publish_serve_report(self, name: str, row: Dict[str, Any]) -> None:
        """Store the latest router metrics snapshot for one deployment.

        Mirrors ``publish_node_report``: one row per deployment (put, not
        append), versioned by the ``seq``/``ts`` the router stamps into
        it, carrying per-replica queue depth, in-flight count, and p50/p99
        latency — the signal the replica autoscaler scales from.
        """
        self.kv.put((_SERVE_REPORT, name), dict(row))

    def get_serve_report(self, name: str) -> Optional[Dict[str, Any]]:
        return self.kv.get((_SERVE_REPORT, name))

    def serve_reports(self) -> Dict[str, Dict[str, Any]]:
        """All router metrics rows, keyed by deployment name."""
        out: Dict[str, Dict[str, Any]] = {}
        for key in self.kv.keys():
            if isinstance(key, tuple) and key[0] == _SERVE_REPORT:
                row = self.kv.get(key)
                if row is not None:
                    out[key[1]] = row
        return out

    def tombstone_serve_report(self, name: str) -> None:
        """Mark a deployment's metrics row dead (deployment torn down)."""
        row = dict(self.kv.get((_SERVE_REPORT, name)) or {"deployment": name})
        row["tombstone"] = True
        row["tombstoned_at"] = time.time()
        self.kv.put((_SERVE_REPORT, name), row)

    # ------------------------------------------------------------------
    # Introspection (debugging tools ride on the GCS — paper Section 7)
    # ------------------------------------------------------------------

    def num_entries(self) -> int:
        return self.kv.num_entries()

    def num_subscriptions(self) -> int:
        """Active pub-sub registrations across all shards — each one is a
        blocked ``get``/``wait``/fetch watching for a notification."""
        return self.kv.num_subscriptions()

    def approx_bytes(self) -> int:
        return self.kv.approx_bytes()

    def tasks_with_status(self, status: TaskStatus) -> List[TaskTableEntry]:
        out = []
        for key in self.kv.keys():
            if isinstance(key, tuple) and key[0] == _TASK:
                entry = self.kv.get(key)
                if entry is not None and entry.status == status:
                    out.append(entry)
        return out
