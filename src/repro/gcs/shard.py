"""Sharding of the GCS key space across replication chains.

GCS tables are sharded by object and task IDs to scale (paper Section
4.2.4).  Keys are ``(table_name, entity_id)`` tuples; the shard is chosen
from the entity ID when it is a :class:`~repro.common.ids.BaseID`, and from
a stable hash otherwise, so all rows of all tables for one entity land on
one shard.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional

from repro.common.ids import BaseID, shard_index
from repro.common.metrics import MetricsRegistry, NULL_REGISTRY
from repro.gcs.chain import ReplicatedChain


def _shard_of(key: Any, num_shards: int) -> int:
    entity = key[1] if isinstance(key, tuple) and len(key) == 2 else key
    if isinstance(entity, BaseID):
        return shard_index(entity, num_shards)
    digest = hashlib.sha1(repr(entity).encode("utf-8")).digest()
    return int.from_bytes(digest[-4:], "little") % num_shards


class ShardedKV:
    """A KV store sharded across ``num_shards`` replication chains."""

    def __init__(
        self,
        num_shards: int = 1,
        num_replicas: int = 2,
        hop_delay: float = 0.0,
        transfer_delay_per_entry: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        faults: Any = None,
    ):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.shards: List[ReplicatedChain] = [
            ReplicatedChain(
                num_replicas=num_replicas,
                hop_delay=hop_delay,
                transfer_delay_per_entry=transfer_delay_per_entry,
                faults=faults,
                shard_index=index,
            )
            for index in range(num_shards)
        ]
        metrics = metrics or NULL_REGISTRY
        # Pre-built per-shard counter rows: the hot path does one dict
        # lookup + one locked increment per operation.
        self._op_counters = [
            {
                op: metrics.counter(
                    "gcs_ops_total",
                    "GCS single-key operations per shard",
                    shard=str(index),
                    op=op,
                )
                for op in ("get", "put", "append", "log")
            }
            for index in range(num_shards)
        ]
        self._publish_counters = [
            metrics.counter(
                "gcs_publishes_total",
                "Pub-sub publications (one per successful write)",
                shard=str(index),
            )
            for index in range(num_shards)
        ]
        self._batch_counters = [
            metrics.counter(
                "gcs_batch_writes_total",
                "Coalesced multi-op shard writes",
                shard=str(index),
            )
            for index in range(num_shards)
        ]
        self._m_batch_size = metrics.histogram(
            "gcs_batch_size",
            "Operations coalesced into one shard write",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        # Flushes one batch's per-shard groups concurrently when chain
        # hops cost real time (threads are spawned lazily on first use and
        # reused, so batches in the free-hop regime never pay for them).
        # Sized for concurrent *issuers* (many workers finish tasks at
        # once), not for shard count — an undersized pool makes callers
        # queue behind each other's round-trips.
        self._flush_pool = ThreadPoolExecutor(
            max_workers=max(16, 2 * num_shards),
            thread_name_prefix="gcs-batch-flush",
        )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_for(self, key: Any) -> ReplicatedChain:
        return self.shards[_shard_of(key, len(self.shards))]

    # -- delegated single-key surface ---------------------------------------

    def put(self, key: Any, value: Any) -> None:
        index = _shard_of(key, len(self.shards))
        self.shards[index].put(key, value)
        self._op_counters[index]["put"].inc()
        self._publish_counters[index].inc()

    def get(self, key: Any, default: Any = None) -> Any:
        index = _shard_of(key, len(self.shards))
        self._op_counters[index]["get"].inc()
        return self.shards[index].get(key, default)

    def append(self, key: Any, entry: Any) -> None:
        index = _shard_of(key, len(self.shards))
        self.shards[index].append(key, entry)
        self._op_counters[index]["append"].inc()
        self._publish_counters[index].inc()

    def batch(self, ops: List[tuple]) -> None:
        """Apply ``[(op, key, value), ...]`` grouped into one write per
        shard.  Keys of one entity (e.g. an object's location log and
        metadata row) shard together, so a task's per-output writes
        coalesce instead of paying one chain round-trip each.  Relative
        order is preserved within each shard group.

        Shards are independent servers, so when chain hops cost real time
        (``hop_delay`` models the remote round-trip) the per-shard flushes
        are issued concurrently — one batch spanning N shards pays one
        round-trip, not N back to back.  With free hops the serial loop is
        cheaper than spawning threads.
        """
        groups: Dict[int, List[tuple]] = {}
        for entry in ops:
            groups.setdefault(_shard_of(entry[1], len(self.shards)), []).append(
                entry
            )
        items = list(groups.items())
        if len(items) > 1 and any(
            self.shards[index].hop_delay for index, _ in items
        ):
            futures = [
                self._flush_pool.submit(
                    self.shards[index].write_batch, group
                )
                for index, group in items[1:]
            ]
            self.shards[items[0][0]].write_batch(items[0][1])
            for future in futures:
                future.result()
        else:
            for index, group in items:
                self.shards[index].write_batch(group)
        for index, group in items:
            counters = self._op_counters[index]
            for op, _key, _value in group:
                counters[op].inc()
            self._publish_counters[index].inc(len(group))
            self._batch_counters[index].inc()
            self._m_batch_size.observe(len(group))

    def log(self, key: Any) -> List[Any]:
        index = _shard_of(key, len(self.shards))
        self._op_counters[index]["log"].inc()
        return self.shards[index].log(key)

    def contains(self, key: Any) -> bool:
        return self.shard_for(key).contains(key)

    def delete(self, key: Any) -> None:
        self.shard_for(key).delete(key)

    def subscribe(
        self, key: Any, callback: Callable[[Any, Any], None]
    ) -> Callable[[], None]:
        return self.shard_for(key).subscribe(key, callback)

    def close(self) -> None:
        """Release the batch-flush worker threads (idempotent)."""
        self._flush_pool.shutdown(wait=False)

    # -- aggregate stats -----------------------------------------------------

    def num_entries(self) -> int:
        return sum(shard.num_entries() for shard in self.shards)

    def num_subscriptions(self) -> int:
        return sum(shard.num_subscriptions() for shard in self.shards)

    def approx_bytes(self) -> int:
        return sum(shard.approx_bytes() for shard in self.shards)

    def keys(self) -> List[Any]:
        out: List[Any] = []
        for shard in self.shards:
            out.extend(shard.keys())
        return out
