"""A single-shard key-value store with pub-sub.

The paper uses one Redis instance per GCS shard with *entirely single-key
operations*.  This class reproduces that surface: get/put/delete on single
keys, append to per-key logs, and channel subscriptions that fire a
callback on every publish to a key.

The store is thread-safe; callbacks run on the publishing thread (as with
Redis pub-sub, subscribers must be quick and must not block).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple
from repro.common.lockwatch import make_rlock

Callback = Callable[[Any, Any], None]


class KVStore:
    """Thread-safe in-memory KV store with per-key append logs and pub-sub."""

    def __init__(self):
        self._lock = make_rlock("KVStore._lock")
        self._data: Dict[Any, Any] = {}
        self._logs: Dict[Any, List[Any]] = {}
        self._subscribers: Dict[Any, List[Callback]] = {}
        self._put_count = 0

    # -- single-key operations -------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._put_count += 1
            callbacks = list(self._subscribers.get(key, ()))
        for cb in callbacks:
            cb(key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            return self._data.get(key, default)

    def contains(self, key: Any) -> bool:
        with self._lock:
            return key in self._data or key in self._logs

    def delete(self, key: Any) -> bool:
        with self._lock:
            had = key in self._data
            self._data.pop(key, None)
            self._logs.pop(key, None)
            return had

    def append(self, key: Any, entry: Any) -> None:
        """Append ``entry`` to the log at ``key`` and publish it."""
        with self._lock:
            self._logs.setdefault(key, []).append(entry)
            self._put_count += 1
            callbacks = list(self._subscribers.get(key, ()))
        for cb in callbacks:
            cb(key, entry)

    def log(self, key: Any) -> List[Any]:
        with self._lock:
            return list(self._logs.get(key, ()))

    # -- pub-sub -----------------------------------------------------------

    def subscribe(self, key: Any, callback: Callback) -> Callable[[], None]:
        """Invoke ``callback(key, value)`` on every put/append to ``key``.

        Returns an unsubscribe function.
        """
        with self._lock:
            self._subscribers.setdefault(key, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._subscribers.get(key)
                if handlers and callback in handlers:
                    handlers.remove(callback)
                    if not handlers:
                        del self._subscribers[key]

        return unsubscribe

    def num_subscriptions(self) -> int:
        """Active pub-sub registrations on this store."""
        with self._lock:
            return sum(len(handlers) for handlers in self._subscribers.values())

    # -- bulk access (state transfer, flushing, debugging) ----------------

    def snapshot(self) -> Tuple[Dict[Any, Any], Dict[Any, List[Any]]]:
        """A consistent copy of all state, for chain state transfer."""
        with self._lock:
            return dict(self._data), {k: list(v) for k, v in self._logs.items()}

    def load_snapshot(
        self, data: Dict[Any, Any], logs: Dict[Any, List[Any]]
    ) -> None:
        with self._lock:
            self._data = dict(data)
            self._logs = {k: list(v) for k, v in logs.items()}

    def keys(self) -> List[Any]:
        with self._lock:
            return list(self._data.keys()) + [
                k for k in self._logs if k not in self._data
            ]

    def num_entries(self) -> int:
        with self._lock:
            return len(self._data) + sum(len(v) for v in self._logs.values())

    @property
    def put_count(self) -> int:
        with self._lock:
            return self._put_count

    def approx_bytes(self) -> int:
        """Rough in-memory footprint (for the Fig 10b flushing experiment)."""
        import sys

        with self._lock:
            total = 0
            for k, v in self._data.items():
                total += sys.getsizeof(k) + sys.getsizeof(v)
            for k, entries in self._logs.items():
                total += sys.getsizeof(k)
                total += sum(sys.getsizeof(e) for e in entries)
            return total
