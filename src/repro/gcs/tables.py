"""Typed table entries stored in the GCS.

The GCS holds four tables (paper Figure 5): the **object table** (object →
locations, size, creating task), the **task table** (task spec and status —
the durable lineage), the **function table** (registered remote functions),
and the **event log** (profiling / debugging events).  This module defines
the row types; :mod:`repro.gcs.client` implements the operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Tuple

from repro.common.ids import ActorID, NodeID, ObjectID, TaskID


class TaskStatus(enum.Enum):
    """Lifecycle of a task as recorded in the task table."""

    PENDING = "pending"  # submitted, waiting for scheduling or inputs
    SCHEDULED = "scheduled"  # placed on a node
    RUNNING = "running"
    FINISHED = "finished"
    FAILED = "failed"  # application exception
    LOST = "lost"  # node died while running; eligible for replay
    CANCELLED = "cancelled"  # dequeued or cooperatively stopped via cancel()


@dataclass(frozen=True)
class ObjectTableEntry:
    """Metadata for one immutable object.

    ``locations`` is the set of nodes currently holding a copy; it is
    derived by folding the per-object location log (adds and removals),
    which keeps every GCS write a single-key operation.
    """

    object_id: ObjectID
    size: int
    task_id: Optional[TaskID]  # producing task (lineage pointer)
    locations: FrozenSet[NodeID] = frozenset()


@dataclass(frozen=True)
class TaskTableEntry:
    """A task's durable record: its spec (lineage) and current status."""

    task_id: TaskID
    spec: Any  # TaskSpec; kept opaque here to avoid a core<->gcs cycle
    status: TaskStatus
    node_id: Optional[NodeID] = None


@dataclass(frozen=True)
class ActorTableEntry:
    """An actor's durable record used for reconstruction.

    ``methods_executed`` counts method invocations applied to the current
    incarnation; together with ``checkpoint_index`` it determines how many
    methods must be replayed after a failure (paper Figure 11b).
    """

    actor_id: ActorID
    class_name: str
    node_id: Optional[NodeID]
    alive: bool = True
    methods_executed: int = 0
    checkpoint_index: int = 0


@dataclass(frozen=True)
class EventRecord:
    """One entry of the GCS event log.

    ``seq`` is a cluster-wide monotonically increasing sequence number
    stamped by the GCS client at record time; it gives the merged event
    *timeline* (dashboard ``/events``) a total order and a pagination
    cursor across categories.  ``ts`` is the wall-clock record time.
    Both default to zero so rows written by older code (or constructed
    directly in tests) remain valid.
    """

    category: str
    payload: Tuple[Tuple[str, Any], ...]
    seq: int = 0
    ts: float = 0.0

    @classmethod
    def make(cls, category: str, **payload: Any) -> "EventRecord":
        return cls(category=category, payload=tuple(sorted(payload.items())))

    def stamp(self, seq: int, ts: float) -> "EventRecord":
        """A copy of this record carrying a timeline sequence number."""
        return EventRecord(
            category=self.category, payload=self.payload, seq=seq, ts=ts
        )

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.payload)

    def as_timeline_dict(self) -> Dict[str, Any]:
        """Payload plus the timeline envelope (seq, ts, category)."""
        out: Dict[str, Any] = {"seq": self.seq, "ts": self.ts, "category": self.category}
        out.update(self.payload)
        return out


@dataclass
class EventLog:
    """In-memory view over event records (the GCS stores the raw log)."""

    records: list = field(default_factory=list)

    def add(self, record: EventRecord) -> None:
        self.records.append(record)

    def by_category(self, category: str) -> list:
        return [r for r in self.records if r.category == category]
