"""Chain replication for GCS shards.

Each GCS shard is replicated with chain replication (van Renesse &
Schneider, OSDI'04): writes enter at the *head*, propagate member by member
to the *tail*, and are acknowledged by the tail; reads are served by the
tail.  This gives linearizability with a single round of messages per
member.

Reconfiguration follows the paper's Figure 10a setup: failures are reported
to the chain *master* either by the client (explicit errors / timeouts
despite retries) or by any server in the chain; the master removes the dead
member, and a new member may join at the tail after a state transfer from
the current tail.

The implementation is a real protocol over in-process replicas.  Optional
``hop_delay`` / ``transfer_delay_per_entry`` knobs make latency effects
visible on a wall clock for the Fig 10a benchmark.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.common.lockwatch import make_rlock
from repro.common.errors import ChainUnavailableError
from repro.common.faults import NULL_FAULTS
from repro.gcs.kv import KVStore


class ReplicaDeadError(Exception):
    """An operation reached a replica that has failed."""

    def __init__(self, replica: "ChainReplica"):
        self.replica = replica
        super().__init__(f"replica {replica.replica_id} is dead")


class ChainReplica:
    """One member of a replication chain, wrapping a local KV store."""

    _next_id = 0

    def __init__(self):
        self.replica_id = ChainReplica._next_id
        ChainReplica._next_id += 1
        self.store = KVStore()
        self.alive = True

    def apply_put(self, key: Any, value: Any) -> None:
        if not self.alive:
            raise ReplicaDeadError(self)
        self.store.put(key, value)

    def apply_append(self, key: Any, entry: Any) -> None:
        if not self.alive:
            raise ReplicaDeadError(self)
        self.store.append(key, entry)

    def read(self, key: Any, default: Any = None) -> Any:
        if not self.alive:
            raise ReplicaDeadError(self)
        return self.store.get(key, default)

    def read_log(self, key: Any) -> List[Any]:
        if not self.alive:
            raise ReplicaDeadError(self)
        return self.store.log(key)

    def kill(self) -> None:
        self.alive = False


class ReplicatedChain:
    """A chain-replicated KV shard with master-driven reconfiguration.

    Exposes the same single-key surface as :class:`KVStore` (put / get /
    append / log / subscribe) plus membership operations used by the fault
    tolerance experiments.
    """

    def __init__(
        self,
        num_replicas: int = 2,
        hop_delay: float = 0.0,
        transfer_delay_per_entry: float = 0.0,
        failure_detection_delay: float = 0.0,
        faults: Any = None,
        shard_index: int = 0,
    ):
        if num_replicas < 1:
            raise ValueError("chain needs at least one replica")
        self._lock = make_rlock("ReplicatedChain._lock")
        self._members: List[ChainReplica] = [
            ChainReplica() for _ in range(num_replicas)
        ]
        self._subscribers: Dict[Any, List[Callable[[Any, Any], None]]] = {}
        self.hop_delay = hop_delay
        self.transfer_delay_per_entry = transfer_delay_per_entry
        self.failure_detection_delay = failure_detection_delay
        # Fault-injection hook (null-object when disabled): consulted at
        # write entry, so an injected member kill is discovered by the very
        # write that triggered it, exercising the Figure 10a reconfiguration.
        self.faults = faults if faults is not None else NULL_FAULTS
        self.shard_index = shard_index
        self.reconfigurations = 0
        self.failed_writes = 0

    # -- membership --------------------------------------------------------

    @property
    def members(self) -> List[ChainReplica]:
        with self._lock:
            return list(self._members)

    def chain_length(self) -> int:
        with self._lock:
            return len(self._members)

    def kill_member(self, index: int = 0) -> ChainReplica:
        """Kill the member at ``index`` (0 = head).  Does *not* reconfigure;
        the failure is discovered on the next operation, as in the paper."""
        with self._lock:
            replica = self._members[index]
        replica.kill()
        return replica

    def report_failure(self, replica: ChainReplica) -> None:
        """Master-side handling of a failure report: drop the dead member."""
        if self.failure_detection_delay:
            time.sleep(self.failure_detection_delay)
        with self._lock:
            if replica in self._members:
                self._members.remove(replica)
                self.reconfigurations += 1
            if not self._members:
                raise ChainUnavailableError("all chain members failed")

    def add_member(self) -> ChainReplica:
        """Join a fresh replica at the tail after state transfer."""
        new = ChainReplica()
        with self._lock:
            if self._members:
                data, logs = self._members[-1].store.snapshot()
                entries = len(data) + sum(len(v) for v in logs.values())
                if self.transfer_delay_per_entry:
                    # Baselined RT-BLOCKING-UNDER-LOCK: the modeled transfer
                    # time must elapse under _lock or writes accepted
                    # mid-transfer would desync the snapshot.
                    time.sleep(self.transfer_delay_per_entry * entries)
                new.store.load_snapshot(data, logs)
            self._members.append(new)
            self.reconfigurations += 1
        return new

    # -- operations ---------------------------------------------------------

    def put(self, key: Any, value: Any, max_retries: int = 8) -> None:
        self._write(key, value, op="put", max_retries=max_retries)

    def append(self, key: Any, entry: Any, max_retries: int = 8) -> None:
        self._write(key, entry, op="append", max_retries=max_retries)

    def write_batch(
        self, ops: List[tuple], max_retries: int = 8
    ) -> None:
        """Apply ``[(op, key, value), ...]`` (op = "put" | "append") in one
        pass down the chain: one hop per member for the whole batch instead
        of one hop per member per operation, then one publication per op.
        Retry semantics match ``_write`` (report the dead member, retry the
        whole batch against the reconfigured chain)."""
        if not ops:
            return
        if self.faults.enabled:
            self.faults.on_chain_write(self.shard_index, self)
        for _ in range(max_retries + 1):
            with self._lock:
                members = list(self._members)
            if not members:
                raise ChainUnavailableError("chain has no members")
            try:
                for replica in members:
                    if self.hop_delay:
                        time.sleep(self.hop_delay)
                    for op, key, value in ops:
                        if op == "put":
                            replica.apply_put(key, value)
                        else:
                            replica.apply_append(key, value)
            except ReplicaDeadError as exc:
                self.failed_writes += 1
                self.report_failure(exc.replica)
                continue
            for _op, key, value in ops:
                self._publish(key, value)
            return
        raise ChainUnavailableError("batched write failed after retries")

    def _write(self, key: Any, value: Any, op: str, max_retries: int) -> None:
        if self.faults.enabled:
            self.faults.on_chain_write(self.shard_index, self)
        for _ in range(max_retries + 1):
            with self._lock:
                members = list(self._members)
            if not members:
                raise ChainUnavailableError("chain has no members")
            try:
                for replica in members:
                    if self.hop_delay:
                        time.sleep(self.hop_delay)
                    if op == "put":
                        replica.apply_put(key, value)
                    else:
                        replica.apply_append(key, value)
            except ReplicaDeadError as exc:
                # The client observed an explicit error: report to master
                # and retry against the reconfigured chain.
                self.failed_writes += 1
                self.report_failure(exc.replica)
                continue
            self._publish(key, value)
            return
        raise ChainUnavailableError(f"write to {key!r} failed after retries")

    def get(self, key: Any, default: Any = None, max_retries: int = 8) -> Any:
        for _ in range(max_retries + 1):
            with self._lock:
                if not self._members:
                    raise ChainUnavailableError("chain has no members")
                tail = self._members[-1]
            try:
                if self.hop_delay:
                    time.sleep(self.hop_delay)
                return tail.read(key, default)
            except ReplicaDeadError as exc:
                self.report_failure(exc.replica)
        raise ChainUnavailableError(f"read of {key!r} failed after retries")

    def log(self, key: Any) -> List[Any]:
        with self._lock:
            if not self._members:
                raise ChainUnavailableError("chain has no members")
            tail = self._members[-1]
        try:
            return tail.read_log(key)
        except ReplicaDeadError as exc:
            self.report_failure(exc.replica)
            return self.log(key)

    def contains(self, key: Any) -> bool:
        sentinel = object()
        if self.get(key, sentinel) is not sentinel:
            return True
        return bool(self.log(key))

    def delete(self, key: Any) -> None:
        with self._lock:
            members = list(self._members)
        for replica in members:
            if replica.alive:
                replica.store.delete(key)
        # Note: deletes are only used by the flush policy, which runs when
        # the chain is stable, so we do not retry them.

    def num_entries(self) -> int:
        with self._lock:
            if not self._members:
                return 0
            return self._members[-1].store.num_entries()

    def approx_bytes(self) -> int:
        with self._lock:
            if not self._members:
                return 0
            return self._members[-1].store.approx_bytes()

    def keys(self) -> List[Any]:
        with self._lock:
            if not self._members:
                return []
            return self._members[-1].store.keys()

    # -- pub-sub (chain-level, survives reconfiguration) --------------------

    def subscribe(
        self, key: Any, callback: Callable[[Any, Any], None]
    ) -> Callable[[], None]:
        with self._lock:
            self._subscribers.setdefault(key, []).append(callback)

        def unsubscribe() -> None:
            with self._lock:
                handlers = self._subscribers.get(key)
                if handlers and callback in handlers:
                    handlers.remove(callback)
                    if not handlers:
                        del self._subscribers[key]

        return unsubscribe

    def num_subscriptions(self) -> int:
        """Active pub-sub registrations (waiters watching keys)."""
        with self._lock:
            return sum(len(handlers) for handlers in self._subscribers.values())

    def _publish(self, key: Any, value: Any) -> None:
        with self._lock:
            callbacks = list(self._subscribers.get(key, ()))
        for cb in callbacks:
            cb(key, value)
