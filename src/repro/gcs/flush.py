"""Periodic flushing of GCS contents to disk.

Lineage for every task accumulates in the GCS forever; without bounding it
the store eventually exhausts memory and the workload stalls (paper Figure
10b).  Ray therefore flushes cold entries — finished tasks, object
metadata for finished lineage, and event records — to disk, capping the
in-memory footprint at a user-configurable level while keeping a durable
snapshot of the lineage for long-running applications.

The flusher moves entries for *finished* tasks out of the KV store into an
append-only pickle file.  Entries can be re-read (``restore_tasks``) which
is how a recovered component would consult flushed lineage.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, Iterator, List, Optional, Tuple

from repro.common.lockwatch import make_lock
from repro.gcs.client import _EVENT, _OBJ, _OBJ_LOC, _TASK, GlobalControlStore
from repro.gcs.tables import TaskStatus, TaskTableEntry


class GcsFlusher:
    """Flush finished-task lineage and event logs from the GCS to disk."""

    def __init__(
        self,
        gcs: GlobalControlStore,
        path: str,
        max_entries_in_memory: int = 10_000,
    ):
        self.gcs = gcs
        self.path = path
        self.max_entries_in_memory = max_entries_in_memory
        self.flushed_entries = 0
        self._closed = False
        self._flushing = False
        self._lock = make_lock("GcsFlusher._lock")
        # Truncate any previous flush file.
        with open(self.path, "wb"):
            pass

    # -- policy --------------------------------------------------------------

    def should_flush(self) -> bool:
        return self.gcs.num_entries() > self.max_entries_in_memory

    def maybe_flush(self) -> int:
        """Flush if over the memory cap.  Returns entries flushed."""
        with self._lock:
            if self._closed:
                return 0
        if self.should_flush():
            return self.flush()
        return 0

    # -- mechanics -------------------------------------------------------------

    def flush(self) -> int:
        """Move all finished/failed task records (and their object metadata
        and event logs) to disk.  Returns the number of entries flushed.

        One flush runs at a time, enforced by a non-blocking in-progress
        flag rather than by holding ``_lock`` across the scan: a flush
        issues one GCS RPC per key (seconds on a replicated chain with hop
        delays), and blocking every concurrent ``maybe_flush`` caller —
        the runtime's task-finish path — for that long would stall the
        data plane.  A caller that loses the race returns 0; the winner is
        already doing the work.
        """
        with self._lock:
            if self._closed or self._flushing:
                return 0
            self._flushing = True
        flushed = 0
        try:
            records: List[Tuple[str, Any, Any]] = []
            for key in self.gcs.kv.keys():
                if not isinstance(key, tuple):
                    continue
                table, entity = key
                if table == _TASK:
                    entry = self.gcs.kv.get(key)
                    if entry is not None and entry.status in (
                        TaskStatus.FINISHED,
                        TaskStatus.FAILED,
                    ):
                        records.append((_TASK, entity, entry))
                        self.gcs.kv.delete(key)
                        flushed += 1
                elif table == _EVENT:
                    log = self.gcs.kv.log(key)
                    if log:
                        records.append((_EVENT, entity, log))
                        self.gcs.kv.delete(key)
                        flushed += len(log)
            if records:
                with open(self.path, "ab") as f:
                    for record in records:
                        pickle.dump(record, f)
        finally:
            with self._lock:
                self._flushing = False
                self.flushed_entries += flushed
        return flushed

    def iter_flushed(self) -> Iterator[Tuple[str, Any, Any]]:
        """Iterate over all records previously flushed to disk."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as f:
            while True:
                try:
                    yield pickle.load(f)
                except EOFError:
                    return

    def restore_task(self, task_id) -> Optional[TaskTableEntry]:
        """Look up a flushed task record (consulting durable lineage)."""
        for table, entity, value in self.iter_flushed():
            if table == _TASK and entity == task_id:
                return value
        return None

    def flushed_task_count(self) -> int:
        return sum(1 for table, _e, _v in self.iter_flushed() if table == _TASK)

    def close(self) -> None:
        """Quiesce the flusher at runtime shutdown.

        Performs one final flush if the store is over its cap so the disk
        snapshot is as complete as possible, then refuses further flushes
        (restore/iteration stays available for post-mortem inspection)."""
        with self._lock:
            if self._closed:
                return
        self.maybe_flush()
        with self._lock:
            self._closed = True
