"""A3C — asynchronous advantage actor-critic on the repro API.

Listed first among the algorithms the paper implemented on Ray
(Section 7: "A3C, PPO, DQN, ES, DDPG, Ape-X").  The structure is pure
asynchrony: each worker task grabs the *current* policy parameters,
collects a short rollout, computes its own policy/value gradients locally,
and the driver applies gradients as they arrive — no barriers, no
synchronous rounds.  Stale gradients are inherent to the algorithm; the
system's job (done by ``wait``) is to apply whatever is ready and keep
every core busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro
from repro.rl.nn import MLP, softmax
from repro.rl.optim import Adam
from repro.rl.specs import EnvSpec


@repro.remote
def a3c_rollout_gradient(
    policy_params: np.ndarray,
    value_params: np.ndarray,
    env_spec: EnvSpec,
    hidden_size: int,
    rollout_steps: int,
    gamma: float,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray, float, int]:
    """One worker step: rollout + local gradient computation.

    Returns (policy_gradient, value_gradient, episode_reward, steps).
    The gradient math runs *inside the task* — the paper's point that
    application-level optimizations (here, shipping gradients rather than
    trajectories) are expressible directly in the API.
    """
    rng = np.random.default_rng(seed)
    policy = MLP(env_spec.observation_size, hidden_size, env_spec.action_size, seed=0)
    value = MLP(env_spec.observation_size, hidden_size, 1, seed=1)
    policy.set_flat(np.asarray(policy_params))
    value.set_flat(np.asarray(value_params))

    env = env_spec.build(seed=seed)
    obs = env.reset()
    observations, actions, rewards = [], [], []
    total_reward = 0.0
    for _ in range(rollout_steps):
        probs = softmax(policy(obs[None, :]))[0]
        action = int(rng.choice(len(probs), p=probs))
        observations.append(obs)
        actions.append(action)
        obs, reward, done = env.step(action)
        rewards.append(reward)
        total_reward += reward
        if done:
            break

    observations = np.stack(observations)
    actions = np.asarray(actions)
    rewards = np.asarray(rewards, dtype=np.float64)

    # n-step returns with a bootstrap from the value net.
    bootstrap = 0.0 if env.has_terminated() else float(value(obs[None, :])[0, 0])
    returns = np.zeros(len(rewards))
    running = bootstrap
    for t in reversed(range(len(rewards))):
        running = rewards[t] + gamma * running
        returns[t] = running

    values_pred, value_cache = value.forward(observations)
    advantages = returns - values_pred.ravel()

    # Policy gradient: ∇ Σ A·log π(a|s)  (ascent direction).
    logits, policy_cache = policy.forward(observations)
    probs = softmax(logits)
    onehot = np.zeros_like(probs)
    onehot[np.arange(len(actions)), actions] = 1.0
    grad_logits = advantages[:, None] * (onehot - probs) / len(actions)
    policy_grad = policy.backward(policy_cache, grad_logits)

    # Value gradient: descent on MSE(returns, V) == ascent on its negative.
    grad_out = (returns[:, None] - values_pred) / len(returns)
    value_grad = value.backward(value_cache, grad_out)
    return policy_grad, value_grad, total_reward, len(rewards)


@dataclass
class A3CConfig:
    num_workers: int = 4
    hidden_size: int = 32
    rollout_steps: int = 40
    gamma: float = 0.99
    policy_lr: float = 0.02
    value_lr: float = 0.05
    seed: int = 0


class A3CTrainer:
    """The asynchronous gradient loop (apply-as-ready via ``wait``)."""

    def __init__(self, env_spec: EnvSpec, config: Optional[A3CConfig] = None):
        if env_spec.continuous:
            raise ValueError("this A3C implementation is categorical-action")
        self.env_spec = env_spec
        self.config = config or A3CConfig()
        cfg = self.config
        self.policy = MLP(
            env_spec.observation_size, cfg.hidden_size, env_spec.action_size,
            seed=cfg.seed,
        )
        self.value = MLP(env_spec.observation_size, cfg.hidden_size, 1, seed=cfg.seed + 1)
        self.policy_opt = Adam(learning_rate=cfg.policy_lr)
        self.value_opt = Adam(learning_rate=cfg.value_lr)
        self.gradients_applied = 0
        self.env_steps = 0
        self.episode_rewards: List[float] = []
        self._seed = cfg.seed * 7919

    def _launch(self):
        self._seed += 1
        cfg = self.config
        return a3c_rollout_gradient.remote(
            repro.put(self.policy.get_flat()),
            repro.put(self.value.get_flat()),
            self.env_spec,
            cfg.hidden_size,
            cfg.rollout_steps,
            cfg.gamma,
            self._seed,
        )

    def train(self, total_gradient_steps: int) -> Dict[str, float]:
        """Run until ``total_gradient_steps`` gradients have been applied.

        Workers are relaunched with the *latest* parameters the moment
        their previous gradient lands — the A3C hot loop.
        """
        cfg = self.config
        inflight = [self._launch() for _ in range(cfg.num_workers)]
        while self.gradients_applied < total_gradient_steps:
            ready, inflight = repro.wait(inflight, num_returns=1)
            policy_grad, value_grad, reward, steps = repro.get(ready[0])
            self.policy.set_flat(self.policy_opt.step(self.policy.get_flat(), policy_grad))
            self.value.set_flat(self.value_opt.step(self.value.get_flat(), value_grad))
            self.gradients_applied += 1
            self.env_steps += steps
            self.episode_rewards.append(reward)
            inflight.append(self._launch())
        repro.get(inflight)  # drain stragglers
        recent = self.episode_rewards[-20:]
        return {
            "gradients_applied": self.gradients_applied,
            "env_steps": self.env_steps,
            "recent_reward": float(np.mean(recent)) if recent else 0.0,
        }

    def greedy_episode_reward(self, seed: int = 4321) -> float:
        env = self.env_spec.build(seed=seed)
        obs = env.reset()
        total = 0.0
        while not env.has_terminated():
            action = int(np.argmax(self.policy(obs[None, :])[0]))
            obs, reward, _done = env.step(action)
            total += reward
        return total
