"""A replay-buffer actor — shared mutable state behind the actor abstraction.

The paper's Section 7 lists DQN and Ape-X among the algorithms built on
Ray's API; both revolve around a replay buffer that experience actors
write into and learners sample from.  The buffer is exactly the kind of
"shared mutable state exposed to clients" the paper says actors exist for
(like the parameter server): writers and readers interact with it purely
through method futures.

Supports uniform and proportional-prioritized sampling (the Ape-X
variant), with priority updates from the learner.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro

Transition = Tuple[np.ndarray, int, float, np.ndarray, bool]


@repro.remote
class ReplayBufferActor:
    """A bounded FIFO replay buffer with optional prioritization."""

    def __init__(
        self,
        capacity: int = 10_000,
        prioritized: bool = False,
        alpha: float = 0.6,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.prioritized = prioritized
        self.alpha = alpha
        self._storage: List[Transition] = []
        self._priorities: List[float] = []
        self._next = 0  # ring-buffer write cursor
        self._max_priority = 1.0
        self._rng = np.random.default_rng(seed)
        self.total_added = 0

    def add(self, transitions: Sequence[Transition]) -> int:
        """Append transitions (new entries get max priority).  Returns the
        buffer's current size."""
        for transition in transitions:
            if len(self._storage) < self.capacity:
                self._storage.append(transition)
                self._priorities.append(self._max_priority)
            else:
                self._storage[self._next] = transition
                self._priorities[self._next] = self._max_priority
                self._next = (self._next + 1) % self.capacity
            self.total_added += 1
        return len(self._storage)

    def size(self) -> int:
        return len(self._storage)

    def sample(self, batch_size: int):
        """Sample a batch; returns (indices, transitions, weights)."""
        n = len(self._storage)
        if n == 0:
            return [], [], []
        if self.prioritized:
            scaled = np.asarray(self._priorities[:n]) ** self.alpha
            probabilities = scaled / scaled.sum()
            indices = self._rng.choice(n, size=min(batch_size, n), p=probabilities)
            weights = (1.0 / (n * probabilities[indices])) ** 0.4
            weights = weights / weights.max()
        else:
            indices = self._rng.integers(0, n, size=min(batch_size, n))
            weights = np.ones(len(indices))
        batch = [self._storage[i] for i in indices]
        return [int(i) for i in indices], batch, [float(w) for w in weights]

    def update_priorities(self, indices: Sequence[int], priorities: Sequence[float]) -> None:
        """Learner feedback: set new TD-error-based priorities (Ape-X)."""
        for index, priority in zip(indices, priorities):
            if 0 <= index < len(self._priorities):
                value = float(abs(priority)) + 1e-6
                self._priorities[index] = value
                self._max_priority = max(self._max_priority, value)

    def stats(self):
        return {
            "size": len(self._storage),
            "total_added": self.total_added,
            "max_priority": self._max_priority,
        }
