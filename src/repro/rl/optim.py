"""Optimizers over flat parameter vectors (used by ES, PPO, and the
parameter server)."""

from __future__ import annotations

import numpy as np


class SGD:
    """Plain (optionally momentum) stochastic gradient descent."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: np.ndarray | None = None

    def step(self, theta: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated parameters for ascent along ``gradient``."""
        gradient = np.asarray(gradient, dtype=np.float64)
        if self.momentum:
            if self._velocity is None:
                self._velocity = np.zeros_like(gradient)
            self._velocity = self.momentum * self._velocity + gradient
            gradient = self._velocity
        return theta + self.learning_rate * gradient


class Adam:
    """Adam (Kingma & Ba) on flat vectors; ascent convention."""

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: np.ndarray | None = None
        self._v: np.ndarray | None = None
        self._t = 0

    def step(self, theta: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        gradient = np.asarray(gradient, dtype=np.float64)
        if self._m is None:
            self._m = np.zeros_like(gradient)
            self._v = np.zeros_like(gradient)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * gradient
        self._v = self.beta2 * self._v + (1 - self.beta2) * gradient**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return theta + self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
