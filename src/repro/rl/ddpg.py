"""DDPG — deep deterministic policy gradient on the repro API.

The last entry of the paper's Section 7 algorithm list (A3C, PPO, DQN, ES,
DDPG, Ape-X) implemented here: continuous-control off-policy learning with

* a deterministic actor μ(s) (tanh-squashed MLP scaled to the torque
  range) and a critic Q(s, a) over concatenated state-action inputs;
* target copies of both, Polyak-averaged toward the live networks;
* exploration actors streaming OU/Gaussian-noised transitions into the
  shared :class:`~repro.rl.replay_buffer.ReplayBufferActor`;
* a learner sampling batches and taking critic (TD) and actor
  (∂Q/∂a · ∂μ/∂θ chain-rule) steps.

Runs on Pendulum, the paper's own continuous-control microbenchmark env.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

import repro
from repro.rl.nn import MLP
from repro.rl.replay_buffer import ReplayBufferActor
from repro.rl.specs import EnvSpec


@repro.remote
class DDPGExplorer:
    """Steps an env with the noisy deterministic policy."""

    def __init__(self, env_spec: EnvSpec, hidden_size: int, action_scale: float, seed: int):
        self.env_spec = env_spec
        self.env = env_spec.build(seed=seed)
        self.actor = MLP(
            env_spec.observation_size, hidden_size, env_spec.action_size, seed=0
        )
        self.action_scale = action_scale
        self.rng = np.random.default_rng(seed)
        self._obs = self.env.reset()
        self.episode_reward = 0.0

    def collect(self, actor_params: np.ndarray, noise_scale: float, num_steps: int):
        self.actor.set_flat(actor_params)
        transitions = []
        episode_rewards: List[float] = []
        for _ in range(num_steps):
            raw = self.actor(self._obs[None, :])[0]
            action = self.action_scale * np.tanh(raw)
            action = action + noise_scale * self.rng.standard_normal(action.shape)
            action = np.clip(action, -self.action_scale, self.action_scale)
            next_obs, reward, done = self.env.step(action)
            transitions.append((self._obs, action, reward, next_obs, done))
            self.episode_reward += reward
            if done:
                episode_rewards.append(self.episode_reward)
                self.episode_reward = 0.0
                next_obs = self.env.reset()
            self._obs = next_obs
        return transitions, episode_rewards


@dataclass
class DDPGConfig:
    num_explorers: int = 2
    hidden_size: int = 32
    action_scale: float = 2.0  # Pendulum torque range
    replay_capacity: int = 20_000
    batch_size: int = 64
    gamma: float = 0.98
    actor_lr: float = 1e-3
    critic_lr: float = 5e-3
    tau: float = 0.01  # Polyak averaging rate
    noise_scale: float = 0.3
    collect_steps_per_round: int = 50
    learn_starts: int = 200
    learner_steps_per_round: int = 10
    seed: int = 0


class DDPGTrainer:
    """Off-policy continuous control with actor-critic targets."""

    def __init__(self, env_spec: EnvSpec, config: Optional[DDPGConfig] = None):
        if not env_spec.continuous:
            raise ValueError("DDPG requires a continuous-action environment")
        self.env_spec = env_spec
        self.config = config or DDPGConfig()
        cfg = self.config
        obs_size = env_spec.observation_size
        act_size = env_spec.action_size
        self.actor = MLP(obs_size, cfg.hidden_size, act_size, seed=cfg.seed)
        self.critic = MLP(obs_size + act_size, cfg.hidden_size, 1, seed=cfg.seed + 1)
        self.target_actor = MLP(obs_size, cfg.hidden_size, act_size, seed=cfg.seed)
        self.target_critic = MLP(obs_size + act_size, cfg.hidden_size, 1, seed=cfg.seed + 1)
        self.target_actor.set_flat(self.actor.get_flat())
        self.target_critic.set_flat(self.critic.get_flat())
        self.replay = ReplayBufferActor.remote(capacity=cfg.replay_capacity, seed=cfg.seed)
        self.explorers = [
            DDPGExplorer.remote(
                env_spec, cfg.hidden_size, cfg.action_scale, seed=cfg.seed * 17 + i
            )
            for i in range(cfg.num_explorers)
        ]
        self.env_steps = 0
        self.learner_steps = 0
        self.episode_rewards: List[float] = []
        # Client-side mirror of the replay ring size (add() returns
        # min(capacity, total_added)); saves a blocking round trip per add.
        self.replay_size = 0
        self._replay_refs: List[repro.ObjectRef] = []

    # -- pieces -------------------------------------------------------------

    def _act(self, network: MLP, obs: np.ndarray) -> np.ndarray:
        return self.config.action_scale * np.tanh(network(obs))

    def _learn_step(self, batch) -> float:
        cfg = self.config
        obs = np.stack([t[0] for t in batch])
        actions = np.stack([t[1] for t in batch])
        rewards = np.asarray([t[2] for t in batch])
        next_obs = np.stack([t[3] for t in batch])
        dones = np.asarray([t[4] for t in batch], dtype=bool)

        # Critic TD step toward target-Q.
        next_actions = self._act(self.target_actor, next_obs)
        next_q = self.target_critic(np.hstack([next_obs, next_actions])).ravel()
        targets = rewards + cfg.gamma * next_q * (~dones)
        critic_in = np.hstack([obs, actions])
        q_values, critic_cache = self.critic.forward(critic_in)
        td_error = targets - q_values.ravel()
        grad_out = (td_error / len(batch))[:, None]
        critic_grad = self.critic.backward(critic_cache, grad_out)
        self.critic.set_flat(self.critic.get_flat() + cfg.critic_lr * critic_grad)

        # Actor ascent on Q(s, μ(s)): chain ∂Q/∂a through tanh into μ.
        raw, actor_cache = self.actor.forward(obs)
        mu = cfg.action_scale * np.tanh(raw)
        actor_critic_in = np.hstack([obs, mu])
        _q_mu, q_cache = self.critic.forward(actor_critic_in)
        ones = np.ones((len(batch), 1)) / len(batch)
        dq_dinput = self.critic.backward_input(q_cache, ones)
        dq_da = dq_dinput[:, obs.shape[1]:]  # slice off the state block
        dmu_draw = cfg.action_scale * (1.0 - np.tanh(raw) ** 2)
        actor_grad = self.actor.backward(actor_cache, dq_da * dmu_draw)
        self.actor.set_flat(self.actor.get_flat() + cfg.actor_lr * actor_grad)

        # Polyak-average the targets.
        for live, target in (
            (self.actor, self.target_actor),
            (self.critic, self.target_critic),
        ):
            target.set_flat(
                (1 - cfg.tau) * target.get_flat() + cfg.tau * live.get_flat()
            )
        self.learner_steps += 1
        return float(np.mean(np.abs(td_error)))

    # -- the loop ----------------------------------------------------------------

    def train_round(self) -> Dict[str, float]:
        cfg = self.config
        params_ref = repro.put(self.actor.get_flat())
        collect_refs = [
            explorer.collect.remote(params_ref, cfg.noise_scale, cfg.collect_steps_per_round)
            for explorer in self.explorers
        ]
        pending = list(collect_refs)
        td_errors = []
        while pending:
            ready, pending = repro.wait(pending, num_returns=1)
            transitions, finished = repro.get(ready[0])
            self.env_steps += len(transitions)
            self.episode_rewards.extend(finished)
            self._replay_refs.append(self.replay.add.remote(transitions))
            self.replay_size = min(
                cfg.replay_capacity, self.replay_size + len(transitions)
            )
            if self.replay_size >= cfg.learn_starts:
                # Submit the whole round of sample() calls up front and
                # fetch them in one batched get: the actor mailbox preserves
                # submission order, so the batches are identical to the old
                # one-get-per-step loop minus the per-step round trips
                # (learn steps never touch the buffer).
                sample_refs = [
                    self.replay.sample.remote(cfg.batch_size)
                    for _ in range(cfg.learner_steps_per_round)
                ]
                for _i, batch, _w in repro.get(sample_refs):
                    if batch:
                        td_errors.append(self._learn_step(batch))
        if self._replay_refs:
            repro.get(self._replay_refs)
            self._replay_refs.clear()
        return {
            "env_steps": self.env_steps,
            "learner_steps": self.learner_steps,
            "mean_td_error": float(np.mean(td_errors)) if td_errors else 0.0,
            "recent_reward": (
                float(np.mean(self.episode_rewards[-5:]))
                if self.episode_rewards
                else float("nan")
            ),
        }

    def train(self, rounds: int) -> List[Dict[str, float]]:
        return [self.train_round() for _ in range(rounds)]

    def policy_episode_reward(self, seed: int = 777) -> float:
        env = self.env_spec.build(seed=seed)
        obs = env.reset()
        total = 0.0
        while not env.has_terminated():
            action = self._act(self.actor, obs[None, :])[0]
            obs, reward, _done = env.step(action)
            total += reward
        return total

    def close(self) -> None:
        repro.kill(self.replay)
        for explorer in self.explorers:
            repro.kill(explorer)
