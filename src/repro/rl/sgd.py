"""Synchronous data-parallel SGD (paper Section 5.2.1, Figure 13).

Model replicas are actors, each holding a shard of the training data; in
every iteration each replica computes a gradient against the current
parameters, the gradients meet at a sharded parameter server (or via ring
allreduce — both synchronization paths of the paper are available), and
the updated parameters flow back as futures.  The per-shard gradient push
is pipelined: replica → shard transfers for shard *s* overlap the compute
of shard *s+1*'s consumers, because everything is expressed as futures.

The model here is linear least-squares on synthetic data — a stand-in for
the paper's fixed ResNet-101 kernel, chosen so convergence is checkable in
tests while exercising the identical system structure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

import repro
from repro.rl.parameter_server import ShardedParameterServer


def make_dataset(
    num_samples: int, dim: int, seed: int = 0, noise: float = 0.01
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Synthetic linear regression data; returns (X, y, true_weights)."""
    rng = np.random.default_rng(seed)
    true_weights = rng.standard_normal(dim)
    features = rng.standard_normal((num_samples, dim))
    targets = features @ true_weights + noise * rng.standard_normal(num_samples)
    return features, targets, true_weights


@repro.remote
class ModelReplica:
    """One data-parallel worker: a data shard plus gradient computation."""

    def __init__(self, features: np.ndarray, targets: np.ndarray):
        self.features = np.asarray(features, dtype=np.float64)
        self.targets = np.asarray(targets, dtype=np.float64)

    def gradient(self, *param_shards: np.ndarray) -> List[np.ndarray]:
        """MSE gradient at the concatenated parameters, split back into the
        same shard sizes (ready to push to each PS shard)."""
        params = np.concatenate([np.asarray(s, dtype=np.float64) for s in param_shards])
        residual = self.features @ params - self.targets
        grad = self.features.T @ residual / len(self.targets)
        out, offset = [], 0
        for shard in param_shards:
            size = np.asarray(shard).size
            out.append(grad[offset : offset + size])
            offset += size
        # With one shard this is a single return value, not a 1-list (the
        # method is invoked with num_returns == num_shards).
        return out if len(out) > 1 else out[0]

    def loss(self, *param_shards: np.ndarray) -> float:
        params = np.concatenate([np.asarray(s, dtype=np.float64) for s in param_shards])
        residual = self.features @ params - self.targets
        return float(np.mean(residual**2) / 2)


class SyncSGDTrainer:
    """Paper-style synchronous SGD: replicas × sharded parameter server."""

    def __init__(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        num_workers: int = 2,
        num_ps_shards: int = 2,
        learning_rate: float = 0.1,
        initial: Optional[np.ndarray] = None,
    ):
        dim = features.shape[1]
        if initial is None:
            initial = np.zeros(dim)
        self.server = ShardedParameterServer(
            initial, num_shards=num_ps_shards, learning_rate=learning_rate
        )
        feature_shards = np.array_split(features, num_workers)
        target_shards = np.array_split(targets, num_workers)
        self.replicas = [
            ModelReplica.remote(fs, ts)
            for fs, ts in zip(feature_shards, target_shards)
        ]

    def step(self) -> None:
        """One synchronous iteration: pull → gradient → push-sum-update.

        Everything is futures: shard values flow to replicas, per-shard
        gradients flow to shards, and the update chains on them.
        """
        param_refs = self.server.get_param_refs()
        grad_refs = [
            replica.gradient.options(num_returns=self.server.num_shards).remote(
                *param_refs
            )
            for replica in self.replicas
        ]
        # grad_refs[w] is a tuple of per-shard futures (num_returns > 1).
        if self.server.num_shards == 1:
            per_worker = [[ref] for ref in grad_refs]
        else:
            per_worker = [list(refs) for refs in grad_refs]
        repro.get(self.server.apply(per_worker))

    def train(self, iterations: int) -> List[float]:
        """Run ``iterations`` steps; returns the loss after each."""
        losses = []
        for _ in range(iterations):
            self.step()
            losses.append(self.loss())
        return losses

    def loss(self) -> float:
        param_refs = self.server.get_param_refs()
        loss_refs = [replica.loss.remote(*param_refs) for replica in self.replicas]
        return float(np.mean(repro.get(loss_refs)))

    def params(self) -> np.ndarray:
        return self.server.get_params()

    def close(self) -> None:
        """Terminate the replica and parameter-server actors."""
        for replica in self.replicas:
            repro.kill(replica)
        self.server.close()
