"""Policies: mappings from environment state to actions.

Pure-numpy policies with flat parameter get/set — the interface both ES
(which perturbs flat parameter vectors) and the parameter server (which
ships flat weight deltas) work against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np


class Policy:
    """Base interface: act on observations, expose flat parameters."""

    def act(self, observation: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def num_params(self) -> int:
        return self.get_flat().size

    def get_flat(self) -> np.ndarray:
        raise NotImplementedError

    def set_flat(self, theta: np.ndarray) -> None:
        raise NotImplementedError

    def perturbed(self, noise: np.ndarray, sigma: float) -> "Policy":
        """A copy of this policy with ``theta + sigma * noise`` (ES)."""
        clone = self.clone()
        clone.set_flat(self.get_flat() + sigma * noise)
        return clone

    def clone(self) -> "Policy":
        raise NotImplementedError


class LinearPolicy(Policy):
    """A linear map (plus bias) from observation to action.

    Continuous outputs are squashed with tanh and scaled; discrete outputs
    take the argmax (deterministic — the form ES uses).
    """

    def __init__(
        self,
        observation_size: int,
        action_size: int,
        continuous: bool = True,
        action_scale: float = 2.0,
        seed: Optional[int] = None,
    ):
        self.observation_size = observation_size
        self.action_size = action_size
        self.continuous = continuous
        self.action_scale = action_scale
        rng = np.random.default_rng(seed)
        self.weights = rng.standard_normal((action_size, observation_size)) * 0.01
        self.bias = np.zeros(action_size)

    def act(self, observation: np.ndarray) -> np.ndarray:
        raw = self.weights @ np.asarray(observation, dtype=np.float64) + self.bias
        if self.continuous:
            return self.action_scale * np.tanh(raw)
        return int(np.argmax(raw))

    def get_flat(self) -> np.ndarray:
        return np.concatenate([self.weights.ravel(), self.bias])

    def set_flat(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        w_size = self.weights.size
        if theta.size != w_size + self.bias.size:
            raise ValueError(
                f"expected {w_size + self.bias.size} params, got {theta.size}"
            )
        self.weights = theta[:w_size].reshape(self.weights.shape).copy()
        self.bias = theta[w_size:].copy()

    def clone(self) -> "LinearPolicy":
        clone = LinearPolicy(
            self.observation_size,
            self.action_size,
            continuous=self.continuous,
            action_scale=self.action_scale,
        )
        clone.set_flat(self.get_flat())
        return clone


class MLPPolicy(Policy):
    """A tanh MLP policy (deterministic)."""

    def __init__(
        self,
        observation_size: int,
        action_size: int,
        hidden: Sequence[int] = (32,),
        continuous: bool = True,
        action_scale: float = 2.0,
        seed: Optional[int] = None,
    ):
        self.observation_size = observation_size
        self.action_size = action_size
        self.hidden: Tuple[int, ...] = tuple(hidden)
        self.continuous = continuous
        self.action_scale = action_scale
        rng = np.random.default_rng(seed)
        sizes = [observation_size, *self.hidden, action_size]
        self.layers = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = 1.0 / np.sqrt(fan_in)
            self.layers.append(
                (
                    rng.uniform(-scale, scale, size=(fan_out, fan_in)),
                    np.zeros(fan_out),
                )
            )

    def act(self, observation: np.ndarray) -> np.ndarray:
        x = np.asarray(observation, dtype=np.float64)
        for index, (weights, bias) in enumerate(self.layers):
            x = weights @ x + bias
            if index < len(self.layers) - 1:
                x = np.tanh(x)
        if self.continuous:
            return self.action_scale * np.tanh(x)
        return int(np.argmax(x))

    def get_flat(self) -> np.ndarray:
        return np.concatenate(
            [w.ravel() for w, _b in self.layers] + [b for _w, b in self.layers]
        )

    def set_flat(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        offset = 0
        new_layers = []
        weights_list = []
        for weights, _bias in self.layers:
            count = weights.size
            weights_list.append(theta[offset : offset + count].reshape(weights.shape))
            offset += count
        for index, (_weights, bias) in enumerate(self.layers):
            count = bias.size
            new_layers.append(
                (weights_list[index].copy(), theta[offset : offset + count].copy())
            )
            offset += count
        if offset != theta.size:
            raise ValueError(f"expected {offset} params, got {theta.size}")
        self.layers = new_layers

    def clone(self) -> "MLPPolicy":
        clone = MLPPolicy(
            self.observation_size,
            self.action_size,
            hidden=self.hidden,
            continuous=self.continuous,
            action_scale=self.action_scale,
        )
        clone.set_flat(self.get_flat())
        return clone
