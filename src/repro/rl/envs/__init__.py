"""RL environments (numpy re-implementations of the paper's simulators).

The paper evaluates on OpenAI Gym tasks (Pendulum-v0 for Table 4,
Humanoid-v1 for Figure 14) backed by MuJoCo, which is unavailable here.
Per the substitution rule we re-implement the environments the experiments
actually exercise:

* :mod:`repro.rl.envs.pendulum` — the exact classic-control Pendulum
  dynamics (Table 4 measures raw simulation throughput of this env);
* :mod:`repro.rl.envs.cartpole` — CartPole for fast-converging training
  demos (ES / PPO examples and tests);
* :mod:`repro.rl.envs.humanoid` — a surrogate with Humanoid-like *cost
  structure* (expensive steps, long episodes, variable lengths), used
  where the experiment depends on step cost rather than physics.
"""

from repro.rl.envs.pendulum import PendulumEnv
from repro.rl.envs.cartpole import CartPoleEnv
from repro.rl.envs.humanoid import HumanoidSurrogateEnv

__all__ = ["PendulumEnv", "CartPoleEnv", "HumanoidSurrogateEnv"]
