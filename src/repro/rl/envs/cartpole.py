"""CartPole-v0 dynamics (numpy re-implementation).

Used by the training examples and tests because policies converge on it in
seconds: a pole hinged on a cart must be balanced by pushing the cart left
or right.  Observation ``[x, ẋ, θ, θ̇]``, actions {0, 1}, reward +1 per
step; episode ends when the pole exceeds ±12° or the cart leaves ±2.4.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

GRAVITY = 9.8
CART_MASS = 1.0
POLE_MASS = 0.1
TOTAL_MASS = CART_MASS + POLE_MASS
POLE_HALF_LENGTH = 0.5
POLE_MASS_LENGTH = POLE_MASS * POLE_HALF_LENGTH
FORCE_MAG = 10.0
DT = 0.02
THETA_LIMIT = 12 * 2 * math.pi / 360
X_LIMIT = 2.4


class CartPoleEnv:
    """The classic cart-pole balancing task."""

    observation_size = 4
    action_size = 2  # discrete: {push left, push right}
    continuous = False

    def __init__(self, seed: Optional[int] = None, max_steps: int = 200):
        self._rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self._state = np.zeros(4)
        self._steps = 0
        self._done = False
        self.reset()

    def reset(self) -> np.ndarray:
        self._state = self._rng.uniform(-0.05, 0.05, size=4)
        self._steps = 0
        self._done = False
        return self._state.copy()

    def step(self, action: int) -> Tuple[np.ndarray, float, bool]:
        if self._done:
            raise RuntimeError("step() called on terminated episode")
        x, x_dot, theta, theta_dot = self._state
        force = FORCE_MAG if action == 1 else -FORCE_MAG
        cos_t = math.cos(theta)
        sin_t = math.sin(theta)

        temp = (force + POLE_MASS_LENGTH * theta_dot**2 * sin_t) / TOTAL_MASS
        theta_acc = (GRAVITY * sin_t - cos_t * temp) / (
            POLE_HALF_LENGTH * (4.0 / 3.0 - POLE_MASS * cos_t**2 / TOTAL_MASS)
        )
        x_acc = temp - POLE_MASS_LENGTH * theta_acc * cos_t / TOTAL_MASS

        x += DT * x_dot
        x_dot += DT * x_acc
        theta += DT * theta_dot
        theta_dot += DT * theta_acc
        self._state = np.array([x, x_dot, theta, theta_dot])
        self._steps += 1

        failed = abs(x) > X_LIMIT or abs(theta) > THETA_LIMIT
        self._done = failed or self._steps >= self.max_steps
        return self._state.copy(), 1.0, self._done

    def current_state(self) -> np.ndarray:
        return self._state.copy()

    def has_terminated(self) -> bool:
        return self._done
