"""Pendulum-v0: the classic-control swing-up task (Table 4's simulator).

A faithful numpy re-implementation of OpenAI Gym's Pendulum-v0 dynamics:
a torque-limited pendulum must be swung upright and balanced.  Observation
is ``[cos θ, sin θ, θ̇]``, action is a single torque in [-2, 2], reward is
``-(θ̂² + 0.1·θ̇² + 0.001·u²)`` where θ̂ is the angle normalized to
[-π, π].
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

MAX_SPEED = 8.0
MAX_TORQUE = 2.0
DT = 0.05
GRAVITY = 10.0
MASS = 1.0
LENGTH = 1.0


def angle_normalize(theta: float) -> float:
    """Wrap an angle into [-π, π]."""
    return ((theta + np.pi) % (2 * np.pi)) - np.pi


class PendulumEnv:
    """Torque-limited pendulum swing-up."""

    observation_size = 3
    action_size = 1
    continuous = True

    def __init__(self, seed: Optional[int] = None, max_steps: int = 200):
        self._rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self._theta = 0.0
        self._theta_dot = 0.0
        self._steps = 0
        self.reset()

    def reset(self) -> np.ndarray:
        self._theta = self._rng.uniform(-np.pi, np.pi)
        self._theta_dot = self._rng.uniform(-1.0, 1.0)
        self._steps = 0
        return self._observation()

    def _observation(self) -> np.ndarray:
        return np.array(
            [np.cos(self._theta), np.sin(self._theta), self._theta_dot],
            dtype=np.float64,
        )

    def step(self, action) -> Tuple[np.ndarray, float, bool]:
        """Advance one timestep.  Returns (observation, reward, done)."""
        u = float(np.clip(np.asarray(action).reshape(-1)[0], -MAX_TORQUE, MAX_TORQUE))
        theta, theta_dot = self._theta, self._theta_dot

        cost = angle_normalize(theta) ** 2 + 0.1 * theta_dot**2 + 0.001 * u**2

        theta_dot = theta_dot + (
            3 * GRAVITY / (2 * LENGTH) * np.sin(theta)
            + 3.0 / (MASS * LENGTH**2) * u
        ) * DT
        theta_dot = float(np.clip(theta_dot, -MAX_SPEED, MAX_SPEED))
        theta = theta + theta_dot * DT

        self._theta = theta
        self._theta_dot = theta_dot
        self._steps += 1
        done = self._steps >= self.max_steps
        return self._observation(), -cost, done

    def current_state(self) -> np.ndarray:
        return self._observation()

    def has_terminated(self) -> bool:
        return self._steps >= self.max_steps
