"""Humanoid-v1 surrogate environment.

The paper's large-scale experiments (Figure 14) run Humanoid-v1 in MuJoCo,
which is proprietary and unavailable.  Those experiments depend on the
environment's *cost structure* — a large observation vector, expensive
steps, variable episode lengths (policies that fall end episodes early) —
rather than on the physics.  This surrogate preserves those properties:

* 376-dimensional observation, 17-dimensional action (MuJoCo's shapes);
* a configurable per-step compute cost (default calibrated to ~2.4 ms,
  MuJoCo Humanoid's cost on the paper-era hardware);
* episode length that grows with how well the action tracks an internal
  target direction, so "better" policies yield longer episodes and higher
  scores — preserving the variable-duration profile driving the BSP-vs-
  async comparisons.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class HumanoidSurrogateEnv:
    """A cost-structure-faithful stand-in for MuJoCo Humanoid-v1."""

    observation_size = 376
    action_size = 17
    continuous = True

    def __init__(
        self,
        seed: Optional[int] = None,
        max_steps: int = 1000,
        step_compute: int = 0,
    ):
        """``step_compute``: extra floating-point work per step (matrix size)
        to emulate MuJoCo's step cost; 0 disables it for fast tests."""
        self._rng = np.random.default_rng(seed)
        self.max_steps = max_steps
        self.step_compute = step_compute
        self._work = (
            self._rng.standard_normal((step_compute, step_compute))
            if step_compute
            else None
        )
        self._target = np.zeros(self.action_size)
        self._obs = np.zeros(self.observation_size)
        self._steps = 0
        self._done = False
        self.reset()

    def reset(self) -> np.ndarray:
        self._target = self._rng.standard_normal(self.action_size)
        self._target /= np.linalg.norm(self._target) + 1e-8
        self._obs = self._rng.standard_normal(self.observation_size) * 0.1
        # Encode the target into the head of the observation so that a
        # linear policy *can* learn to track it.
        self._obs[: self.action_size] = self._target
        self._steps = 0
        self._done = False
        return self._obs.copy()

    def step(self, action) -> Tuple[np.ndarray, float, bool]:
        if self._done:
            raise RuntimeError("step() called on terminated episode")
        action = np.asarray(action, dtype=np.float64).reshape(self.action_size)
        if self._work is not None:  # burn MuJoCo-like compute
            _ = self._work @ self._work[:, 0]
        alignment = float(
            np.dot(action, self._target)
            / (np.linalg.norm(action) * np.linalg.norm(self._target) + 1e-8)
        )
        reward = 5.0 * alignment + 0.25  # alive bonus, ~[−4.75, 5.25]
        self._steps += 1
        # Poor alignment risks "falling": episode ends early.
        fall_probability = max(0.0, 0.25 * (0.2 - alignment))
        fell = self._rng.random() < fall_probability
        self._done = fell or self._steps >= self.max_steps
        self._obs = self._rng.standard_normal(self.observation_size) * 0.1
        self._obs[: self.action_size] = self._target
        return self._obs.copy(), reward, self._done

    def current_state(self) -> np.ndarray:
        return self._obs.copy()

    def has_terminated(self) -> bool:
        return self._done
