"""RL workloads built on the repro API — the paper's application layer.

* :mod:`repro.rl.envs` — Pendulum / CartPole / Humanoid-surrogate
  environments.
* :mod:`repro.rl.policy`, :mod:`repro.rl.nn`, :mod:`repro.rl.optim` —
  numpy policies, a backprop MLP, and optimizers.
* :mod:`repro.rl.rollout` — the Figure 2 rollout loop and the Figure 3
  ``Simulator`` actor.
* :mod:`repro.rl.allreduce` — ring allreduce on the API (Section 5.1).
* :mod:`repro.rl.parameter_server`, :mod:`repro.rl.sgd` — sharded
  parameter server and synchronous data-parallel SGD (Section 5.2.1).
* :mod:`repro.rl.serving` — embedded policy serving (Section 5.2.2).
* :mod:`repro.rl.es` — Evolution Strategies with optional hierarchical
  aggregation (Section 5.3.1).
* :mod:`repro.rl.ppo` — asynchronous scatter-gather PPO (Section 5.3.2).
"""

from repro.rl.specs import EnvSpec, PolicySpec
from repro.rl.policy import LinearPolicy, MLPPolicy, Policy
from repro.rl.optim import SGD, Adam
from repro.rl.rollout import SimulatorActor, Trajectory, rollout
from repro.rl.allreduce import RingWorker, ring_allreduce
from repro.rl.parameter_server import ParameterServerShard, ShardedParameterServer
from repro.rl.sgd import ModelReplica, SyncSGDTrainer, make_dataset
from repro.rl.es import ESConfig, EvolutionStrategies, centered_ranks
from repro.rl.ppo import PPOConfig, PPOTrainer, compute_gae
from repro.rl.serving import PolicyServer, measure_serving_throughput
from repro.rl.replay_buffer import ReplayBufferActor
from repro.rl.dqn import ApexDQNTrainer, DQNConfig, ExperienceActor
from repro.rl.a3c import A3CConfig, A3CTrainer
from repro.rl.ddpg import DDPGConfig, DDPGTrainer

__all__ = [
    "EnvSpec",
    "PolicySpec",
    "Policy",
    "LinearPolicy",
    "MLPPolicy",
    "SGD",
    "Adam",
    "rollout",
    "Trajectory",
    "SimulatorActor",
    "ring_allreduce",
    "RingWorker",
    "ParameterServerShard",
    "ShardedParameterServer",
    "ModelReplica",
    "SyncSGDTrainer",
    "make_dataset",
    "ESConfig",
    "EvolutionStrategies",
    "centered_ranks",
    "PPOConfig",
    "PPOTrainer",
    "compute_gae",
    "PolicyServer",
    "measure_serving_throughput",
    "ReplayBufferActor",
    "ApexDQNTrainer",
    "DQNConfig",
    "ExperienceActor",
    "A3CConfig",
    "A3CTrainer",
    "DDPGConfig",
    "DDPGTrainer",
]
