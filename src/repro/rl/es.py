"""Evolution Strategies (Salimans et al.) on the repro API (Section 5.3.1).

Each iteration broadcasts the current policy parameters (one ``put``, so
workers on the same node share the copy through the object store), spawns
a population of rollout *tasks* — each perturbs the parameters with noise
reconstructed from a seed, evaluates mirrored perturbations, and returns
``(seed, reward⁺, reward⁻)`` — and folds the results into a gradient
estimate with centered-rank fitness shaping.

Two aggregation modes reproduce the paper's Figure 14a comparison:

* ``hierarchical=False`` — the driver folds every result itself (the
  reference system's structure, which stops scaling when the driver
  saturates);
* ``hierarchical=True`` — aggregation *tasks* (nested remote calls) each
  fold a slice of the population into a partial gradient; the driver only
  sums the partials.  This is the paper's aggregation tree, "easy to
  realize with Ray's support for nested tasks".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

import repro
from repro.rl.optim import Adam
from repro.rl.rollout import rollout
from repro.rl.specs import EnvSpec, PolicySpec


def _noise_for_seed(seed: int, dim: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(dim)


def centered_ranks(values: np.ndarray) -> np.ndarray:
    """Map values to centered ranks in [-0.5, 0.5] (fitness shaping)."""
    flat = values.ravel()
    ranks = np.empty(flat.size, dtype=np.float64)
    ranks[flat.argsort()] = np.arange(flat.size)
    ranks = ranks / max(1, flat.size - 1) - 0.5
    return ranks.reshape(values.shape)


@repro.remote
def es_rollout(
    params: np.ndarray,
    seed: int,
    sigma: float,
    env_spec: EnvSpec,
    policy_spec: PolicySpec,
    num_steps: Optional[int] = None,
) -> Tuple[int, float, float]:
    """Evaluate mirrored perturbations ±σ·ε(seed); returns (seed, r⁺, r⁻)."""
    noise = _noise_for_seed(seed, params.size)
    rewards = []
    for sign in (1.0, -1.0):
        policy = policy_spec.build(seed=0)
        policy.set_flat(np.asarray(params) + sign * sigma * noise)
        env = env_spec.build(seed=seed)
        rewards.append(rollout(policy, env, num_steps=num_steps).total_reward)
    return seed, rewards[0], rewards[1]


@repro.remote
def es_aggregate(
    dim: int, sigma: float, shaped: List[Tuple[int, float]]
) -> np.ndarray:
    """Fold (seed, shaped-weight) pairs into a partial gradient sum.

    Runs as a task so aggregation parallelizes into a tree: the driver
    only ever sums the partial vectors.
    """
    total = np.zeros(dim)
    for seed, weight in shaped:
        total += weight * _noise_for_seed(seed, dim)
    return total / sigma


@dataclass
class ESConfig:
    population_size: int = 20  # mirrored pairs per iteration
    sigma: float = 0.1
    learning_rate: float = 0.05
    episode_steps: Optional[int] = None
    hierarchical: bool = False
    aggregation_fanout: int = 8  # results per aggregation task
    seed: int = 0


class EvolutionStrategies:
    """ES trainer over the repro API."""

    def __init__(
        self,
        env_spec: EnvSpec,
        policy_spec: Optional[PolicySpec] = None,
        config: Optional[ESConfig] = None,
    ):
        self.env_spec = env_spec
        self.policy_spec = policy_spec or PolicySpec.for_env(env_spec)
        self.config = config or ESConfig()
        self.policy = self.policy_spec.build(seed=self.config.seed)
        self.theta = self.policy.get_flat()
        self.optimizer = Adam(learning_rate=self.config.learning_rate)
        self._seed_counter = self.config.seed * 1_000_003
        self.history: List[float] = []

    def _next_seeds(self, count: int) -> List[int]:
        seeds = [self._seed_counter + i for i in range(count)]
        self._seed_counter += count
        return seeds

    def train_iteration(self) -> float:
        """One ES update; returns the population's mean episode reward."""
        config = self.config
        theta_ref = repro.put(self.theta)  # broadcast once per iteration
        seeds = self._next_seeds(config.population_size)
        result_refs = [
            es_rollout.remote(
                theta_ref,
                seed,
                config.sigma,
                self.env_spec,
                self.policy_spec,
                config.episode_steps,
            )
            for seed in seeds
        ]
        # Gather as they finish (ray.wait-style), not in submission order.
        results = []
        pending = list(result_refs)
        while pending:
            ready, pending = repro.wait(pending, num_returns=min(8, len(pending)))
            results.extend(repro.get(ready))
        # Sort by seed so rank tie-breaking is independent of arrival order
        # (updates are then bit-identical across gather schedules).
        results.sort(key=lambda r: r[0])

        seeds_out = np.array([r[0] for r in results])
        pos = np.array([r[1] for r in results])
        neg = np.array([r[2] for r in results])
        shaped = centered_ranks(np.concatenate([pos, neg]))
        weights = shaped[: len(results)] - shaped[len(results) :]

        if config.hierarchical:
            pairs = [(int(s), float(w)) for s, w in zip(seeds_out, weights)]
            partial_refs = [
                es_aggregate.remote(
                    self.theta.size,
                    config.sigma,
                    pairs[i : i + config.aggregation_fanout],
                )
                for i in range(0, len(pairs), config.aggregation_fanout)
            ]
            gradient = np.sum(repro.get(partial_refs), axis=0)
        else:
            gradient = np.zeros_like(self.theta)
            for seed, weight in zip(seeds_out, weights):
                gradient += weight * _noise_for_seed(int(seed), self.theta.size)
            gradient /= config.sigma
        gradient /= config.population_size

        self.theta = self.optimizer.step(self.theta, gradient)
        mean_reward = float(np.mean(np.concatenate([pos, neg])))
        self.history.append(mean_reward)
        return mean_reward

    def train(self, iterations: int) -> List[float]:
        return [self.train_iteration() for _ in range(iterations)]

    def evaluate(self, episodes: int = 3, seed: int = 12345) -> float:
        """Mean reward of the *current* (unperturbed) policy."""
        self.policy.set_flat(self.theta)
        rewards = []
        for episode in range(episodes):
            env = self.env_spec.build(seed=seed + episode)
            rewards.append(
                rollout(
                    self.policy, env, num_steps=self.config.episode_steps
                ).total_reward
            )
        return float(np.mean(rewards))
