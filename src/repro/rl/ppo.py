"""Proximal Policy Optimization on the repro API (paper Section 5.3.2).

The paper's PPO is an *asynchronous scatter-gather*: simulation actors
produce rollouts; the driver assigns new rollout tasks to actors as
results return (``wait``-based), until the step budget for the iteration
is collected; then the policy is updated with several epochs of clipped-
surrogate SGD and broadcast again.

This implementation trains a categorical MLP policy (with a separate value
network for GAE advantages) on CartPole — the same algorithm structure at
laptop scale, with exact numpy gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

import repro
from repro.rl.nn import MLP, log_prob_categorical, softmax
from repro.rl.optim import Adam
from repro.rl.specs import EnvSpec


@repro.remote
class RolloutActor:
    """A simulation actor producing on-policy rollouts."""

    def __init__(self, env_spec: EnvSpec, hidden_size: int, seed: int):
        self.env_spec = env_spec
        self.env = env_spec.build(seed=seed)
        self.policy = MLP(
            env_spec.observation_size, hidden_size, env_spec.action_size, seed=0
        )
        self.rng = np.random.default_rng(seed)

    def rollout(self, params: np.ndarray) -> Dict[str, np.ndarray]:
        """One episode under the given policy parameters.

        Returns arrays of observations, sampled actions, rewards, and the
        behaviour log-probs (needed for the PPO ratio).
        """
        self.policy.set_flat(params)
        observations, actions, rewards, log_probs = [], [], [], []
        obs = self.env.reset()
        done = False
        while not done:
            logits = self.policy(obs[None, :])
            probs = softmax(logits)[0]
            action = int(self.rng.choice(len(probs), p=probs))
            observations.append(obs)
            actions.append(action)
            log_probs.append(float(np.log(probs[action] + 1e-12)))
            obs, reward, done = self.env.step(action)
            rewards.append(reward)
        return {
            "observations": np.asarray(observations),
            "actions": np.asarray(actions, dtype=np.int64),
            "rewards": np.asarray(rewards, dtype=np.float64),
            "log_probs": np.asarray(log_probs, dtype=np.float64),
        }


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float,
    lam: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalized advantage estimation over one episode.

    ``values`` has one extra trailing entry (bootstrap, 0 for terminal).
    Returns (advantages, returns).
    """
    length = len(rewards)
    advantages = np.zeros(length)
    last = 0.0
    for t in reversed(range(length)):
        delta = rewards[t] + gamma * values[t + 1] - values[t]
        last = delta + gamma * lam * last
        advantages[t] = last
    return advantages, advantages + values[:length]


@dataclass
class PPOConfig:
    num_actors: int = 4
    steps_per_iteration: int = 1200  # paper: 320,000 at cluster scale
    sgd_epochs: int = 8  # paper: 20
    minibatch_size: int = 256
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    policy_lr: float = 0.01
    value_lr: float = 0.02
    hidden_size: int = 32
    seed: int = 0


class PPOTrainer:
    """Asynchronous scatter-gather PPO."""

    def __init__(self, env_spec: EnvSpec, config: Optional[PPOConfig] = None):
        if env_spec.continuous:
            raise ValueError("this PPO implementation is categorical-action")
        self.env_spec = env_spec
        self.config = config or PPOConfig()
        cfg = self.config
        self.policy = MLP(
            env_spec.observation_size, cfg.hidden_size, env_spec.action_size, seed=cfg.seed
        )
        self.value = MLP(env_spec.observation_size, cfg.hidden_size, 1, seed=cfg.seed + 1)
        self.policy_opt = Adam(learning_rate=cfg.policy_lr)
        self.value_opt = Adam(learning_rate=cfg.value_lr)
        self.actors = [
            RolloutActor.remote(env_spec, cfg.hidden_size, seed=cfg.seed * 101 + i)
            for i in range(cfg.num_actors)
        ]
        self.history: List[float] = []

    # ------------------------------------------------------------------
    # Collection: tasks are assigned to actors as they return rollouts.
    # ------------------------------------------------------------------

    def collect(self, params_ref) -> List[Dict[str, np.ndarray]]:
        cfg = self.config
        inflight = {
            actor.rollout.remote(params_ref): actor for actor in self.actors
        }
        episodes: List[Dict[str, np.ndarray]] = []
        steps = 0
        while steps < cfg.steps_per_iteration:
            ready, _pending = repro.wait(list(inflight.keys()), num_returns=1)
            ref = ready[0]
            actor = inflight.pop(ref)
            episode = repro.get(ref)
            episodes.append(episode)
            steps += len(episode["rewards"])
            if steps < cfg.steps_per_iteration:
                inflight[actor.rollout.remote(params_ref)] = actor
        # Drain stragglers (they are still useful on-policy data).
        for ref in list(inflight.keys()):
            episodes.append(repro.get(ref))
        return episodes

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------

    def _prepare_batch(self, episodes) -> Dict[str, np.ndarray]:
        all_obs, all_actions, all_logp, all_adv, all_ret = [], [], [], [], []
        for episode in episodes:
            obs = episode["observations"]
            values = self.value(obs).ravel()
            values = np.append(values, 0.0)  # terminal bootstrap
            adv, ret = compute_gae(
                episode["rewards"], values, self.config.gamma, self.config.gae_lambda
            )
            all_obs.append(obs)
            all_actions.append(episode["actions"])
            all_logp.append(episode["log_probs"])
            all_adv.append(adv)
            all_ret.append(ret)
        advantages = np.concatenate(all_adv)
        advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        return {
            "observations": np.concatenate(all_obs),
            "actions": np.concatenate(all_actions),
            "log_probs": np.concatenate(all_logp),
            "advantages": advantages,
            "returns": np.concatenate(all_ret),
        }

    def _policy_gradient(self, batch, index) -> np.ndarray:
        """Exact gradient of the clipped surrogate (ascent direction)."""
        cfg = self.config
        obs = batch["observations"][index]
        actions = batch["actions"][index]
        old_logp = batch["log_probs"][index]
        advantages = batch["advantages"][index]

        logits, cache = self.policy.forward(obs)
        probs = softmax(logits)
        logp = log_prob_categorical(logits, actions)
        ratio = np.exp(logp - old_logp)
        # Clipped-surrogate mask: zero gradient where the clip is active.
        active = ~(
            ((advantages >= 0) & (ratio > 1 + cfg.clip_epsilon))
            | ((advantages < 0) & (ratio < 1 - cfg.clip_epsilon))
        )
        coeff = advantages * ratio * active  # d surrogate / d logp
        onehot = np.zeros_like(probs)
        onehot[np.arange(len(actions)), actions] = 1.0
        grad_logits = coeff[:, None] * (onehot - probs) / len(actions)
        return self.policy.backward(cache, grad_logits)

    def _value_gradient(self, batch, index) -> np.ndarray:
        obs = batch["observations"][index]
        returns = batch["returns"][index]
        predictions, cache = self.value.forward(obs)
        # Descent on MSE == ascent on its negative.
        grad_out = (returns[:, None] - predictions) / len(returns)
        return self.value.backward(cache, grad_out)

    def train_iteration(self) -> float:
        """Collect → GAE → clipped-surrogate SGD.  Returns mean episode
        reward of the collected batch."""
        cfg = self.config
        params_ref = repro.put(self.policy.get_flat())
        episodes = self.collect(params_ref)
        batch = self._prepare_batch(episodes)
        num_samples = len(batch["actions"])
        rng = np.random.default_rng(cfg.seed + len(self.history))
        for _epoch in range(cfg.sgd_epochs):
            order = rng.permutation(num_samples)
            for start in range(0, num_samples, cfg.minibatch_size):
                index = order[start : start + cfg.minibatch_size]
                if index.size == 0:
                    continue
                policy_grad = self._policy_gradient(batch, index)
                self.policy.set_flat(
                    self.policy_opt.step(self.policy.get_flat(), policy_grad)
                )
                value_grad = self._value_gradient(batch, index)
                self.value.set_flat(
                    self.value_opt.step(self.value.get_flat(), value_grad)
                )
        mean_reward = float(
            np.mean([episode["rewards"].sum() for episode in episodes])
        )
        self.history.append(mean_reward)
        return mean_reward

    def train(self, iterations: int) -> List[float]:
        return [self.train_iteration() for _ in range(iterations)]

    def close(self) -> None:
        """Terminate the rollout actors."""
        for actor in self.actors:
            repro.kill(actor)
