"""Sharded parameter server on the actor abstraction (paper Sections 2, 5.2.1).

Parameters are split across ``num_shards`` :class:`ParameterServerShard`
actors; workers pull the current shard values (futures — no copy until
used), compute gradients, and push per-shard gradients back.  Each shard
sums the gradients from all workers and applies the update — exactly the
paper's synchronous parameter-server SGD, with transfer/summation
parallelized across shards.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

import repro


@repro.remote
class ParameterServerShard:
    """One shard of the model parameters, updated by summed gradients."""

    def __init__(self, initial: np.ndarray, learning_rate: float = 0.1):
        self.params = np.asarray(initial, dtype=np.float64).copy()
        self.learning_rate = learning_rate
        self.updates_applied = 0

    def get_params(self) -> np.ndarray:
        return self.params

    def apply_gradients(self, *gradients: np.ndarray) -> np.ndarray:
        """Sum the workers' gradients and take one descent step; returns the
        new shard values (so the next iteration can chain on the future)."""
        total = np.zeros_like(self.params)
        for gradient in gradients:
            total += np.asarray(gradient, dtype=np.float64)
        self.params = self.params - self.learning_rate * total / max(1, len(gradients))
        self.updates_applied += 1
        return self.params

    def update_count(self) -> int:
        return self.updates_applied


class ShardedParameterServer:
    """Driver-side convenience wrapper over the shard actors."""

    def __init__(self, initial: np.ndarray, num_shards: int = 2, learning_rate: float = 0.1):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        initial = np.asarray(initial, dtype=np.float64)
        self._sizes = [c.size for c in np.array_split(initial, num_shards)]
        self.shards = [
            ParameterServerShard.remote(chunk, learning_rate)
            for chunk in np.array_split(initial, num_shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def get_param_refs(self) -> List:
        """Futures for every shard's current values (no data movement)."""
        return [shard.get_params.remote() for shard in self.shards]

    def get_params(self) -> np.ndarray:
        return np.concatenate(repro.get(self.get_param_refs()))

    def split_gradient(self, gradient: np.ndarray) -> List[np.ndarray]:
        gradient = np.asarray(gradient, dtype=np.float64)
        out, offset = [], 0
        for size in self._sizes:
            out.append(gradient[offset : offset + size])
            offset += size
        return out

    def apply(self, per_worker_shard_grads: Sequence[Sequence]) -> List:
        """Apply one synchronous step.

        ``per_worker_shard_grads[w][s]`` is worker w's gradient (value or
        future) for shard s.  Returns futures of the new shard values.
        """
        futures = []
        for s, shard in enumerate(self.shards):
            grads = [worker_grads[s] for worker_grads in per_worker_shard_grads]
            futures.append(shard.apply_gradients.remote(*grads))
        return futures

    def close(self) -> None:
        """Terminate the shard actors, releasing their CPU reservations."""
        for shard in self.shards:
            repro.kill(shard)
