"""Ring allreduce implemented *on the repro API* (paper Section 5.1).

The paper stresses that allreduce — communication-intensive and latency-
sensitive — can be written natively on Ray's API with competitive
performance because object transfer is decoupled from the scheduler.  This
module is that program: ``n`` :class:`RingWorker` actors each hold one
array; the driver orchestrates the standard two-phase ring (reduce-scatter
then allgather, 2(n-1) rounds); chunks travel between actors as object-
store futures.

Each round submits ``n`` ``get_chunk`` + ``n`` ``apply_chunk`` tasks, so
one allreduce issues ``2(n-1)·2n`` tasks — the quadratic task load the
paper uses to motivate scheduler throughput (Fig 12b).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

import repro


@repro.remote
class RingWorker:
    """One allreduce participant holding its array as ``n`` chunks."""

    def __init__(self, rank: int, world_size: int, values: np.ndarray):
        self.rank = rank
        self.world_size = world_size
        values = np.asarray(values, dtype=np.float64)
        self.chunks: List[np.ndarray] = [
            chunk.copy() for chunk in np.array_split(values, world_size)
        ]

    def get_chunk(self, index: int) -> np.ndarray:
        return self.chunks[index]

    def add_chunk(self, index: int, chunk: np.ndarray) -> bool:
        """Reduce-scatter step: accumulate a neighbour's chunk."""
        self.chunks[index] = self.chunks[index] + chunk
        return True

    def set_chunk(self, index: int, chunk: np.ndarray) -> bool:
        """Allgather step: adopt the fully-reduced chunk."""
        self.chunks[index] = np.asarray(chunk, dtype=np.float64)
        return True

    def result(self) -> np.ndarray:
        return np.concatenate(self.chunks)


def ring_allreduce(arrays: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Allreduce (sum) the given arrays; returns each participant's result.

    ``arrays[i]`` plays the role of participant ``i``'s local data; all
    results equal ``sum(arrays)``.
    """
    n = len(arrays)
    if n == 0:
        return []
    if n == 1:
        return [np.asarray(arrays[0], dtype=np.float64).copy()]
    lengths = {np.asarray(a).shape for a in arrays}
    if len(lengths) != 1:
        raise ValueError("all arrays must have the same shape")

    workers = [RingWorker.remote(i, n, arrays[i]) for i in range(n)]
    try:
        # Phase 1 — reduce-scatter: after n-1 rounds, worker i holds the
        # full sum of chunk (i+1) mod n.
        for step in range(n - 1):
            round_futures = []
            for i in range(n):
                index = (i - step) % n
                chunk_ref = workers[i].get_chunk.remote(index)
                round_futures.append(
                    workers[(i + 1) % n].add_chunk.remote(index, chunk_ref)
                )
            repro.get(round_futures)  # ring rounds are lockstep

        # Phase 2 — allgather: circulate the reduced chunks.
        for step in range(n - 1):
            round_futures = []
            for i in range(n):
                index = (i + 1 - step) % n
                chunk_ref = workers[i].get_chunk.remote(index)
                round_futures.append(
                    workers[(i + 1) % n].set_chunk.remote(index, chunk_ref)
                )
            repro.get(round_futures)

        return repro.get([w.result.remote() for w in workers])
    finally:
        # Release the participants' lifetime CPU reservations.
        for worker in workers:
            repro.kill(worker)
