"""Ape-X-style distributed DQN on the repro API.

Distributed prioritized experience replay (Horgan et al., cited as [27] in
the paper and listed in Section 7 among the algorithms implemented on
Ray): experience actors step their own environments with ε-greedy copies
of the Q-network and push transitions into a replay-buffer actor; the
learner samples prioritized batches, takes TD steps on the Q-network, and
feeds updated priorities back — all asynchronously, glued together by
``wait`` over method futures.

The Q-network is a one-hidden-layer numpy MLP with exact TD gradients;
CartPole-scale by design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

import repro
from repro.rl.nn import MLP
from repro.rl.replay_buffer import ReplayBufferActor
from repro.rl.specs import EnvSpec


@repro.remote
class ExperienceActor:
    """Steps an env with an ε-greedy policy, emitting transitions."""

    def __init__(self, env_spec: EnvSpec, hidden_size: int, seed: int):
        self.env_spec = env_spec
        self.env = env_spec.build(seed=seed)
        self.q_network = MLP(
            env_spec.observation_size, hidden_size, env_spec.action_size, seed=0
        )
        self.rng = np.random.default_rng(seed)
        self._obs = self.env.reset()
        self.episode_reward = 0.0
        self.episode_rewards: List[float] = []

    def collect(self, params: np.ndarray, epsilon: float, num_steps: int):
        """Run ``num_steps`` env steps; returns (transitions, done episodes)."""
        self.q_network.set_flat(params)
        transitions = []
        finished: List[float] = []
        for _ in range(num_steps):
            if self.rng.random() < epsilon:
                action = int(self.rng.integers(self.env_spec.action_size))
            else:
                action = int(np.argmax(self.q_network(self._obs[None, :])[0]))
            next_obs, reward, done = self.env.step(action)
            transitions.append((self._obs, action, reward, next_obs, done))
            self.episode_reward += reward
            if done:
                finished.append(self.episode_reward)
                self.episode_reward = 0.0
                next_obs = self.env.reset()
            self._obs = next_obs
        self.episode_rewards.extend(finished)
        return transitions, finished


@dataclass
class DQNConfig:
    num_actors: int = 3
    hidden_size: int = 32
    replay_capacity: int = 20_000
    prioritized: bool = True
    batch_size: int = 64
    gamma: float = 0.99
    learning_rate: float = 5e-3
    epsilon_start: float = 1.0
    epsilon_final: float = 0.05
    epsilon_decay_steps: int = 2_000
    collect_steps_per_round: int = 50
    target_sync_interval: int = 20  # learner steps between target syncs
    learn_starts: int = 200  # buffer size before learning begins
    seed: int = 0


class ApexDQNTrainer:
    """Asynchronous actors + prioritized replay + TD learner."""

    def __init__(self, env_spec: EnvSpec, config: Optional[DQNConfig] = None):
        if env_spec.continuous:
            raise ValueError("DQN requires a discrete-action environment")
        self.env_spec = env_spec
        self.config = config or DQNConfig()
        cfg = self.config
        self.q_network = MLP(
            env_spec.observation_size, cfg.hidden_size, env_spec.action_size,
            seed=cfg.seed,
        )
        self.target_network = MLP(
            env_spec.observation_size, cfg.hidden_size, env_spec.action_size,
            seed=cfg.seed,
        )
        self.target_network.set_flat(self.q_network.get_flat())
        self.replay = ReplayBufferActor.remote(
            capacity=cfg.replay_capacity,
            prioritized=cfg.prioritized,
            seed=cfg.seed,
        )
        self.actors = [
            ExperienceActor.remote(env_spec, cfg.hidden_size, seed=cfg.seed * 31 + i)
            for i in range(cfg.num_actors)
        ]
        self.env_steps = 0
        self.learner_steps = 0
        self.episode_rewards: List[float] = []
        # Client-side mirror of the replay buffer's ring size: add() returns
        # min(capacity, total_added), which we can compute locally instead of
        # blocking on the actor round trip every add.
        self.replay_size = 0
        self._replay_refs: List[repro.ObjectRef] = []

    # -- pieces -------------------------------------------------------------

    def epsilon(self) -> float:
        cfg = self.config
        fraction = min(1.0, self.env_steps / cfg.epsilon_decay_steps)
        return cfg.epsilon_start + fraction * (cfg.epsilon_final - cfg.epsilon_start)

    def _td_step(self, indices, batch, weights) -> float:
        """One TD update; returns mean |TD error| (for diagnostics)."""
        cfg = self.config
        obs = np.stack([t[0] for t in batch])
        actions = np.asarray([t[1] for t in batch])
        rewards = np.asarray([t[2] for t in batch])
        next_obs = np.stack([t[3] for t in batch])
        dones = np.asarray([t[4] for t in batch], dtype=bool)
        weights = np.asarray(weights)

        next_q = self.target_network(next_obs)
        targets = rewards + cfg.gamma * np.max(next_q, axis=1) * (~dones)
        q_values, cache = self.q_network.forward(obs)
        chosen = q_values[np.arange(len(batch)), actions]
        td_error = targets - chosen

        # Gradient of weighted 0.5·Σ w·(target − Q(s,a))²: flows only into
        # the chosen action's output.
        grad_out = np.zeros_like(q_values)
        grad_out[np.arange(len(batch)), actions] = weights * td_error / len(batch)
        gradient = self.q_network.backward(cache, grad_out)
        self.q_network.set_flat(
            self.q_network.get_flat() + cfg.learning_rate * gradient
        )

        # Fire the priority update without blocking: the actor mailbox runs
        # methods in submission order, so the update lands before the next
        # sample() regardless; the ref is drained in train_round.
        self._replay_refs.append(
            self.replay.update_priorities.remote(indices, list(np.abs(td_error)))
        )
        self.learner_steps += 1
        if self.learner_steps % cfg.target_sync_interval == 0:
            self.target_network.set_flat(self.q_network.get_flat())
        return float(np.mean(np.abs(td_error)))

    # -- the asynchronous loop ------------------------------------------------

    def train_round(self) -> Dict[str, float]:
        """One async round: dispatch collection, learn while it runs."""
        cfg = self.config
        params_ref = repro.put(self.q_network.get_flat())
        collect_refs = [
            actor.collect.remote(params_ref, self.epsilon(), cfg.collect_steps_per_round)
            for actor in self.actors
        ]
        td_errors = []
        pending = list(collect_refs)
        while pending:
            ready, pending = repro.wait(pending, num_returns=1)
            transitions, finished = repro.get(ready[0])
            self.env_steps += len(transitions)
            self.episode_rewards.extend(finished)
            self._replay_refs.append(self.replay.add.remote(transitions))
            self.replay_size = min(
                cfg.replay_capacity, self.replay_size + len(transitions)
            )
            if self.replay_size >= cfg.learn_starts:
                indices, batch, weights = repro.get(
                    self.replay.sample.remote(cfg.batch_size)
                )
                if batch:
                    td_errors.append(self._td_step(indices, batch, weights))
        # One batched drain of the round's add/update refs: surfaces any
        # replay-actor error without a per-call blocking round trip.
        if self._replay_refs:
            repro.get(self._replay_refs)
            self._replay_refs.clear()
        return {
            "env_steps": self.env_steps,
            "learner_steps": self.learner_steps,
            "mean_td_error": float(np.mean(td_errors)) if td_errors else 0.0,
            "recent_reward": (
                float(np.mean(self.episode_rewards[-10:]))
                if self.episode_rewards
                else 0.0
            ),
        }

    def train(self, rounds: int) -> List[Dict[str, float]]:
        return [self.train_round() for _ in range(rounds)]

    def greedy_episode_reward(self, seed: int = 999) -> float:
        """Evaluate the greedy policy for one episode."""
        env = self.env_spec.build(seed=seed)
        obs = env.reset()
        total = 0.0
        while not env.has_terminated():
            action = int(np.argmax(self.q_network(obs[None, :])[0]))
            obs, reward, _done = env.step(action)
            total += reward
        return total

    def close(self) -> None:
        repro.kill(self.replay)
        for actor in self.actors:
            repro.kill(actor)
