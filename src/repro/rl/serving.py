"""Embedded policy serving (paper Section 5.2.2, Table 3).

Ray serves policies to clients *within the same cluster* — simulators, or
co-located client processes — through actor method calls whose arguments
travel via the shared-memory object store.  No REST encode/decode, no
HTTP; that is the entire basis of the Table 3 gap against Clipper.

:class:`PolicyServer` evaluates a (configurable-cost) model over batches
of states; ``measure_serving_throughput`` drives it the way the paper's
client does: batches of 64 states, back-to-back.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np

import repro
from repro.rl.specs import PolicySpec


def _busy_wait(seconds: float) -> None:
    """Model-evaluation stand-in: burn CPU for a fixed duration (the paper
    fixes 5 ms / 10 ms per evaluation for both systems)."""
    if seconds <= 0:
        return
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


@repro.remote
class PolicyServer:
    """An actor serving policy evaluations over object-store inputs."""

    def __init__(
        self,
        policy_spec: Optional[PolicySpec] = None,
        params: Optional[np.ndarray] = None,
        eval_seconds: float = 0.0,
    ):
        self.policy = policy_spec.build() if policy_spec is not None else None
        if self.policy is not None and params is not None:
            self.policy.set_flat(params)
        self.eval_seconds = eval_seconds
        self.queries_served = 0

    def serve(self, states) -> List:
        """Evaluate a batch of states; returns one action per state."""
        _busy_wait(self.eval_seconds)
        self.queries_served += len(states)
        if self.policy is None:
            return [0] * len(states)
        return [self.policy.act(np.asarray(s, dtype=np.float64)) for s in states]

    def serve_raw(self, states) -> int:
        """Fixed-cost evaluation of opaque payloads (Table 3 methodology:
        the model cost is held constant; only the data path differs)."""
        _busy_wait(self.eval_seconds)
        self.queries_served += len(states)
        return len(states)

    def count(self) -> int:
        return self.queries_served


def measure_serving_throughput(
    server,
    states: Sequence,
    duration_seconds: float = 1.0,
    pipeline_depth: int = 2,
) -> float:
    """States served per second through an actor server.

    ``pipeline_depth`` requests are kept in flight, as a real client would
    to hide round-trip latency.
    """
    inflight = [server.serve_raw.remote(list(states)) for _ in range(pipeline_depth)]
    served = 0
    start = time.perf_counter()
    while time.perf_counter() - start < duration_seconds:
        ready, inflight = repro.wait(inflight, num_returns=1)
        served += repro.get(ready[0])
        inflight.append(server.serve_raw.remote(list(states)))
    elapsed = time.perf_counter() - start
    repro.get(inflight)  # drain
    return served / elapsed
