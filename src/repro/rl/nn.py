"""A small numpy MLP with manual backprop (for PPO's policy and value
networks).

One hidden tanh layer is enough for the classic-control tasks the examples
train on; gradients are exact and flow through a flat parameter vector so
the optimizers in :mod:`repro.rl.optim` apply unchanged.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class MLP:
    """``out = W2 · tanh(W1 · x + b1) + b2`` with exact gradients."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        output_size: int,
        seed: Optional[int] = 0,
    ):
        rng = np.random.default_rng(seed)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.output_size = output_size
        s1 = 1.0 / np.sqrt(input_size)
        s2 = 1.0 / np.sqrt(hidden_size)
        self.w1 = rng.uniform(-s1, s1, size=(hidden_size, input_size))
        self.b1 = np.zeros(hidden_size)
        self.w2 = rng.uniform(-s2, s2, size=(output_size, hidden_size))
        self.b2 = np.zeros(output_size)

    # -- flat parameter interface ----------------------------------------------

    def get_flat(self) -> np.ndarray:
        return np.concatenate(
            [self.w1.ravel(), self.b1, self.w2.ravel(), self.b2]
        )

    def set_flat(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=np.float64)
        sizes = [self.w1.size, self.b1.size, self.w2.size, self.b2.size]
        if theta.size != sum(sizes):
            raise ValueError(f"expected {sum(sizes)} params, got {theta.size}")
        offset = 0
        parts = []
        for size in sizes:
            parts.append(theta[offset : offset + size])
            offset += size
        self.w1 = parts[0].reshape(self.w1.shape).copy()
        self.b1 = parts[1].copy()
        self.w2 = parts[2].reshape(self.w2.shape).copy()
        self.b2 = parts[3].copy()

    def num_params(self) -> int:
        return self.w1.size + self.b1.size + self.w2.size + self.b2.size

    # -- forward / backward ------------------------------------------------------

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple]:
        """Batch forward.  ``x`` is (batch, input); returns (out, cache)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        pre = x @ self.w1.T + self.b1
        hidden = np.tanh(pre)
        out = hidden @ self.w2.T + self.b2
        return out, (x, hidden)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)[0]

    def backward(self, cache: Tuple, grad_out: np.ndarray) -> np.ndarray:
        """Gradient of ``sum(grad_out * out)`` w.r.t. the flat parameters."""
        x, hidden = cache
        grad_out = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        grad_w2 = grad_out.T @ hidden
        grad_b2 = grad_out.sum(axis=0)
        grad_hidden = grad_out @ self.w2
        grad_pre = grad_hidden * (1.0 - hidden**2)
        grad_w1 = grad_pre.T @ x
        grad_b1 = grad_pre.sum(axis=0)
        return np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )

    def backward_input(self, cache: Tuple, grad_out: np.ndarray) -> np.ndarray:
        """Gradient of ``sum(grad_out * out)`` w.r.t. the *inputs*.

        Needed when networks chain — e.g. DDPG's ∂Q(s, μ(s))/∂a flowing
        into the actor.
        """
        _x, hidden = cache
        grad_out = np.atleast_2d(np.asarray(grad_out, dtype=np.float64))
        grad_hidden = grad_out @ self.w2
        grad_pre = grad_hidden * (1.0 - hidden**2)
        return grad_pre @ self.w1


def softmax(logits: np.ndarray) -> np.ndarray:
    logits = np.atleast_2d(logits)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def log_prob_categorical(logits: np.ndarray, actions: np.ndarray) -> np.ndarray:
    """log π(a|s) for a batch under categorical logits."""
    probs = softmax(logits)
    batch = np.arange(len(probs))
    return np.log(probs[batch, actions] + 1e-12)
