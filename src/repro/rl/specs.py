"""Picklable factories for environments and policies.

Tasks and actors receive their environment/policy *specs* rather than live
objects: specs are small, picklable, and deterministic, so a replayed task
(lineage reconstruction) rebuilds identical state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.rl.envs import CartPoleEnv, HumanoidSurrogateEnv, PendulumEnv
from repro.rl.policy import LinearPolicy, MLPPolicy, Policy

_ENVS = {
    "pendulum": PendulumEnv,
    "cartpole": CartPoleEnv,
    "humanoid": HumanoidSurrogateEnv,
}


@dataclass(frozen=True)
class EnvSpec:
    """Names one of the built-in environments plus its constructor args."""

    name: str
    max_steps: Optional[int] = None

    def __post_init__(self):
        if self.name not in _ENVS:
            raise ValueError(f"unknown env {self.name!r}; choose from {sorted(_ENVS)}")

    @property
    def env_class(self):
        return _ENVS[self.name]

    def build(self, seed: Optional[int] = None):
        kwargs = {}
        if self.max_steps is not None:
            kwargs["max_steps"] = self.max_steps
        return self.env_class(seed=seed, **kwargs)

    def __call__(self):  # usable directly as a factory
        return self.build()

    @property
    def observation_size(self) -> int:
        return self.env_class.observation_size

    @property
    def action_size(self) -> int:
        return self.env_class.action_size

    @property
    def continuous(self) -> bool:
        return self.env_class.continuous


@dataclass(frozen=True)
class PolicySpec:
    """Describes a policy architecture; ``build()`` constructs it."""

    kind: str  # "linear" or "mlp"
    observation_size: int
    action_size: int
    continuous: bool = True
    action_scale: float = 2.0
    hidden: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.kind not in ("linear", "mlp"):
            raise ValueError("kind must be 'linear' or 'mlp'")

    @classmethod
    def for_env(
        cls,
        env_spec: EnvSpec,
        kind: str = "linear",
        hidden: Tuple[int, ...] = (),
        action_scale: float = 2.0,
    ) -> "PolicySpec":
        return cls(
            kind=kind,
            observation_size=env_spec.observation_size,
            action_size=env_spec.action_size,
            continuous=env_spec.continuous,
            action_scale=action_scale,
            hidden=tuple(hidden),
        )

    def build(self, seed: Optional[int] = 0) -> Policy:
        if self.kind == "linear":
            return LinearPolicy(
                self.observation_size,
                self.action_size,
                continuous=self.continuous,
                action_scale=self.action_scale,
                seed=seed,
            )
        return MLPPolicy(
            self.observation_size,
            self.action_size,
            hidden=self.hidden or (32,),
            continuous=self.continuous,
            action_scale=self.action_scale,
            seed=seed,
        )

    def __call__(self) -> Policy:
        return self.build()
