"""Policy evaluation by rollout — the paper's Figure 2 pseudocode.

``rollout(policy, env)`` is the serving+simulation inner loop: at each
step the policy computes an action (serving) and the environment advances
(simulation).  :class:`SimulatorActor` is exactly the ``Simulator`` actor
of the paper's Figure 3: a stateful worker wrapping an environment whose
``rollout`` method evaluates a policy shipped as an argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

import repro
from repro.rl.policy import Policy


@dataclass
class Trajectory:
    """A sequence of (state, action, reward) produced by one rollout."""

    observations: List[np.ndarray] = field(default_factory=list)
    actions: List = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))

    @property
    def length(self) -> int:
        return len(self.rewards)


def rollout(policy: Policy, env, num_steps: Optional[int] = None) -> Trajectory:
    """Evaluate ``policy`` by interacting with ``env`` (Figure 2).

    Runs until the environment terminates or ``num_steps`` is reached.
    """
    trajectory = Trajectory()
    observation = env.reset()
    steps = 0
    while not env.has_terminated():
        if num_steps is not None and steps >= num_steps:
            break
        action = policy.act(observation)  # Serving
        trajectory.observations.append(observation)
        trajectory.actions.append(action)
        observation, reward, _done = env.step(action)  # Simulation
        trajectory.rewards.append(reward)
        steps += 1
    return trajectory


@repro.remote
class SimulatorActor:
    """The paper's Figure 3 ``Simulator``: a stateful env wrapper.

    The environment object persists across method calls (it may be a
    third-party simulator that does not expose its state); each actor has
    its own env shared between all of its methods.
    """

    def __init__(self, env_factory: Callable, policy_factory: Callable):
        self.env = env_factory()
        self.policy = policy_factory()

    def rollout(self, params: np.ndarray, num_steps: Optional[int] = None):
        """Evaluate the policy with the given flat parameters.

        Returns (total_reward, episode_length).
        """
        self.policy.set_flat(params)
        trajectory = rollout(self.policy, self.env, num_steps=num_steps)
        return trajectory.total_reward, trajectory.length

    def sample_steps(self, params: np.ndarray, num_steps: int):
        """Run exactly ``num_steps`` env steps (Table 4-style workload),
        resetting the env as episodes end.  Returns steps executed."""
        self.policy.set_flat(params)
        executed = 0
        observation = self.env.current_state()
        if self.env.has_terminated():
            observation = self.env.reset()
        while executed < num_steps:
            action = self.policy.act(observation)
            observation, _reward, done = self.env.step(action)
            executed += 1
            if done:
                observation = self.env.reset()
        return executed
