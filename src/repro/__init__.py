"""repro — a reproduction of "Ray: A Distributed Framework for Emerging AI
Applications" (OSDI 2018).

The public API mirrors the paper's Table 1:

    import repro

    repro.init(num_nodes=4)

    @repro.remote
    def f(x):
        return x * 2

    futures = [f.remote(i) for i in range(4)]
    print(repro.get(futures))

    repro.shutdown()

Packages:

* :mod:`repro.core` — the real in-process multi-node runtime.
* :mod:`repro.gcs` — the sharded, chain-replicated Global Control Store.
* :mod:`repro.sim` — discrete-event cluster simulator for the paper's
  scale experiments.
* :mod:`repro.rl` — RL workloads built on the API (allreduce, parameter
  server, ES, PPO, serving, environments).
* :mod:`repro.baselines` — the comparison systems (BSP/MPI, centralized
  scheduler, OpenMPI allreduce, Clipper-style serving, reference ES).
"""

from repro.api import (
    ActorClass,
    ActorHandle,
    ObjectRef,
    RemoteFunction,
    available_resources,
    cancel,
    cluster_resources,
    free,
    get,
    get_actor,
    get_runtime,
    init,
    is_initialized,
    kill,
    method,
    nodes,
    put,
    remote,
    shutdown,
    submit_many,
    wait,
)
from repro.common.serialization import deregister_serializer, register_serializer
from repro.common.errors import (
    ActorDiedError,
    BackpressureError,
    GetTimeoutError,
    ObjectLostError,
    ObjectStoreFullError,
    ReproError,
    TaskCancelledError,
    TaskExecutionError,
)
from repro.common.options import Options
from repro.common.faults import (
    FaultAction,
    FaultSchedule,
    FaultTrigger,
    PlannedFault,
)
from repro.core.runtime import Runtime, RuntimeConfig
from repro import serve

__version__ = "0.1.0"

__all__ = [
    "init",
    "shutdown",
    "is_initialized",
    "get_runtime",
    "remote",
    "get",
    "put",
    "wait",
    "submit_many",
    "cancel",
    "kill",
    "free",
    "method",
    "get_actor",
    "nodes",
    "cluster_resources",
    "available_resources",
    "register_serializer",
    "deregister_serializer",
    "ObjectRef",
    "Options",
    "RemoteFunction",
    "ActorClass",
    "ActorHandle",
    "Runtime",
    "RuntimeConfig",
    "serve",
    "ReproError",
    "BackpressureError",
    "TaskExecutionError",
    "TaskCancelledError",
    "ObjectLostError",
    "ObjectStoreFullError",
    "ActorDiedError",
    "GetTimeoutError",
    "FaultSchedule",
    "FaultTrigger",
    "FaultAction",
    "PlannedFault",
    "__version__",
]
