"""Measurement helpers for simulation experiments.

:class:`ThroughputTimeline` buckets completion events per second per
category (e.g. "original" vs "re-executed" tasks — Figures 11a/11b).
:class:`LatencyStats` collects latency samples (Figure 8a, 10a).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from repro.common.metrics import percentile as _percentile


class ThroughputTimeline:
    """Completion counts bucketed by (time bucket, category)."""

    def __init__(self, bucket_seconds: float = 1.0):
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        self._counts: Dict[Tuple[int, str], int] = defaultdict(int)
        self.total: Dict[str, int] = defaultdict(int)

    def record(self, time: float, category: str = "default", count: int = 1) -> None:
        bucket = int(time // self.bucket_seconds)
        self._counts[(bucket, category)] += count
        self.total[category] += count

    def series(self, category: str = "default") -> List[Tuple[float, float]]:
        """[(bucket start time, rate per second)] for one category."""
        buckets = sorted(b for (b, c) in self._counts if c == category)
        if not buckets:
            return []
        out = []
        for bucket in range(buckets[0], buckets[-1] + 1):
            count = self._counts.get((bucket, category), 0)
            out.append((bucket * self.bucket_seconds, count / self.bucket_seconds))
        return out

    def rate_at(self, time: float, category: str = "default") -> float:
        bucket = int(time // self.bucket_seconds)
        return self._counts.get((bucket, category), 0) / self.bucket_seconds


class LatencyStats:
    """Streaming latency samples with summary statistics."""

    def __init__(self):
        self.samples: List[float] = []

    def record(self, latency: float) -> None:
        self.samples.append(latency)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else math.nan

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        # Quantile math shared with the runtime metrics layer
        # (repro.common.metrics), so sim and runtime summaries agree.
        return _percentile(sorted(self.samples), p)


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else math.nan
