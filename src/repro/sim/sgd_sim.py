"""Mechanistic synchronous SGD on the simulated cluster (Figure 13).

The Fig 13 benchmark prices iteration time with a cost model; this module
*executes* the parameter-server structure through the simulator: GPU
compute tasks produce gradient objects, per-shard chunks travel over the
NIC model to parameter-server nodes, shard-update tasks consume every
replica's chunk, and the new parameters flow back as the next iteration's
dependencies.  The measured images/s cross-checks the model's
*unpipelined* variant (the within-iteration compute/transfer overlap of
the paper's optimized implementation is a cost-model statement — the
mechanistic run shows what the structure costs without it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.sgd_baselines import SGDWorkloadModel
from repro.sim.cluster import SimCluster, SimConfig, SimTask
from repro.sim.network import NetworkConfig


@dataclass(frozen=True)
class SgdSimResult:
    images_per_second: float
    iteration_seconds: float
    tasks_executed: int


def simulate_sync_sgd(
    num_gpus: int,
    model: SGDWorkloadModel = SGDWorkloadModel(),
    iterations: int = 3,
) -> SgdSimResult:
    """Run ``iterations`` of PS-sharded synchronous SGD mechanistically."""
    num_nodes = max(1, math.ceil(num_gpus / model.gpus_per_node))
    num_shards = num_nodes  # one PS shard per node, as in the paper
    chunk_bytes = model.gradient_bytes // num_shards
    config = SimConfig(
        num_nodes=num_nodes,
        cpus_per_node=8,
        gpus_per_node=model.gpus_per_node,
        spillback_threshold=0,
        locality_aware=True,
        network=NetworkConfig(),
    )
    cluster = SimCluster(config)

    # Initial parameter shards, one per PS node.
    for shard in range(num_shards):
        cluster.put_object(f"params-i0-s{shard}", chunk_bytes, shard)

    def driver():
        for iteration in range(1, iterations + 1):
            previous = iteration - 1
            # 1. Each replica computes gradients against all param shards
            #    (GPU task), emitting one chunk per PS shard.
            compute_events = []
            for replica in range(num_gpus):
                node = replica // model.gpus_per_node
                compute_events.append(
                    cluster.submit(
                        SimTask(
                            name=f"grad-i{iteration}-r{replica}",
                            duration=model.compute_seconds,
                            deps=tuple(
                                f"params-i{previous}-s{s}" for s in range(num_shards)
                            ),
                            outputs=tuple(
                                (f"grad-i{iteration}-r{replica}-s{s}", chunk_bytes)
                                for s in range(num_shards)
                            ),
                            num_gpus=1,
                        ),
                        origin=node,
                    )
                )
            # 2. Each PS shard sums its chunks from every replica and
            #    emits the updated shard (CPU task on the shard's node).
            update_events = []
            for shard in range(num_shards):
                update_events.append(
                    cluster.submit(
                        SimTask(
                            name=f"update-i{iteration}-s{shard}",
                            duration=2e-3,  # summation of the shard
                            deps=tuple(
                                f"grad-i{iteration}-r{r}-s{shard}"
                                for r in range(num_gpus)
                            ),
                            outputs=((f"params-i{iteration}-s{shard}", chunk_bytes),),
                        ),
                        origin=shard,
                    )
                )
            yield cluster.engine.all_of(update_events)

    done = cluster.engine.process(driver())
    cluster.engine.run()
    assert done.triggered, "SGD simulation did not complete"
    iteration_seconds = cluster.engine.now / iterations
    return SgdSimResult(
        images_per_second=num_gpus * model.batch_per_gpu / iteration_seconds,
        iteration_seconds=iteration_seconds,
        tasks_executed=cluster.tasks_executed,
    )
