"""Workload generators for the simulation benchmarks.

Each generator produces :class:`~repro.sim.cluster.SimTask` lists shaped
like a paper experiment:

* ``empty_tasks`` — Figure 8b's embarrassingly parallel no-op tasks;
* ``locality_tasks`` — Figure 8a's 1000 tasks each depending on one
  randomly-placed object of a given size;
* ``dependency_chains`` — Figure 11a's linear chains of 100 ms tasks;
* ``heterogeneous_rollouts`` — Table 4's variable-length simulation tasks;
* ``fanin_tasks`` — locality-heavy wide fan-in: each task consumes a whole
  group of large objects co-located on one home node;
* ``skewed_actor_tasks`` — actor-heavy skew: a few wide lifetime-
  reservation tasks among many short methods, submitted from hot nodes.

The last two are the league-table shapes raced by
``scripts/bench_scheduling.py`` (with ``empty_tasks``).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.sim.cluster import SimCluster, SimTask


def empty_tasks(count: int, duration: float = 0.0) -> List[SimTask]:
    """No-op tasks (Figure 8b / 10b)."""
    return [SimTask(name=f"noop-{i}", duration=duration) for i in range(count)]


def locality_tasks(
    cluster: SimCluster,
    count: int,
    object_size: int,
    task_duration: float = 1e-3,
    num_objects: Optional[int] = None,
    seed: int = 0,
) -> List[SimTask]:
    """Tasks each depending on one object pre-placed on a random node.

    Figure 8a: with locality-aware placement, latency stays flat in object
    size; without it, tasks routinely pay a transfer.
    """
    rng = random.Random(seed)
    live = cluster.live_node_indices()
    num_objects = num_objects or count
    for i in range(num_objects):
        cluster.put_object(f"input-{i}", object_size, rng.choice(live))
    return [
        SimTask(
            name=f"consume-{i}",
            duration=task_duration,
            deps=(f"input-{rng.randrange(num_objects)}",),
        )
        for i in range(count)
    ]


def dependency_chains(
    num_chains: int,
    chain_length: int,
    task_duration: float = 0.1,
    output_size: int = 1024,
) -> List[List[SimTask]]:
    """Linear chains: task i consumes task i-1's output (Figure 11a)."""
    chains: List[List[SimTask]] = []
    for c in range(num_chains):
        chain: List[SimTask] = []
        for i in range(chain_length):
            deps: Tuple[str, ...] = (f"chain{c}-obj{i - 1}",) if i > 0 else ()
            chain.append(
                SimTask(
                    name=f"chain{c}-task{i}",
                    duration=task_duration,
                    deps=deps,
                    outputs=((f"chain{c}-obj{i}", output_size),),
                )
            )
        chains.append(chain)
    return chains


def fanin_tasks(
    cluster: SimCluster,
    count: int,
    fan_in: int = 8,
    object_size: int = 5_000_000,
    num_groups: Optional[int] = None,
    task_duration: float = 1e-3,
    seed: int = 0,
) -> List[SimTask]:
    """Locality-heavy wide fan-in: tasks consuming whole object groups.

    ``num_groups`` groups of ``fan_in`` objects are each pre-placed on one
    randomly chosen *home* node; every task consumes one full group.  A
    locality-aware policy places the task with its group and pays nothing;
    a blind one ships ``fan_in × object_size`` bytes per miss.
    """
    rng = random.Random(seed)
    live = cluster.live_node_indices()
    num_groups = num_groups or max(1, count // 16)
    groups: List[Tuple[str, ...]] = []
    for g in range(num_groups):
        home = rng.choice(live)
        names = tuple(f"group{g}-part{j}" for j in range(fan_in))
        for name in names:
            cluster.put_object(name, object_size, home)
        groups.append(names)
    return [
        SimTask(
            name=f"fanin-{i}",
            duration=task_duration,
            deps=groups[rng.randrange(num_groups)],
        )
        for i in range(count)
    ]


def skewed_actor_tasks(
    count: int,
    heavy_fraction: float = 0.15,
    heavy_cpus: int = 4,
    heavy_duration: float = 0.05,
    light_duration: float = 1e-3,
    seed: int = 0,
) -> List[SimTask]:
    """Actor-heavy skew: wide long reservations among short methods.

    ``heavy_fraction`` of the tasks model actor creations / long methods —
    they grab ``heavy_cpus`` cores for ``heavy_duration`` (scaled 1–4x) —
    while the rest are millisecond "method calls".  Durations and arrival
    order are shuffled, so backlog- and capacity-aware policies (which see
    the reservations through ``can_run_now`` and queue depth) pull ahead
    of blind ones.
    """
    rng = random.Random(seed)
    tasks: List[SimTask] = []
    for i in range(count):
        if rng.random() < heavy_fraction:
            tasks.append(
                SimTask(
                    name=f"actor-{i}",
                    duration=heavy_duration * rng.randint(1, 4),
                    num_cpus=heavy_cpus,
                )
            )
        else:
            tasks.append(
                SimTask(
                    name=f"method-{i}",
                    duration=light_duration * rng.randint(1, 3),
                )
            )
    return tasks


def heterogeneous_rollouts(
    count: int,
    per_step_seconds: float,
    min_steps: int = 10,
    max_steps: int = 1000,
    seed: int = 0,
) -> List[Tuple[SimTask, int]]:
    """Simulation tasks with variable step counts (Table 4).

    Returns (task, steps) pairs so callers can compute timesteps/second.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        steps = rng.randint(min_steps, max_steps)
        out.append(
            (
                SimTask(name=f"rollout-{i}", duration=steps * per_step_seconds),
                steps,
            )
        )
    return out
