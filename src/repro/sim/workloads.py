"""Workload generators for the simulation benchmarks.

Each generator produces :class:`~repro.sim.cluster.SimTask` lists shaped
like a paper experiment:

* ``empty_tasks`` — Figure 8b's embarrassingly parallel no-op tasks;
* ``locality_tasks`` — Figure 8a's 1000 tasks each depending on one
  randomly-placed object of a given size;
* ``dependency_chains`` — Figure 11a's linear chains of 100 ms tasks;
* ``heterogeneous_rollouts`` — Table 4's variable-length simulation tasks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.sim.cluster import SimCluster, SimTask


def empty_tasks(count: int, duration: float = 0.0) -> List[SimTask]:
    """No-op tasks (Figure 8b / 10b)."""
    return [SimTask(name=f"noop-{i}", duration=duration) for i in range(count)]


def locality_tasks(
    cluster: SimCluster,
    count: int,
    object_size: int,
    task_duration: float = 1e-3,
    num_objects: Optional[int] = None,
    seed: int = 0,
) -> List[SimTask]:
    """Tasks each depending on one object pre-placed on a random node.

    Figure 8a: with locality-aware placement, latency stays flat in object
    size; without it, tasks routinely pay a transfer.
    """
    rng = random.Random(seed)
    live = cluster.live_node_indices()
    num_objects = num_objects or count
    for i in range(num_objects):
        cluster.put_object(f"input-{i}", object_size, rng.choice(live))
    return [
        SimTask(
            name=f"consume-{i}",
            duration=task_duration,
            deps=(f"input-{rng.randrange(num_objects)}",),
        )
        for i in range(count)
    ]


def dependency_chains(
    num_chains: int,
    chain_length: int,
    task_duration: float = 0.1,
    output_size: int = 1024,
) -> List[List[SimTask]]:
    """Linear chains: task i consumes task i-1's output (Figure 11a)."""
    chains: List[List[SimTask]] = []
    for c in range(num_chains):
        chain: List[SimTask] = []
        for i in range(chain_length):
            deps: Tuple[str, ...] = (f"chain{c}-obj{i - 1}",) if i > 0 else ()
            chain.append(
                SimTask(
                    name=f"chain{c}-task{i}",
                    duration=task_duration,
                    deps=deps,
                    outputs=((f"chain{c}-obj{i}", output_size),),
                )
            )
        chains.append(chain)
    return chains


def heterogeneous_rollouts(
    count: int,
    per_step_seconds: float,
    min_steps: int = 10,
    max_steps: int = 1000,
    seed: int = 0,
) -> List[Tuple[SimTask, int]]:
    """Simulation tasks with variable step counts (Table 4).

    Returns (task, steps) pairs so callers can compute timesteps/second.
    """
    rng = random.Random(seed)
    out = []
    for i in range(count):
        steps = rng.randint(min_steps, max_steps)
        out.append(
            (
                SimTask(name=f"rollout-{i}", duration=steps * per_step_seconds),
                steps,
            )
        )
    return out
