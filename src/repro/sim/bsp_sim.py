"""BSP vs asynchronous execution, mechanistically on the simulated cluster.

Table 4's comparison priced by the scheduling models in
:mod:`repro.baselines.bsp` is re-run here through the simulator's actual
machinery: the same heterogeneous simulation tasks either pass through a
barrier-coordinated driver (the MPI program: submit one round per core,
wait for *all* of it, repeat) or are all submitted up front and list-
scheduled by the bottom-up scheduler (the Ray program).  Scheduler and
GCS costs apply to both, so the remaining gap isolates the barrier
effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.cluster import SimCluster, SimConfig, SimTask


@dataclass(frozen=True)
class BspSimResult:
    makespan: float
    rounds: int
    tasks: int


def _make_cluster(num_cpus: int) -> SimCluster:
    # One big node: Table 4's comparison is about execution discipline,
    # not placement; a single node keeps both variants identical there.
    return SimCluster(
        SimConfig(num_nodes=1, cpus_per_node=num_cpus, spillback_threshold=1 << 30)
    )


def simulate_bsp(durations: Sequence[float], num_cpus: int) -> BspSimResult:
    """Barrier rounds of ``num_cpus`` tasks through the simulated cluster."""
    cluster = _make_cluster(num_cpus)
    rounds = 0

    def driver():
        nonlocal rounds
        for start in range(0, len(durations), num_cpus):
            block = durations[start : start + num_cpus]
            events = [
                cluster.submit(
                    SimTask(f"bsp-{start + i}", duration=d), origin=0
                )
                for i, d in enumerate(block)
            ]
            rounds += 1
            yield cluster.engine.all_of(events)  # the global barrier

    done = cluster.engine.process(driver())
    cluster.engine.run()
    assert done.triggered
    return BspSimResult(cluster.engine.now, rounds, len(durations))


def simulate_async(durations: Sequence[float], num_cpus: int) -> BspSimResult:
    """All tasks submitted immediately; cores backfill as they free up."""
    cluster = _make_cluster(num_cpus)
    events = [
        cluster.submit(SimTask(f"async-{i}", duration=d), origin=0)
        for i, d in enumerate(durations)
    ]
    cluster.engine.run()
    assert all(e.triggered for e in events)
    return BspSimResult(cluster.engine.now, 1, len(durations))


def throughput_comparison(
    durations: Sequence[float], steps: Sequence[int], num_cpus: int
) -> dict:
    """Timesteps/second for both disciplines over the same workload."""
    total_steps = sum(steps)
    bsp = simulate_bsp(list(durations), num_cpus)
    asynchronous = simulate_async(list(durations), num_cpus)
    return {
        "bsp_steps_per_second": total_steps / bsp.makespan,
        "async_steps_per_second": total_steps / asynchronous.makespan,
        "speedup": bsp.makespan / asynchronous.makespan,
    }
